//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of criterion's API the systec benches use: `Criterion`
//! with `benchmark_group`/`bench_function`, the `Bencher::iter` timing
//! loop, and the `criterion_group!`/`criterion_main!` macros (used with
//! `harness = false` benches).
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples, where each sample runs the closure as
//! many times as fit in `measurement_time / sample_size` (at least once)
//! and records the mean time per iteration. The report prints the
//! minimum, median, and mean of the samples — the median is the headline
//! number, as in criterion.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed benchmark's summary statistics (seconds per
/// iteration), recorded for machine-readable reports.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full series name (`group/function`).
    pub name: String,
    /// Fastest sample.
    pub min: f64,
    /// Median sample — the headline number.
    pub median: f64,
    /// Mean of the samples.
    pub mean: f64,
    /// Iterations per sample.
    pub iters: u64,
}

/// Every benchmark completed so far in this process, in run order.
static REPORT: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drains the recorded benchmark results (bench mains call this after
/// the groups run to emit machine-readable reports).
pub fn take_report() -> Vec<BenchRecord> {
    std::mem::take(&mut *REPORT.lock().expect("report lock"))
}

/// Benchmark driver and configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget spread over the samples.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up duration before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let config = self.clone();
        run_one(&config, name, f);
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one function within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        let config = self.criterion.clone();
        run_one(&config, &full, f);
        self
    }

    /// Ends the group (report lines are already printed).
    pub fn finish(&mut self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(config: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: run once to measure, then spin until the budget is spent.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut per_iter = b.elapsed.max(Duration::from_nanos(1));
    let warm_start = Instant::now();
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
    }

    let per_sample = config.measurement_time / config.sample_size as u32;
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<40} time: [min {} median {} mean {}]  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
    );
    REPORT.lock().expect("report lock").push(BenchRecord {
        name: name.to_string(),
        min,
        median,
        mean,
        iters,
    });
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` that runs the groups (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        let mut count = 0u64;
        group.bench_function("f", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn bench_function_without_group() {
        quick().bench_function("solo", |b| b.iter(|| 1 + 1));
    }
}
