//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of proptest's API that the systec workspace uses: the
//! [`proptest!`] macro (both the test-function and inline-closure forms),
//! [`Strategy`] with `prop_map`/`prop_flat_map`, range/tuple/`Vec`
//! strategies, [`collection::vec`], [`Just`], [`prop_oneof!`], [`any`],
//! and the `prop_assert*` macros.
//!
//! Semantics: each test samples `ProptestConfig::cases` random inputs
//! from the strategies and fails (with the offending case printed) if the
//! body returns an error or panics. There is **no shrinking** — failures
//! report the raw sampled case. Sampling is deterministically seeded per
//! test, so failures are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The sampling state handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        TestRunner { rng: StdRng::seed_from_u64(seed) }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { strategy: self, f }
    }
}

/// Object-safe strategy view, used by [`strategy::Union`].
pub trait DynStrategy<T> {
    /// Draws one value.
    fn sample_dyn(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.sample(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.strategy.sample(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.strategy.sample(runner)).sample(runner)
    }
}

/// The strategy producing exactly one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32, f64);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        self.iter().map(|s| s.sample(runner)).collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(runner),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type for [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Samples any value of `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for [`Arbitrary`] scalars.
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

impl Strategy for AnyScalar<bool> {
    type Value = bool;

    fn sample(&self, runner: &mut TestRunner) -> bool {
        runner.rng().gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyScalar<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyScalar(std::marker::PhantomData)
    }
}

/// Strategy combinators that need a named home.
pub mod strategy {
    use super::{DynStrategy, Strategy, TestRunner};
    use rand::Rng;

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn DynStrategy<T>>>,
    }

    impl<T> Union<T> {
        /// A union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn DynStrategy<T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, runner: &mut TestRunner) -> T {
            let k = runner.rng().gen_range(0..self.options.len());
            self.options[k].sample_dyn(runner)
        }
    }

    /// Boxes a strategy for use in a [`Union`].
    pub fn boxed_dyn<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
        Box::new(s)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// A length specification: a fixed size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Test-loop plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use super::{ProptestConfig, TestCaseError, TestRunner};

    /// Runs `case` for every sampled input set, panicking on the first
    /// failure with the case number (re-runs are deterministic).
    pub fn run_cases(
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
    ) {
        for k in 0..config.cases {
            // Seed per case so a failure names a reproducible case.
            let mut runner = TestRunner::new(0x5157_E400_0000_0000 | u64::from(k));
            if let Err(e) = case(&mut runner) {
                panic!("proptest case {k}/{} failed: {e}", config.cases);
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop::` alias used by idiomatic proptest code
    /// (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: a block of `#[test] fn name(arg in strategy)`
/// items (optionally preceded by `#![proptest_config(..)]`), or the
/// inline form `proptest!(|(arg in strategy)| { .. })`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (|($($arg:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let __config = $crate::ProptestConfig::default();
        $crate::test_runner::run_cases(&__config, |__runner| {
            $(let $arg = $crate::Strategy::sample(&($strat), __runner);)+
            let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            };
            __case()
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&__config, |__runner| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __runner);)+
                    let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed_dyn($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(n in 2usize..6, x in 0.5f64..2.0) {
            prop_assert!((2..6).contains(&n));
            prop_assert!((0.5..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0usize..10, 3..=5)) {
            prop_assert!((3..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuple_and_map(k in (0usize..3, 1usize..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!(k % 10 >= 1 && k % 10 < 4 && k / 10 < 3);
        }

        #[test]
        fn flat_map_dependent(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0usize..2, n..=n))) {
            prop_assert!((1..4).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn early_ok_return(n in 0usize..10) {
            if n > 100 {
                prop_assert!(false, "unreachable");
            }
            return Ok(());
        }
    }

    #[test]
    fn inline_closure_form() {
        let limit = 6usize;
        proptest!(|(v in prop::collection::vec(0usize..limit, 0..=4))| {
            prop_assert!(v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < limit));
        });
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        proptest!(|(n in 0usize..10)| {
            prop_assert!(n < 5, "n was {n}");
        });
    }

    #[test]
    fn vec_of_ranges_is_a_strategy() {
        let dims = [3usize, 4, 5];
        proptest!(|(coords in dims.iter().map(|&d| 0..d).collect::<Vec<_>>())| {
            prop_assert_eq!(coords.len(), 3);
            prop_assert!(coords.iter().zip(dims.iter()).all(|(&c, &d)| c < d));
        });
    }
}
