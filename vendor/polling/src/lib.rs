//! Offline stand-in for the `polling` crate (the build environment has
//! no network access, so the real epoll/kqueue-backed crate cannot be
//! pulled in — and the workspace policy keeps networking deps out
//! anyway).
//!
//! The real crate wraps an OS readiness selector. This shim keeps the
//! same *shape* — register interest under a token, wait for events,
//! wake the waiter from another thread — but emulates readiness at
//! level granularity: [`Poller::wait`] reports **every** registered
//! token as possibly ready, and the caller is expected to perform
//! nonblocking try-IO on each source, treating `WouldBlock` as "not
//! actually ready". What the shim does provide for real:
//!
//! * a bounded, interruptible park: `wait` blocks on a condvar for at
//!   most the supplied timeout, so an event loop can idle cheaply
//!   instead of spinning;
//! * a cross-thread [`Poller::notify`] that wakes (or pre-empts) the
//!   park — completion queues and shutdown paths use it to bound
//!   response latency to a wakeup instead of a poll interval;
//! * token bookkeeping, so the loop's source set and the poller's view
//!   cannot drift apart.
//!
//! Notifications are **sticky**: a `notify` delivered while no thread
//! is waiting causes the next `wait` to return immediately instead of
//! being lost. This mirrors the real crate's semantics and is what
//! makes the completion-queue handshake race-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// A readiness event: the token of a source that may be ready. The
/// caller must confirm with nonblocking IO (`WouldBlock` means it was
/// not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered under.
    pub token: usize,
}

#[derive(Debug, Default)]
struct PollerState {
    /// Registered interest tokens, ordered so `wait` reports a
    /// deterministic sweep order.
    tokens: BTreeSet<usize>,
    /// A notify arrived while nobody was waiting (sticky wakeup).
    notified: bool,
}

/// The emulated readiness selector. One per event loop; `notify` may be
/// called from any thread.
#[derive(Debug, Default)]
pub struct Poller {
    state: Mutex<PollerState>,
    wakeup: Condvar,
}

impl Poller {
    /// An empty poller with no registered sources.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Registers interest in a source under `token`. Registering an
    /// already-registered token is a no-op (level semantics: the source
    /// is reported each sweep regardless).
    pub fn register(&self, token: usize) {
        self.lock().tokens.insert(token);
    }

    /// Drops interest in `token`. Unknown tokens are ignored.
    pub fn deregister(&self, token: usize) {
        self.lock().tokens.remove(&token);
    }

    /// Number of currently registered sources.
    pub fn registered(&self) -> usize {
        self.lock().tokens.len()
    }

    /// Fills `events` with every registered token (level-triggered
    /// emulation) and returns the count. If a sticky notification is
    /// pending, returns immediately and clears it; otherwise parks for
    /// at most `timeout` (`None` parks until the next [`Poller::notify`]).
    ///
    /// An empty return means the park timed out with no sources
    /// registered and no notification.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> usize {
        events.clear();
        let mut state = self.lock();
        if !state.notified {
            state = match timeout {
                Some(t) => self
                    .wakeup
                    .wait_timeout(state, t)
                    .map(|(s, _)| s)
                    .unwrap_or_else(|e| e.into_inner().0),
                None => self.wakeup.wait(state).unwrap_or_else(PoisonError::into_inner),
            };
        }
        state.notified = false;
        events.extend(state.tokens.iter().map(|&token| Event { token }));
        events.len()
    }

    /// Wakes the thread parked in [`Poller::wait`], or arms a sticky
    /// wakeup if none is parked, so the next `wait` returns at once.
    pub fn notify(&self) {
        self.lock().notified = true;
        self.wakeup.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PollerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn wait_reports_every_registered_token_in_order() {
        let poller = Poller::new();
        poller.register(7);
        poller.register(3);
        poller.register(3);
        assert_eq!(poller.registered(), 2);
        let mut events = Vec::new();
        poller.notify();
        let n = poller.wait(&mut events, Some(Duration::from_millis(100)));
        assert_eq!(n, 2);
        assert_eq!(events, vec![Event { token: 3 }, Event { token: 7 }]);
        poller.deregister(3);
        poller.notify();
        poller.wait(&mut events, Some(Duration::from_millis(100)));
        assert_eq!(events, vec![Event { token: 7 }]);
    }

    #[test]
    fn wait_times_out_without_a_notification() {
        let poller = Poller::new();
        poller.register(1);
        let started = Instant::now();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(20)));
        assert!(started.elapsed() >= Duration::from_millis(10));
        // Tokens are still reported after a timeout (level emulation).
        assert_eq!(events, vec![Event { token: 1 }]);
    }

    #[test]
    fn notify_before_wait_is_sticky_and_consumed_once() {
        let poller = Poller::new();
        poller.notify();
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(5)));
        assert!(started.elapsed() < Duration::from_secs(1), "sticky notify must not park");
        // Consumed: the next wait parks for the full timeout again.
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(20)));
        assert!(started.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn cross_thread_notify_interrupts_a_park() {
        let poller = Arc::new(Poller::new());
        let waker = Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify();
        });
        let mut events = Vec::new();
        let started = Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(30)));
        assert!(started.elapsed() < Duration::from_secs(10), "notify must cut the park short");
        handle.join().unwrap();
    }
}
