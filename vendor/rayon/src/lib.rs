//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of rayon's API that the systec workspace uses: [`scope`]
//! with [`Scope::spawn`], and [`current_num_threads`]. Spawned closures
//! may borrow from the enclosing stack frame (the `'scope` lifetime),
//! exactly like rayon's scoped tasks.
//!
//! Semantics: [`scope`] blocks until every spawned task finishes, then
//! returns the closure's value. There is no work-stealing pool behind
//! it — each `spawn` is an OS thread via [`std::thread::scope`] — so
//! callers should spawn roughly one task per core and do their own
//! chunking, which is what `systec-codegen`'s row-parallel dispatcher
//! does. If a task panics, the panic is propagated to the caller after
//! all tasks have been joined, matching rayon.
//!
//! If the environment ever gains network access, swapping back to the
//! real crate is a one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A scope in which borrowed tasks can be spawned (rayon-style).
///
/// Obtained from [`scope`]; hand it to [`Scope::spawn`] closures so
/// tasks can spawn further tasks.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing frame. The task
    /// runs on its own thread and is joined when the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let this = *self;
        self.inner.spawn(move || f(&this));
    }
}

/// Creates a scope for spawning borrowed tasks, blocking until all of
/// them (and the closure itself) have finished.
///
/// # Panics
///
/// If a spawned task panics, the panic is resumed on the calling thread
/// once every task has been joined.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| op(&Scope { inner: s }))
}

/// The number of threads a caller should assume are available — the
/// machine's parallelism, or 1 when it cannot be queried.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_propagates_after_join() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("induced"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
