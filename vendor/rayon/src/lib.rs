//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate provides
//! the subset of rayon's API that the systec workspace uses: [`scope`]
//! with [`Scope::spawn`], and [`current_num_threads`]. Spawned closures
//! may borrow from the enclosing stack frame (the `'scope` lifetime),
//! exactly like rayon's scoped tasks.
//!
//! ## Persistent worker pool
//!
//! Tasks run on a **lazily spawned, process-wide worker pool** instead
//! of a fresh OS thread per spawn. Thread creation costs ~30µs each —
//! the dominant overhead for sub-200µs kernel invocations at high
//! thread counts — so workers are created on demand (only when a task
//! is submitted and no worker is idle, up to [`MAX_WORKERS`]) and then
//! parked on a condition variable between runs: the steady state of a
//! run-many workload spawns **zero** threads. While a scope waits for
//! its tasks, the calling thread helps drain the queue, so a machine
//! core is never left idle holding only the waiting caller (and nested
//! scopes cannot deadlock the pool).
//!
//! Semantics: [`scope`] blocks until every spawned task finishes, then
//! returns the closure's value. Callers should spawn roughly one task
//! per core and do their own chunking, which is what `systec-codegen`'s
//! row-parallel dispatcher does. If a task panics, the panic is
//! propagated to the caller after all tasks have been joined, matching
//! rayon; workers survive task panics (they are reused across runs).
//!
//! If the environment ever gains network access, swapping back to the
//! real crate is a one-line change in the workspace `Cargo.toml`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Upper bound on pool size — far above any sensible spawn count; a
/// guard against runaway recursive spawning, not a tuning knob.
const MAX_WORKERS: usize = 64;

/// A queued, lifetime-erased task (see the safety notes in
/// [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The process-wide pool: a job queue plus worker bookkeeping.
struct Pool {
    state: Mutex<PoolState>,
    /// Signals parked workers that a job (or shutdown—never sent) is
    /// available.
    work_cv: Condvar,
    /// Total workers ever spawned (observability / tests).
    spawned: AtomicUsize,
    /// Tasks ever submitted to the queue.
    submitted: AtomicUsize,
    /// Tasks executed by pool workers.
    executed: AtomicUsize,
    /// Tasks executed by a waiting scope's own thread (help-drain).
    /// A high ratio of helped to executed tasks signals chunk
    /// imbalance: the caller kept stealing work back because the
    /// workers were saturated or slow to wake.
    helped: AtomicUsize,
    /// Times a worker parked on the condition variable.
    parks: AtomicUsize,
    /// Times a parked worker woke (spurious wakeups included).
    wakeups: AtomicUsize,
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Live worker threads.
    workers: usize,
    /// Workers currently parked waiting for work.
    idle: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { queue: VecDeque::new(), workers: 0, idle: 0 }),
        work_cv: Condvar::new(),
        spawned: AtomicUsize::new(0),
        submitted: AtomicUsize::new(0),
        executed: AtomicUsize::new(0),
        helped: AtomicUsize::new(0),
        parks: AtomicUsize::new(0),
        wakeups: AtomicUsize::new(0),
    })
}

impl Pool {
    /// Enqueues a job, growing the pool by one worker when nobody is
    /// idle to take it (and the cap allows).
    fn submit(&'static self, job: Job) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let grow = {
            let mut st = self.state.lock().expect("pool lock");
            st.queue.push_back(job);
            let grow = st.idle == 0 && st.workers < MAX_WORKERS;
            if grow {
                st.workers += 1;
                self.spawned.fetch_add(1, Ordering::Relaxed);
            }
            grow
        };
        self.work_cv.notify_one();
        // Thread creation (~30µs) happens outside the lock so other
        // submitters and workers are never serialized behind it.
        if grow {
            std::thread::Builder::new()
                .name("systec-pool-worker".into())
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    /// Enqueues `jobs` as one batch: a single lock acquisition and a
    /// single notify round instead of one of each per job. The pool
    /// grows by at most the number of jobs idle workers cannot absorb
    /// (within the cap), so a k-way dispatch costs one queue append,
    /// one condvar broadcast, and only the thread spawns it truly
    /// needs — the amortization the serving scheduler's coalesced run
    /// batches are built on.
    fn submit_many(&'static self, jobs: Vec<Job>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        self.submitted.fetch_add(n, Ordering::Relaxed);
        let grow = {
            let mut st = self.state.lock().expect("pool lock");
            st.queue.extend(jobs);
            let deficit = n.saturating_sub(st.idle);
            let grow = deficit.min(MAX_WORKERS.saturating_sub(st.workers));
            st.workers += grow;
            self.spawned.fetch_add(grow, Ordering::Relaxed);
            grow
        };
        if n == 1 {
            self.work_cv.notify_one();
        } else {
            self.work_cv.notify_all();
        }
        for _ in 0..grow {
            std::thread::Builder::new()
                .name("systec-pool-worker".into())
                .spawn(move || self.worker_loop())
                .expect("spawn pool worker");
        }
    }

    /// Pops one job if any is queued (used by waiting scopes to help).
    /// Counted as a helped task — the caller always runs what it pops.
    fn try_pop(&self) -> Option<Job> {
        let job = self.state.lock().expect("pool lock").queue.pop_front();
        if job.is_some() {
            self.helped.fetch_add(1, Ordering::Relaxed);
        }
        job
    }

    /// A worker's life: pop a job or park; never exits (workers are
    /// reused for the whole process lifetime).
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("pool lock");
                loop {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                    st.idle += 1;
                    self.parks.fetch_add(1, Ordering::Relaxed);
                    st = self.work_cv.wait(st).expect("pool lock");
                    self.wakeups.fetch_add(1, Ordering::Relaxed);
                    st.idle -= 1;
                }
            };
            self.executed.fetch_add(1, Ordering::Relaxed);
            // Task panics are caught inside the job wrapper
            // (Scope::spawn), so `job()` only unwinds if the wrapper
            // itself is broken — in which case crashing the worker is
            // the right outcome.
            job();
        }
    }
}

/// Per-[`scope`] completion state: the count of in-flight tasks and the
/// first captured panic.
struct ScopeState {
    pending: Mutex<usize>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A scope in which borrowed tasks can be spawned (rayon-style).
///
/// Obtained from [`scope`]; hand it to [`Scope::spawn`] closures so
/// tasks can spawn further tasks.
pub struct Scope<'scope, 'env: 'scope> {
    state: &'scope ScopeState,
    /// Invariance over `'scope` (mirrors `std::thread::Scope`): nothing
    /// may shorten the lifetime tasks are allowed to borrow.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}
impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing frame. The task
    /// runs on a pool worker (or on the scope's own thread while it
    /// waits) and is joined when the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        *self.state.pending.lock().expect("scope lock") += 1;
        pool().submit(self.wrap(f));
    }

    /// Spawns every task in `fs` with **one** pool submission: a single
    /// queue lock and a single wakeup round for the whole batch, versus
    /// one of each per task with repeated [`Scope::spawn`]. Use this
    /// when fanning a kernel out over worker chunks — at sub-200µs
    /// kernel runtimes the per-spawn lock/notify traffic is a
    /// measurable fraction of the dispatch.
    pub fn spawn_batch<I, F>(&self, fs: I)
    where
        I: IntoIterator<Item = F>,
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let jobs: Vec<Job> = fs.into_iter().map(|f| self.wrap(f)).collect();
        if jobs.is_empty() {
            return;
        }
        *self.state.pending.lock().expect("scope lock") += jobs.len();
        pool().submit_many(jobs);
    }

    /// Boxes a task body with the scope's panic-capture and completion
    /// bookkeeping, erased for the process-wide queue.
    fn wrap<F>(&self, f: F) -> Job
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let this = *self;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| f(&this)));
            if let Err(payload) = result {
                let mut slot = this.state.panic.lock().expect("scope lock");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut pending = this.state.pending.lock().expect("scope lock");
            *pending -= 1;
            if *pending == 0 {
                this.state.done_cv.notify_all();
            }
        });
        erase_lifetime(job)
    }
}

/// Erases a scoped job's borrow lifetime so it can sit in the
/// process-wide queue.
///
/// SAFETY: [`scope`] does not return until `pending` — incremented
/// before every submit, decremented by the job wrapper after the task
/// body finishes — reaches zero, and submitted jobs are always executed
/// (the pool never drops queued work). Every borrow captured by the job
/// therefore strictly outlives its execution, exactly the guarantee
/// `std::thread::scope` relies on internally.
#[allow(unsafe_code)]
fn erase_lifetime<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) }
}

/// Creates a scope for spawning borrowed tasks, blocking until all of
/// them (and the closure itself) have finished. While blocked, the
/// calling thread executes queued tasks itself.
///
/// # Panics
///
/// If a spawned task panics, the panic is resumed on the calling thread
/// once every task has been joined.
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let state =
        ScopeState { pending: Mutex::new(0), done_cv: Condvar::new(), panic: Mutex::new(None) };
    let result = {
        let scope = Scope { state: &state, scope: PhantomData, env: PhantomData };
        catch_unwind(AssertUnwindSafe(|| op(&scope)))
    };
    // Join: help drain the global queue while tasks are in flight (the
    // caller's core does chunk work instead of sleeping, and a nested
    // scope can never deadlock a fully busy pool).
    loop {
        if *state.pending.lock().expect("scope lock") == 0 {
            break;
        }
        if let Some(job) = pool().try_pop() {
            job();
            continue;
        }
        let pending = state.pending.lock().expect("scope lock");
        if *pending == 0 {
            break;
        }
        // Re-check the queue periodically: a task spawned by a task may
        // have been enqueued after our try_pop.
        let _ =
            state.done_cv.wait_timeout(pending, Duration::from_micros(200)).expect("scope lock");
    }
    if let Some(payload) = state.panic.lock().expect("scope lock").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    }
}

/// The number of threads a caller should assume are available — the
/// machine's parallelism, or 1 when it cannot be queried.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Total pool workers ever spawned (a monotone counter): lets tests
/// assert that steady-state runs reuse workers instead of spawning.
pub fn pool_workers_spawned() -> usize {
    pool().spawned.load(Ordering::Relaxed)
}

/// A snapshot of the pool's monotone utilization counters (all counts
/// are process-lifetime totals, never reset).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers ever spawned.
    pub workers_spawned: usize,
    /// Tasks ever submitted.
    pub tasks_submitted: usize,
    /// Tasks executed by pool workers.
    pub tasks_executed: usize,
    /// Tasks executed by a waiting scope's own thread while its spawns
    /// were in flight. Persistent growth relative to `tasks_executed`
    /// signals chunk imbalance — the caller keeps stealing work back.
    pub tasks_helped: usize,
    /// Times a worker parked waiting for work.
    pub parks: usize,
    /// Times a parked worker woke (spurious wakeups included).
    pub wakeups: usize,
}

/// Reads the pool's utilization counters. Once every submitted scope
/// has joined, `tasks_submitted == tasks_executed + tasks_helped`.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    PoolStats {
        workers_spawned: p.spawned.load(Ordering::Relaxed),
        tasks_submitted: p.submitted.load(Ordering::Relaxed),
        tasks_executed: p.executed.load(Ordering::Relaxed),
        tasks_helped: p.helped.load(Ordering::Relaxed),
        parks: p.parks.load(Ordering::Relaxed),
        wakeups: p.wakeups.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn spawn_batch_joins_all_tasks_and_borrows() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let sum = AtomicUsize::new(0);
        let submitted_before = pool_stats().tasks_submitted;
        scope(|s| {
            s.spawn_batch(data.chunks(2).map(|chunk| {
                let sum = &sum;
                move |_: &Scope<'_, '_>| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                }
            }));
            // An empty batch is a no-op, not a wakeup.
            s.spawn_batch(std::iter::empty::<fn(&Scope<'_, '_>)>());
        });
        assert_eq!(sum.load(Ordering::SeqCst), 21);
        assert_eq!(pool_stats().tasks_submitted, submitted_before + 3);
    }

    #[test]
    fn spawn_batch_propagates_a_task_panic() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn_batch((0..3).map(|k| {
                    move |_: &Scope<'_, '_>| {
                        if k == 1 {
                            panic!("induced");
                        }
                    }
                }));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|_| 42);
        assert_eq!(v, 42);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_propagates_after_join() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("induced"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_task_panic() {
        let _ = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("induced"));
            });
        });
        // The pool still runs tasks after a panicking one.
        let ran = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn steady_state_reuses_workers() {
        // Warm the pool, let the workers park, then run many more
        // scopes of the same shape: the spawn counter must not keep
        // growing with the number of runs.
        for _ in 0..3 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        std::hint::black_box(0u64);
                    });
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        let before = pool_workers_spawned();
        for _ in 0..20 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        std::hint::black_box(0u64);
                    });
                }
            });
            // Let the workers re-park: a scope's join can return before
            // its workers have looped back to `idle`, and a submit in
            // that window legitimately spawns one more.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let after = pool_workers_spawned();
        // 20 scopes × 4 spawns = 80 submissions; allow generous
        // scheduler-jitter slack while still proving the overwhelming
        // majority reuse parked workers rather than spawning.
        assert!(
            after <= before + 10,
            "steady-state scopes must reuse parked workers (spawned {before} -> {after})"
        );
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn pool_stats_account_every_task() {
        // Other tests in this binary share the pool, so assert on
        // deltas and lower bounds only. `executed`/`helped` increment
        // before a task body runs and a scope joins only after every
        // body finished, so by the time `scope` returns all four of our
        // tasks are counted.
        let before = pool_stats();
        let ran = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4);
        let after = pool_stats();
        assert!(after.tasks_submitted >= before.tasks_submitted + 4);
        assert!(
            after.tasks_executed + after.tasks_helped
                >= before.tasks_executed + before.tasks_helped + 4,
            "every finished task is attributed to a worker or a helper"
        );
    }
}
