//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this tiny crate
//! provides the exact API subset the workspace uses: a seedable
//! [`rngs::StdRng`] plus the [`Rng`] extension methods `gen`,
//! `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, deterministic, and *not* the same
//! stream as upstream `StdRng` (callers here only rely on seeded
//! reproducibility, never on specific values).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core trait, as in upstream `rand`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can seed an RNG, as in upstream `rand`.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling values; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`, `bool`, or a
    /// full-range integer).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in the given range (`lo..hi` or
    /// `lo..=hi`, integer or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Distribution of "the obvious uniform value" for a type (upstream's
/// `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges that can be sampled from (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Treat as half-open: indistinguishable in f64 for our callers.
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(0.25f64..4.0);
            assert!((0.25..4.0).contains(&f));
            let g = r.gen_range(f64::EPSILON..=1.0);
            assert!(g > 0.0 && g <= 1.0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
