//! A text frontend for einsums, in the Finch-like concrete syntax the
//! pretty printer emits.
//!
//! ```text
//! for i, j: y[i] += A[i, j] * x[j]
//! for i, j: y[] += x[i] * A[i, j] * x[j]
//! for i, j: y[i] min= A[i, j] + d[j]
//! ```
//!
//! The grammar is the pointwise-einsum input language of the compiler
//! (§4.1): one assignment, a product/sum of tensor reads and literals,
//! and an explicit loop order.
//!
//! ```
//! use systec_ir::parse_einsum;
//!
//! let e = parse_einsum("for i, j: y[i] += A[i, j] * x[j]").unwrap();
//! assert_eq!(e.to_string(), "for i, j: y[i] += A[i, j] * x[j]");
//! ```

use std::error::Error;
use std::fmt;

use crate::{Access, AssignOp, BinOp, Einsum, Expr, Index};

/// An error raised while parsing an einsum string.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl Error for ParseError {}

/// Parses an einsum in the `for <order>: <out>[<idx>] <op> <expr>` form.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending position for malformed
/// input, and propagates the einsum validation rules (the loop order
/// must cover exactly the assignment's indices).
pub fn parse_einsum(input: &str) -> Result<Einsum, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    p.expect_keyword("for")?;
    let mut order = vec![p.ident("loop index")?];
    while p.eat(',') {
        order.push(p.ident("loop index")?);
    }
    p.expect(':')?;
    let output = p.parse_access()?;
    let op = p.parse_assign_op()?;
    let rhs = p.parse_expr()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("unexpected trailing input"));
    }
    // Validate via Einsum::new, converting its panic conditions into
    // parse-level checks first.
    let mut used = rhs.indices();
    used.extend(output.indices.iter().cloned());
    let order_idx: Vec<Index> = order.iter().map(Index::new).collect();
    let ordered: std::collections::BTreeSet<Index> = order_idx.iter().cloned().collect();
    if ordered.len() != order_idx.len() {
        return Err(ParseError { at: 0, message: "loop order repeats an index".into() });
    }
    if used != ordered {
        return Err(ParseError {
            at: 0,
            message: format!(
                "loop order must mention exactly the assignment's indices (order {:?}, used {:?})",
                order,
                used.iter().map(|i| i.name().to_string()).collect::<Vec<_>>()
            ),
        });
    }
    Ok(Einsum::new(output, op, rhs, order_idx))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{c}`")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.rest().starts_with(kw)
            && !self.input[self.pos + kw.len()..]
                .starts_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.rest();
        let mut len = 0;
        for c in bytes.chars() {
            if (len == 0 && (c.is_alphabetic() || c == '_'))
                || (len > 0 && (c.is_alphanumeric() || c == '_'))
            {
                len += c.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            return Err(self.err(format!("expected {what}")));
        }
        self.pos = start + len;
        Ok(self.input[start..start + len].to_string())
    }

    fn parse_access(&mut self) -> Result<Access, ParseError> {
        let name = self.ident("tensor name")?;
        self.expect('[')?;
        let mut indices = Vec::new();
        self.skip_ws();
        if !self.rest().starts_with(']') {
            indices.push(Index::new(self.ident("subscript")?));
            while self.eat(',') {
                indices.push(Index::new(self.ident("subscript")?));
            }
        }
        self.expect(']')?;
        Ok(Access { tensor: crate::TensorRef::base(name), indices })
    }

    fn parse_assign_op(&mut self) -> Result<AssignOp, ParseError> {
        self.skip_ws();
        for (text, op) in [
            ("+=", AssignOp::Add),
            ("min=", AssignOp::Min),
            ("max=", AssignOp::Max),
            ("=", AssignOp::Overwrite),
        ] {
            if self.rest().starts_with(text) {
                self.pos += text.len();
                return Ok(op);
            }
        }
        Err(self.err("expected an assignment operator (`+=`, `min=`, `max=`, `=`)"))
    }

    /// `expr := term ('+' term)*` — sums bind loosest.
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.parse_term()?];
        while self.eat('+') {
            terms.push(self.parse_term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::call(BinOp::Add, terms)
        })
    }

    /// `term := factor ('*' factor)*`
    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut factors = vec![self.parse_factor()?];
        while self.eat('*') {
            factors.push(self.parse_factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::call(BinOp::Mul, factors)
        })
    }

    /// `factor := number | tensor '[' … ']' | '(' expr ')'`
    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat('(') {
            let inner = self.parse_expr()?;
            self.expect(')')?;
            return Ok(inner);
        }
        if self.rest().starts_with(|c: char| c.is_ascii_digit()) {
            let start = self.pos;
            let mut len = 0;
            for c in self.rest().chars() {
                if c.is_ascii_digit() || c == '.' {
                    len += 1;
                } else {
                    break;
                }
            }
            self.pos += len;
            let text = &self.input[start..self.pos];
            return text
                .parse::<f64>()
                .map(Expr::Literal)
                .map_err(|_| ParseError { at: start, message: format!("bad number `{text}`") });
        }
        Ok(Expr::Access(self.parse_access()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ssymv() {
        let e = parse_einsum("for i, j: y[i] += A[i, j] * x[j]").unwrap();
        assert_eq!(e.to_string(), "for i, j: y[i] += A[i, j] * x[j]");
        assert_eq!(e.op, AssignOp::Add);
    }

    #[test]
    fn parses_scalar_output_and_three_factors() {
        let e = parse_einsum("for i, j: y[] += x[i] * A[i, j] * x[j]").unwrap();
        assert_eq!(e.output.indices.len(), 0);
        assert_eq!(e.rhs.accesses().len(), 3);
    }

    #[test]
    fn parses_min_plus() {
        let e = parse_einsum("for i, j: y[i] min= A[i, j] + d[j]").unwrap();
        assert_eq!(e.op, AssignOp::Min);
        assert_eq!(e.to_string(), "for i, j: y[i] min= A[i, j] + d[j]");
    }

    #[test]
    fn parses_literal_factor_and_parens() {
        let e = parse_einsum("for i, j: y[i] += 2 * (A[i, j] + B[i, j]) * x[j]").unwrap();
        assert!(e.to_string().contains("2 * (A[i, j] + B[i, j]) * x[j]"), "{e}");
    }

    #[test]
    fn parses_mttkrp5() {
        let e = parse_einsum(
            "for i, k, l, m, n, j: C[i, j] += A[i, k, l, m, n] * B[k, j] * B[l, j] * B[m, j] * B[n, j]",
        )
        .unwrap();
        assert_eq!(e.rhs.accesses().len(), 5);
        assert_eq!(e.loop_order.len(), 6);
    }

    #[test]
    fn whitespace_is_flexible() {
        let e = parse_einsum("for i,j:y[i]+=A[i,j]*x[j]").unwrap();
        assert_eq!(e.to_string(), "for i, j: y[i] += A[i, j] * x[j]");
    }

    #[test]
    fn missing_for_is_reported() {
        let err = parse_einsum("y[i] += A[i, j] * x[j]").unwrap_err();
        assert!(err.message.contains("for"), "{err}");
    }

    #[test]
    fn missing_bracket_is_reported() {
        let err = parse_einsum("for i, j: y[i] += A[i, j * x[j]").unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");
    }

    #[test]
    fn wrong_loop_order_is_reported() {
        let err = parse_einsum("for i: y[i] += A[i, j] * x[j]").unwrap_err();
        assert!(err.message.contains("loop order"), "{err}");
    }

    #[test]
    fn repeated_loop_index_is_reported() {
        let err = parse_einsum("for i, i: y[i] += A[i, i] * x[i]").unwrap_err();
        assert!(err.message.contains("repeats"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_reported() {
        let err = parse_einsum("for i, j: y[i] += A[i, j] * x[j] garbage").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn roundtrip_through_display() {
        for text in [
            "for i, j: y[i] += A[i, j] * x[j]",
            "for i, j, k: C[i, j] += A[i, k] * A[j, k]",
            "for j, k, l, i: C[i, j, l] += A[k, j, l] * B[k, i]",
            "for i, j: y[i] min= A[i, j] + d[j]",
            "for i, j: y[i] max= A[i, j] + d[j]",
            "for i, j: y[i, j] = A[i, j]",
        ] {
            let e = parse_einsum(text).unwrap();
            assert_eq!(e.to_string(), text);
            let again = parse_einsum(&e.to_string()).unwrap();
            assert_eq!(again, e, "display must re-parse to the same einsum");
        }
    }
}
