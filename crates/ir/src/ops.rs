//! Element operators, comparison operators and reduction operators.
//!
//! SySTeC is "easily extensible to general operators beyond `+` and `*`"
//! (paper §1, contribution 3); the Bellman-Ford evaluation (§5.2.2) uses
//! the tropical `(min, +)` semiring. All operator enums here carry the
//! algebraic facts (identity, commutativity, idempotence) that the
//! symmetrizer and the optimization passes rely on.

use std::fmt;

/// A binary element operator appearing in right-hand-side expressions.
///
/// `Add`/`Mul` form the usual arithmetic semiring; `Min`/`Max` appear in
/// tropical kernels such as the Bellman-Ford update `y[i] min= A[i,j] + d[j]`.
///
/// # Examples
///
/// ```
/// use systec_ir::BinOp;
///
/// assert!(BinOp::Add.is_commutative());
/// assert_eq!(BinOp::Mul.identity(), Some(1.0));
/// assert_eq!(BinOp::Min.identity(), Some(f64::INFINITY));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition `a + b`.
    Add,
    /// Multiplication `a * b`.
    Mul,
    /// Subtraction `a - b` (not commutative).
    Sub,
    /// Division `a / b` (not commutative).
    Div,
    /// Minimum `min(a, b)`.
    Min,
    /// Maximum `max(a, b)`.
    Max,
}

impl BinOp {
    /// Applies the operator to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Mul => a * b,
            BinOp::Sub => a - b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// Returns `true` if `a ⊗ b == b ⊗ a` for all inputs.
    ///
    /// The normalization stage may only sort the operands of commutative
    /// operators (§4.1 stage 4).
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }

    /// Returns `true` if the operator is associative.
    pub fn is_associative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max)
    }

    /// Returns `true` if `a ⊗ a == a` for all inputs.
    ///
    /// Idempotent reductions (min/max) cannot be strength-reduced by the
    /// distributive-assignment-grouping pass: `N` repeated `min=` updates
    /// collapse to one update with *no* scale factor.
    pub fn is_idempotent(self) -> bool {
        matches!(self, BinOp::Min | BinOp::Max)
    }

    /// The identity element `e` with `a ⊗ e == a`, if one exists.
    pub fn identity(self) -> Option<f64> {
        match self {
            BinOp::Add => Some(0.0),
            BinOp::Mul => Some(1.0),
            BinOp::Sub | BinOp::Div => None,
            BinOp::Min => Some(f64::INFINITY),
            BinOp::Max => Some(f64::NEG_INFINITY),
        }
    }

    /// The operator's symbol as printed by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Mul => "*",
            BinOp::Sub => "-",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// Returns `true` if the operator is printed in infix position.
    pub fn is_infix(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Sub | BinOp::Div)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A comparison operator between two loop indices.
///
/// Comparisons guard the canonical-triangle restriction (`p1 <= p2`) and
/// the diagonal cases (`i == j`). The executor lifts comparisons between a
/// loop index and outer indices into loop bounds, Finch-style (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CmpOp {
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete index values.
    pub fn eval(self, a: usize, b: usize) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with its arguments swapped: `a ⋈ b == b ⋈' a`.
    ///
    /// ```
    /// use systec_ir::CmpOp;
    /// assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
    /// assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    /// ```
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation: `!(a ⋈ b) == a ⋈' b`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator's symbol as printed by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The reduction operator of an assignment statement.
///
/// `Add` corresponds to `+=`, `Min` to `min=` (Bellman-Ford), `Max` to
/// `max=`, and `Overwrite` to plain `=` (used by the output-replication
/// loops emitted by the visible-output-symmetry pass, §4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum AssignOp {
    /// `lhs = rhs`
    Overwrite,
    /// `lhs += rhs`
    Add,
    /// `lhs min= rhs`
    Min,
    /// `lhs max= rhs`
    Max,
}

impl AssignOp {
    /// Combines the current value with the incoming value.
    pub fn apply(self, current: f64, incoming: f64) -> f64 {
        match self {
            AssignOp::Overwrite => incoming,
            AssignOp::Add => current + incoming,
            AssignOp::Min => current.min(incoming),
            AssignOp::Max => current.max(incoming),
        }
    }

    /// The reduction's identity (the value output tensors are initialized
    /// to), if the reduction has one.
    pub fn identity(self) -> Option<f64> {
        match self {
            AssignOp::Overwrite => None,
            AssignOp::Add => Some(0.0),
            AssignOp::Min => Some(f64::INFINITY),
            AssignOp::Max => Some(f64::NEG_INFINITY),
        }
    }

    /// The underlying binary operator for reducing assignments.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Overwrite => None,
            AssignOp::Add => Some(BinOp::Add),
            AssignOp::Min => Some(BinOp::Min),
            AssignOp::Max => Some(BinOp::Max),
        }
    }

    /// Returns `true` if `N` repeated applications of the same incoming
    /// value equal a single application (min/max).
    ///
    /// The distributive-assignment-grouping pass (§4.2.7) turns `N`
    /// repeated `+=` into one `+=` of `N * rhs`; for idempotent reductions
    /// it simply drops the duplicates.
    pub fn is_idempotent(self) -> bool {
        matches!(self, AssignOp::Min | AssignOp::Max | AssignOp::Overwrite)
    }

    /// The assignment symbol as printed by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Overwrite => "=",
            AssignOp::Add => "+=",
            AssignOp::Min => "min=",
            AssignOp::Max => "max=",
        }
    }
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(BinOp::Max.apply(2.0, 3.0), 3.0);
    }

    #[test]
    fn identities_are_identities() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max] {
            let e = op.identity().unwrap();
            for x in [-3.5, 0.0, 7.25] {
                assert_eq!(op.apply(x, e), x, "{op:?} identity failed on {x}");
            }
        }
        assert_eq!(BinOp::Sub.identity(), None);
        assert_eq!(BinOp::Div.identity(), None);
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(BinOp::Min.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
    }

    #[test]
    fn idempotence() {
        assert!(BinOp::Min.is_idempotent());
        assert!(BinOp::Max.is_idempotent());
        assert!(!BinOp::Add.is_idempotent());
        assert!(AssignOp::Min.is_idempotent());
        assert!(!AssignOp::Add.is_idempotent());
    }

    #[test]
    fn cmp_eval_all() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
    }

    #[test]
    fn cmp_flip_negate_consistency() {
        let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Eq, CmpOp::Ne, CmpOp::Gt, CmpOp::Ge];
        for op in ops {
            for a in 0..3usize {
                for b in 0..3usize {
                    assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op:?} flip");
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} negate");
                }
            }
        }
    }

    #[test]
    fn assign_apply_and_identity() {
        assert_eq!(AssignOp::Add.apply(1.0, 2.0), 3.0);
        assert_eq!(AssignOp::Min.apply(1.0, 2.0), 1.0);
        assert_eq!(AssignOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(AssignOp::Overwrite.apply(1.0, 2.0), 2.0);
        let v = AssignOp::Min.identity().unwrap();
        assert_eq!(AssignOp::Min.apply(v, 9.0), 9.0);
    }

    #[test]
    fn symbols() {
        assert_eq!(BinOp::Mul.to_string(), "*");
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(AssignOp::Min.to_string(), "min=");
    }
}
