//! Loop-index names.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A loop-index name such as `i`, `j` or `k`.
///
/// Indices are cheap to clone (reference-counted) and compare by name.
/// The derived [`Ord`] is lexicographic on the name, which the compiler
/// uses as the "predetermined sort order" of the paper's normalization
/// stage (§4.1, stage 4).
///
/// # Examples
///
/// ```
/// use systec_ir::Index;
///
/// let i = Index::new("i");
/// assert_eq!(i.name(), "i");
/// assert!(i < Index::new("j"));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Index(Arc<str>);

impl Index {
    /// Creates an index with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Index(Arc::from(name.as_ref()))
    }

    /// Returns the index's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Index {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index({})", self.0)
    }
}

impl From<&str> for Index {
    fn from(s: &str) -> Self {
        Index::new(s)
    }
}

impl From<String> for Index {
    fn from(s: String) -> Self {
        Index::new(s)
    }
}

impl Borrow<str> for Index {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Index {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        assert_eq!(Index::new("abc").name(), "abc");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Index::new("k"), Index::new("i"), Index::new("j")];
        v.sort();
        let names: Vec<_> = v.iter().map(Index::name).collect();
        assert_eq!(names, ["i", "j", "k"]);
    }

    #[test]
    fn display_and_debug() {
        let i = Index::new("i");
        assert_eq!(i.to_string(), "i");
        assert_eq!(format!("{i:?}"), "Index(i)");
    }

    #[test]
    fn borrow_allows_str_keyed_lookup() {
        use std::collections::HashSet;
        let set: HashSet<Index> = [Index::new("i")].into_iter().collect();
        assert!(set.contains("i"));
    }
}
