//! Pretty printing of programs in a Finch-like concrete syntax.
//!
//! The printed form matches the listings in the paper closely enough that
//! the pass-by-pass unit tests can assert against transcriptions of the
//! paper's before/after examples.

use std::fmt;

use crate::{Access, Cond, Expr, Lhs, Stmt};

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.tensor.display_name())?;
        for (k, i) in self.indices.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Scalar(s) => f.write_str(s),
            Expr::Access(a) => write!(f, "{a}"),
            Expr::Call { op, args } => {
                if op.is_infix() {
                    for (k, a) in args.iter().enumerate() {
                        if k > 0 {
                            write!(f, " {op} ")?;
                        }
                        let needs_parens = matches!(a, Expr::Call { op: inner, .. } if inner.is_infix() && inner != op);
                        if needs_parens {
                            write!(f, "({a})")?;
                        } else {
                            write!(f, "{a}")?;
                        }
                    }
                    Ok(())
                } else {
                    write!(f, "{op}(")?;
                    for (k, a) in args.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            }
            Expr::CmpVal { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Lookup { table, index } => {
                write!(f, "[")?;
                for (k, v) in table.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "][{index}]")
            }
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => f.write_str("true"),
            Cond::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Cond::And(cs) => {
                for (k, c) in cs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " && ")?;
                    }
                    if matches!(c, Cond::Or(_)) {
                        write!(f, "({c})")?;
                    } else {
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
            Cond::Or(cs) => {
                for (k, c) in cs.iter().enumerate() {
                    if k > 0 {
                        write!(f, " || ")?;
                    }
                    if matches!(c, Cond::And(_)) {
                        write!(f, "({c})")?;
                    } else {
                        write!(f, "{c}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Lhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lhs::Tensor(a) => write!(f, "{a}"),
            Lhs::Scalar(s) => f.write_str(s),
        }
    }
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            Stmt::Block(ss) => {
                for (k, s) in ss.iter().enumerate() {
                    if k > 0 {
                        writeln!(f)?;
                    }
                    s.fmt_indented(f, depth)?;
                }
                Ok(())
            }
            Stmt::Loop { index, body } => {
                writeln!(f, "{pad}for {index}:")?;
                body.fmt_indented(f, depth + 1)
            }
            Stmt::If { cond, body } => {
                writeln!(f, "{pad}if {cond}:")?;
                body.fmt_indented(f, depth + 1)
            }
            Stmt::Let { name, value, body } => {
                writeln!(f, "{pad}let {name} = {value}:")?;
                body.fmt_indented(f, depth + 1)
            }
            Stmt::Workspace { name, init, body } => {
                writeln!(f, "{pad}workspace {name} = {init}:")?;
                body.fmt_indented(f, depth + 1)
            }
            Stmt::Assign { lhs, op, rhs } => write!(f, "{pad}{lhs} {op} {rhs}"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::{AssignOp, Cond, Expr, Stmt};

    #[test]
    fn access_display() {
        assert_eq!(access("A", ["i", "j"]).to_string(), "A[i, j]");
        assert_eq!(access("y", [] as [&str; 0]).to_string(), "y[]");
    }

    #[test]
    fn expr_display_infix_and_parens() {
        let e = mul([
            Expr::call(crate::BinOp::Add, [lit(1.0), Expr::from(access("x", ["i"]))]),
            access("y", ["i"]).into(),
        ]);
        assert_eq!(e.to_string(), "(1 + x[i]) * y[i]");
    }

    #[test]
    fn expr_display_min() {
        let e = Expr::call(crate::BinOp::Min, [lit(0.0), Expr::from(access("x", ["i"]))]);
        assert_eq!(e.to_string(), "min(0, x[i])");
    }

    #[test]
    fn cond_display_precedence() {
        let c = Cond::or([and([eq("i", "k"), ne("k", "l")]), and([ne("i", "k"), eq("k", "l")])]);
        assert_eq!(c.to_string(), "(i == k && k != l) || (i != k && k == l)");
    }

    #[test]
    fn stmt_display_full_kernel() {
        // The optimized SSYMV of Figure 2 (right).
        let body = Stmt::block([
            Stmt::guarded(
                lt("i", "j"),
                Stmt::Let {
                    name: "a".into(),
                    value: access("A", ["i", "j"]).into(),
                    body: Box::new(Stmt::block([
                        Stmt::Assign {
                            lhs: access("y", ["i"]).into(),
                            op: AssignOp::Add,
                            rhs: mul([Expr::Scalar("a".into()), access("x", ["j"]).into()]),
                        },
                        Stmt::Assign {
                            lhs: access("y", ["j"]).into(),
                            op: AssignOp::Add,
                            rhs: mul([Expr::Scalar("a".into()), access("x", ["i"]).into()]),
                        },
                    ])),
                },
            ),
            Stmt::guarded(
                eq("i", "j"),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        ]);
        let s = Stmt::loops([idx("j"), idx("i")], body);
        let expected = "\
for j:
  for i:
    if i < j:
      let a = A[i, j]:
        y[i] += a * x[j]
        y[j] += a * x[i]
    if i == j:
      y[i] += A[i, j] * x[j]";
        assert_eq!(s.to_string(), expected);
    }

    #[test]
    fn lookup_display() {
        let e = Expr::Lookup {
            table: vec![2.0, 0.0, 1.0],
            index: Box::new(Expr::CmpVal { op: crate::CmpOp::Eq, lhs: idx("i"), rhs: idx("k") }),
        };
        assert_eq!(e.to_string(), "[2, 0, 1][(i == k)]");
    }
}
