//! Right-hand-side expressions and tensor accesses.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::{BinOp, CmpOp, Index};

/// A reference to a named tensor, possibly to a derived *variant* of it.
///
/// The concordize pass (§4.2.3) rewrites accesses to use transposed copies
/// (`B_T`), and diagonal splitting (§4.2.9, Listing 7) rewrites accesses to
/// use the diagonal / off-diagonal split of a symmetric tensor (`A_diag`,
/// `A_nondiag`). Rather than inventing fresh opaque names, a [`TensorRef`]
/// records the base name together with the derivation, so the runtime can
/// materialize the variant from the base tensor (the paper excludes this
/// rearrangement from kernel timings; so do our benchmarks).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TensorRef {
    /// The base tensor's name, e.g. `"A"`.
    pub name: String,
    /// Mode permutation applied to the base tensor; empty means identity.
    ///
    /// `perm[k]` is the base-tensor mode stored at mode `k` of the variant:
    /// `variant[i_0, …] == base[i_{perm^-1(0)}, …]`; concretely
    /// `variant[j_0, …, j_{n-1}] == base[j at positions perm]`, i.e.
    /// `variant[coords] == base[apply_perm(perm, coords)]`.
    pub perm: Vec<usize>,
    /// Which entries of the base tensor the variant retains.
    pub part: TensorPart,
}

/// Which entries of a base tensor a [`TensorRef`] variant retains.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum TensorPart {
    /// All stored entries.
    #[default]
    All,
    /// Only entries lying on some diagonal of the given symmetric index
    /// positions (at least two of the listed modes equal).
    Diagonal,
    /// Only entries on no diagonal (all listed modes pairwise distinct).
    OffDiagonal,
}

impl TensorRef {
    /// A reference to the base tensor itself.
    pub fn base(name: impl Into<String>) -> Self {
        TensorRef { name: name.into(), perm: Vec::new(), part: TensorPart::All }
    }

    /// A reference to a transposed variant with the given mode permutation.
    pub fn transposed(name: impl Into<String>, perm: Vec<usize>) -> Self {
        let perm = if is_identity(&perm) { Vec::new() } else { perm };
        TensorRef { name: name.into(), perm, part: TensorPart::All }
    }

    /// Returns `true` if this is the base tensor (no permutation, all parts).
    pub fn is_base(&self) -> bool {
        self.perm.is_empty() && self.part == TensorPart::All
    }

    /// The display name of the variant, e.g. `A`, `B_T`, `A_diag`,
    /// `A_nondiag`, `A_T_diag`.
    pub fn display_name(&self) -> String {
        let mut s = self.name.clone();
        if !self.perm.is_empty() {
            s.push_str("_T");
            // Distinguish non-reversal permutations of rank > 2 explicitly.
            let n = self.perm.len();
            let reversal: Vec<usize> = (0..n).rev().collect();
            if n > 2 && self.perm != reversal {
                for p in &self.perm {
                    s.push_str(&p.to_string());
                }
            }
        }
        match self.part {
            TensorPart::All => {}
            TensorPart::Diagonal => s.push_str("_diag"),
            TensorPart::OffDiagonal => s.push_str("_nondiag"),
        }
        s
    }
}

fn is_identity(perm: &[usize]) -> bool {
    perm.iter().enumerate().all(|(i, &p)| i == p)
}

/// A tensor access `T[i_1, …, i_n]` (a read on the right-hand side, or a
/// write target on the left-hand side).
///
/// In Finch semantics an access is an *iterator* over the tensor's stored
/// values; the executor drives loops from accesses whose levels are sparse.
///
/// # Examples
///
/// ```
/// use systec_ir::build::access;
///
/// let a = access("A", ["i", "j"]);
/// assert_eq!(a.to_string(), "A[i, j]");
/// assert_eq!(a.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Access {
    /// The tensor (or tensor variant) being accessed.
    pub tensor: TensorRef,
    /// The subscript indices, outermost mode first.
    pub indices: Vec<Index>,
}

impl Access {
    /// Creates an access to the base tensor `name` at `indices`.
    pub fn new<I: Into<Index>>(
        name: impl Into<String>,
        indices: impl IntoIterator<Item = I>,
    ) -> Self {
        Access {
            tensor: TensorRef::base(name),
            indices: indices.into_iter().map(Into::into).collect(),
        }
    }

    /// The number of subscripts.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Applies an index substitution to the subscripts.
    pub fn substitute(&self, map: &HashMap<Index, Index>) -> Access {
        Access {
            tensor: self.tensor.clone(),
            indices: self
                .indices
                .iter()
                .map(|i| map.get(i).cloned().unwrap_or_else(|| i.clone()))
                .collect(),
        }
    }
}

/// A right-hand-side expression.
///
/// Commutative, associative operators are stored *flattened* as n-ary
/// [`Expr::Call`] nodes, which makes the normalization stage (sorting
/// operands) and the distributive-grouping pass straightforward.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A floating-point literal.
    Literal(f64),
    /// A reference to a `let`-bound scalar variable.
    Scalar(String),
    /// A tensor read.
    Access(Access),
    /// An n-ary operator application. Non-commutative operators
    /// (`Sub`, `Div`) always have exactly two arguments.
    Call {
        /// The element operator.
        op: BinOp,
        /// The operands (2 or more).
        args: Vec<Expr>,
    },
    /// A comparison between two indices, evaluating to `1.0` or `0.0`.
    ///
    /// Used to build the index of a simplicial lookup table (§4.2.5).
    CmpVal {
        /// The comparison operator.
        op: CmpOp,
        /// Left index.
        lhs: Index,
        /// Right index.
        rhs: Index,
    },
    /// A constant-table lookup `table[index]` with zero-based `index`.
    ///
    /// Produced by the simplicial-lookup-table pass (§4.2.5) to select the
    /// multiplicity factor from the pattern of equal indices.
    Lookup {
        /// The constant table.
        table: Vec<f64>,
        /// The index expression (evaluated and truncated to `usize`).
        index: Box<Expr>,
    },
}

impl Expr {
    /// Creates a flattened n-ary call, merging nested calls of the same
    /// associative operator.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one argument is supplied.
    pub fn call(op: BinOp, args: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for a in args {
            match a {
                Expr::Call { op: o2, args: inner } if o2 == op && op.is_associative() => {
                    flat.extend(inner);
                }
                other => flat.push(other),
            }
        }
        assert!(!flat.is_empty(), "Expr::call requires at least one argument");
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Expr::Call { op, args: flat }
        }
    }

    /// All tensor accesses in the expression, left to right.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            Expr::Access(a) => out.push(a),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_accesses(out);
                }
            }
            Expr::Lookup { index, .. } => index.collect_accesses(out),
            Expr::Literal(_) | Expr::Scalar(_) | Expr::CmpVal { .. } => {}
        }
    }

    /// The set of loop indices mentioned anywhere in the expression.
    pub fn indices(&self) -> BTreeSet<Index> {
        let mut out = BTreeSet::new();
        self.collect_indices(&mut out);
        out
    }

    fn collect_indices(&self, out: &mut BTreeSet<Index>) {
        match self {
            Expr::Access(a) => out.extend(a.indices.iter().cloned()),
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_indices(out);
                }
            }
            Expr::CmpVal { lhs, rhs, .. } => {
                out.insert(lhs.clone());
                out.insert(rhs.clone());
            }
            Expr::Lookup { index, .. } => index.collect_indices(out),
            Expr::Literal(_) | Expr::Scalar(_) => {}
        }
    }

    /// Applies an index substitution throughout the expression.
    pub fn substitute(&self, map: &HashMap<Index, Index>) -> Expr {
        let sub = |i: &Index| map.get(i).cloned().unwrap_or_else(|| i.clone());
        match self {
            Expr::Literal(v) => Expr::Literal(*v),
            Expr::Scalar(s) => Expr::Scalar(s.clone()),
            Expr::Access(a) => Expr::Access(a.substitute(map)),
            Expr::Call { op, args } => {
                Expr::Call { op: *op, args: args.iter().map(|a| a.substitute(map)).collect() }
            }
            Expr::CmpVal { op, lhs, rhs } => Expr::CmpVal { op: *op, lhs: sub(lhs), rhs: sub(rhs) },
            Expr::Lookup { table, index } => {
                Expr::Lookup { table: table.clone(), index: Box::new(index.substitute(map)) }
            }
        }
    }

    /// A total order on expressions (literals compared with
    /// [`f64::total_cmp`]), used to sort commutative operands during
    /// normalization.
    pub fn total_cmp(&self, other: &Expr) -> Ordering {
        use Expr::*;
        fn tag(e: &Expr) -> u8 {
            match e {
                Literal(_) => 0,
                Scalar(_) => 1,
                Access(_) => 2,
                CmpVal { .. } => 3,
                Call { .. } => 4,
                Lookup { .. } => 5,
            }
        }
        match (self, other) {
            (Literal(a), Literal(b)) => a.total_cmp(b),
            (Scalar(a), Scalar(b)) => a.cmp(b),
            (Access(a), Access(b)) => a.cmp(b),
            (CmpVal { op: o1, lhs: l1, rhs: r1 }, CmpVal { op: o2, lhs: l2, rhs: r2 }) => {
                o1.cmp(o2).then_with(|| l1.cmp(l2)).then_with(|| r1.cmp(r2))
            }
            (Call { op: o1, args: a1 }, Call { op: o2, args: a2 }) => o1.cmp(o2).then_with(|| {
                for (x, y) in a1.iter().zip(a2.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a1.len().cmp(&a2.len())
            }),
            (Lookup { table: t1, index: i1 }, Lookup { table: t2, index: i2 }) => {
                for (x, y) in t1.iter().zip(t2.iter()) {
                    let c = x.total_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                t1.len().cmp(&t2.len()).then_with(|| i1.total_cmp(i2))
            }
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }

    /// Sorts the operands of commutative calls recursively, producing the
    /// canonical operand order the normalization stage requires.
    pub fn sort_commutative(&self) -> Expr {
        match self {
            Expr::Call { op, args } => {
                let mut args: Vec<Expr> = args.iter().map(|a| a.sort_commutative()).collect();
                if op.is_commutative() {
                    args.sort_by(|a, b| a.total_cmp(b));
                }
                Expr::Call { op: *op, args }
            }
            Expr::Lookup { table, index } => {
                Expr::Lookup { table: table.clone(), index: Box::new(index.sort_commutative()) }
            }
            other => other.clone(),
        }
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::Literal(v)
    }
}

impl From<Access> for Expr {
    fn from(a: Access) -> Self {
        Expr::Access(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn call_flattens_associative_ops() {
        let e = Expr::call(
            BinOp::Mul,
            [
                Expr::call(BinOp::Mul, [lit(2.0), Expr::from(access("A", ["i"]))]),
                Expr::from(access("x", ["i"])),
            ],
        );
        match e {
            Expr::Call { op: BinOp::Mul, args } => assert_eq!(args.len(), 3),
            other => panic!("expected flattened call, got {other:?}"),
        }
    }

    #[test]
    fn call_single_arg_unwraps() {
        let e = Expr::call(BinOp::Add, [lit(1.0)]);
        assert_eq!(e, lit(1.0));
    }

    #[test]
    fn accesses_and_indices() {
        let e = mul([access("A", ["i", "j"]), access("x", ["j"])]);
        assert_eq!(e.accesses().len(), 2);
        let names: Vec<String> = e.indices().iter().map(|i| i.name().to_string()).collect();
        assert_eq!(names, ["i", "j"]);
    }

    #[test]
    fn substitute_renames() {
        let map: HashMap<Index, Index> =
            [(Index::new("i"), Index::new("j")), (Index::new("j"), Index::new("i"))]
                .into_iter()
                .collect();
        let e = mul([access("A", ["i", "j"]), access("x", ["j"])]);
        let s = e.substitute(&map);
        assert_eq!(s, mul([access("A", ["j", "i"]), access("x", ["i"])]));
    }

    #[test]
    fn sort_commutative_orders_operands() {
        let e = mul([Expr::from(access("x", ["j"])), lit(2.0), access("A", ["i", "j"]).into()]);
        let s = e.sort_commutative();
        match s {
            Expr::Call { args, .. } => {
                assert_eq!(args[0], lit(2.0));
                assert_eq!(args[1], Expr::from(access("A", ["i", "j"])));
                assert_eq!(args[2], Expr::from(access("x", ["j"])));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn sort_commutative_preserves_noncommutative_order() {
        let e = Expr::call(
            BinOp::Sub,
            [Expr::from(access("b", ["i"])), Expr::from(access("a", ["i"]))],
        );
        assert_eq!(e.sort_commutative(), e);
    }

    #[test]
    fn tensor_ref_display_names() {
        assert_eq!(TensorRef::base("A").display_name(), "A");
        assert_eq!(TensorRef::transposed("B", vec![1, 0]).display_name(), "B_T");
        assert_eq!(TensorRef::transposed("B", vec![0, 1]).display_name(), "B");
        let mut r = TensorRef::base("A");
        r.part = TensorPart::Diagonal;
        assert_eq!(r.display_name(), "A_diag");
        assert_eq!(TensorRef::transposed("C", vec![2, 0, 1]).display_name(), "C_T201");
    }

    #[test]
    fn identity_perm_is_base() {
        assert!(TensorRef::transposed("B", vec![0, 1, 2]).is_base());
        assert!(!TensorRef::transposed("B", vec![1, 0]).is_base());
    }
}
