//! Statements: loops, conditionals, lets, blocks and assignments.

use std::collections::HashMap;

use crate::{Access, AssignOp, Cond, Expr, Index};

/// The target of an assignment.
#[derive(Clone, PartialEq, Debug)]
pub enum Lhs {
    /// Write to a tensor element, e.g. `y[i] += …`.
    Tensor(Access),
    /// Write to a scoped mutable scalar (introduced by
    /// [`Stmt::Workspace`]), e.g. `temp += …`.
    Scalar(String),
}

impl From<Access> for Lhs {
    fn from(a: Access) -> Self {
        Lhs::Tensor(a)
    }
}

/// A statement in a tensor program.
///
/// Programs are trees of statements; the executor walks the tree, binding
/// loop indices and performing assignments. The set of constructors mirrors
/// the control flow Finch provides and SySTeC's generated kernels need
/// (paper §2.2): loop nests, conditionals over index comparisons, multiple
/// assignments per iteration, scalar bindings, and workspace accumulators.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// A sequence of statements.
    Block(Vec<Stmt>),
    /// `for index = 1:_ body` — iterates over the full extent of the
    /// index's dimension (possibly narrowed by lifted bounds, and possibly
    /// driven by a sparse level).
    Loop {
        /// The loop index.
        index: Index,
        /// The loop body.
        body: Box<Stmt>,
    },
    /// `if cond then body`.
    If {
        /// The guard.
        cond: Cond,
        /// The guarded body.
        body: Box<Stmt>,
    },
    /// `let name = value in body` — an immutable scalar binding, produced
    /// by common-tensor-access elimination (§4.2.1).
    Let {
        /// The bound variable's name.
        name: String,
        /// The bound value.
        value: Expr,
        /// The scope of the binding.
        body: Box<Stmt>,
    },
    /// A scoped mutable scalar accumulator, produced by the workspace
    /// transformation (§4.2.8): `name` is initialized to `init`, `body`
    /// may assign to it via [`Lhs::Scalar`] and read it via
    /// [`Expr::Scalar`].
    Workspace {
        /// The accumulator variable's name.
        name: String,
        /// The initial value (the reduction identity).
        init: f64,
        /// The scope of the accumulator.
        body: Box<Stmt>,
    },
    /// `lhs op= rhs`.
    Assign {
        /// The write target.
        lhs: Lhs,
        /// The reduction operator.
        op: AssignOp,
        /// The value.
        rhs: Expr,
    },
}

impl Stmt {
    /// Wraps `body` in a loop nest with `order` outermost-first.
    ///
    /// # Examples
    ///
    /// ```
    /// use systec_ir::build::*;
    /// use systec_ir::Stmt;
    ///
    /// let s = Stmt::loops([idx("j"), idx("i")], assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])));
    /// assert!(s.to_string().starts_with("for j"));
    /// ```
    pub fn loops(order: impl IntoIterator<Item = Index>, body: Stmt) -> Stmt {
        let order: Vec<Index> = order.into_iter().collect();
        order.into_iter().rev().fold(body, |acc, index| Stmt::Loop { index, body: Box::new(acc) })
    }

    /// Wraps `body` in a conditional unless the condition is `True`.
    pub fn guarded(cond: Cond, body: Stmt) -> Stmt {
        match cond {
            Cond::True => body,
            cond => Stmt::If { cond, body: Box::new(body) },
        }
    }

    /// Builds a block, flattening nested blocks and dropping empty ones.
    pub fn block(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let mut flat = Vec::new();
        for s in stmts {
            match s {
                Stmt::Block(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Stmt::Block(flat)
        }
    }

    /// All assignment statements in the subtree, in program order.
    pub fn assignments(&self) -> Vec<&Stmt> {
        let mut out = Vec::new();
        self.collect_assignments(&mut out);
        out
    }

    fn collect_assignments<'a>(&'a self, out: &mut Vec<&'a Stmt>) {
        match self {
            Stmt::Assign { .. } => out.push(self),
            Stmt::Block(ss) => {
                for s in ss {
                    s.collect_assignments(out);
                }
            }
            Stmt::Loop { body, .. }
            | Stmt::If { body, .. }
            | Stmt::Let { body, .. }
            | Stmt::Workspace { body, .. } => body.collect_assignments(out),
        }
    }

    /// Applies an index substitution throughout the statement.
    pub fn substitute(&self, map: &HashMap<Index, Index>) -> Stmt {
        match self {
            Stmt::Block(ss) => Stmt::Block(ss.iter().map(|s| s.substitute(map)).collect()),
            Stmt::Loop { index, body } => Stmt::Loop {
                index: map.get(index).cloned().unwrap_or_else(|| index.clone()),
                body: Box::new(body.substitute(map)),
            },
            Stmt::If { cond, body } => {
                Stmt::If { cond: cond.substitute(map), body: Box::new(body.substitute(map)) }
            }
            Stmt::Let { name, value, body } => Stmt::Let {
                name: name.clone(),
                value: value.substitute(map),
                body: Box::new(body.substitute(map)),
            },
            Stmt::Workspace { name, init, body } => Stmt::Workspace {
                name: name.clone(),
                init: *init,
                body: Box::new(body.substitute(map)),
            },
            Stmt::Assign { lhs, op, rhs } => Stmt::Assign {
                lhs: match lhs {
                    Lhs::Tensor(a) => Lhs::Tensor(a.substitute(map)),
                    Lhs::Scalar(s) => Lhs::Scalar(s.clone()),
                },
                op: *op,
                rhs: rhs.substitute(map),
            },
        }
    }

    /// Counts the statements in the subtree (for size-based pass
    /// heuristics and tests).
    pub fn len(&self) -> usize {
        match self {
            Stmt::Block(ss) => 1 + ss.iter().map(Stmt::len).sum::<usize>(),
            Stmt::Loop { body, .. }
            | Stmt::If { body, .. }
            | Stmt::Let { body, .. }
            | Stmt::Workspace { body, .. } => 1 + body.len(),
            Stmt::Assign { .. } => 1,
        }
    }

    /// Returns `true` if the subtree contains no assignments.
    pub fn is_empty(&self) -> bool {
        self.assignments().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn loops_nest_outermost_first() {
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            assign(access("y", ["i"]), access("x", ["i"]).into()),
        );
        match s {
            Stmt::Loop { index, body } => {
                assert_eq!(index.name(), "j");
                match *body {
                    Stmt::Loop { index, .. } => assert_eq!(index.name(), "i"),
                    other => panic!("expected inner loop, got {other:?}"),
                }
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn guarded_true_is_transparent() {
        let a = assign(access("y", ["i"]), lit(1.0));
        assert_eq!(Stmt::guarded(Cond::True, a.clone()), a);
    }

    #[test]
    fn block_flattens() {
        let a = assign(access("y", ["i"]), lit(1.0));
        let b = Stmt::block([Stmt::Block(vec![a.clone()]), a.clone()]);
        match b {
            Stmt::Block(ss) => assert_eq!(ss.len(), 2),
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn block_of_one_unwraps() {
        let a = assign(access("y", ["i"]), lit(1.0));
        assert_eq!(Stmt::block([a.clone()]), a);
    }

    #[test]
    fn assignments_collects_in_order() {
        let s = Stmt::loops(
            [idx("i")],
            Stmt::block([
                assign(access("y", ["i"]), lit(1.0)),
                Stmt::guarded(lt("i", "j"), assign(access("z", ["i"]), lit(2.0))),
            ]),
        );
        assert_eq!(s.assignments().len(), 2);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn substitute_renames_loop_index() {
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), lit(1.0)));
        let map: HashMap<Index, Index> = [(Index::new("i"), Index::new("k"))].into_iter().collect();
        let r = s.substitute(&map);
        match r {
            Stmt::Loop { index, .. } => assert_eq!(index.name(), "k"),
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
