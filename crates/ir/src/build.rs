//! Convenience constructors for hand-writing programs and tests.
//!
//! These free functions keep test code and examples close to the paper's
//! notation:
//!
//! ```
//! use systec_ir::build::*;
//! use systec_ir::Stmt;
//!
//! // for j, i: if i <= j: y[i] += A[i, j] * x[j]
//! let s = Stmt::loops(
//!     [idx("j"), idx("i")],
//!     Stmt::guarded(le("i", "j"), assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]))),
//! );
//! assert!(s.to_string().contains("if i <= j"));
//! ```

use crate::{Access, AssignOp, BinOp, CmpOp, Cond, Expr, Index, Stmt};

/// Creates an [`Index`] from a name.
pub fn idx(name: &str) -> Index {
    Index::new(name)
}

/// Creates a base-tensor [`Access`].
pub fn access<'a>(tensor: &str, indices: impl IntoIterator<Item = &'a str>) -> Access {
    Access::new(tensor, indices.into_iter().map(Index::new))
}

/// Creates a literal expression.
pub fn lit(v: f64) -> Expr {
    Expr::Literal(v)
}

/// Creates a scalar-variable reference.
pub fn scalar(name: &str) -> Expr {
    Expr::Scalar(name.to_string())
}

/// Creates a flattened n-ary product. Accepts anything convertible to
/// [`Expr`] (accesses, literals, sub-expressions).
pub fn mul<E: Into<Expr>>(args: impl IntoIterator<Item = E>) -> Expr {
    Expr::call(BinOp::Mul, args.into_iter().map(Into::into))
}

/// Creates a flattened n-ary sum.
pub fn add<E: Into<Expr>>(args: impl IntoIterator<Item = E>) -> Expr {
    Expr::call(BinOp::Add, args.into_iter().map(Into::into))
}

/// Creates an n-ary minimum.
pub fn min_expr<E: Into<Expr>>(args: impl IntoIterator<Item = E>) -> Expr {
    Expr::call(BinOp::Min, args.into_iter().map(Into::into))
}

/// `a < b`
pub fn lt(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Lt, Index::new(a), Index::new(b))
}

/// `a <= b`
pub fn le(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Le, Index::new(a), Index::new(b))
}

/// `a == b`
pub fn eq(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Eq, Index::new(a), Index::new(b))
}

/// `a != b`
pub fn ne(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Ne, Index::new(a), Index::new(b))
}

/// `a > b`
pub fn gt(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Gt, Index::new(a), Index::new(b))
}

/// `a >= b`
pub fn ge(a: &str, b: &str) -> Cond {
    Cond::Cmp(CmpOp::Ge, Index::new(a), Index::new(b))
}

/// Conjunction of conditions (flattened).
pub fn and(conds: impl IntoIterator<Item = Cond>) -> Cond {
    Cond::and(conds)
}

/// Disjunction of conditions (flattened).
pub fn or(conds: impl IntoIterator<Item = Cond>) -> Cond {
    Cond::or(conds)
}

/// `lhs += rhs` (the default reduction in the paper's kernels).
pub fn assign(lhs: Access, rhs: Expr) -> Stmt {
    Stmt::Assign { lhs: lhs.into(), op: AssignOp::Add, rhs }
}

/// `lhs op= rhs` with an explicit reduction operator.
pub fn assign_op(lhs: Access, op: AssignOp, rhs: Expr) -> Stmt {
    Stmt::Assign { lhs: lhs.into(), op, rhs }
}

/// `lhs = rhs` (overwrite; used by replication loops).
pub fn store(lhs: Access, rhs: Expr) -> Stmt {
    Stmt::Assign { lhs: lhs.into(), op: AssignOp::Overwrite, rhs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let s = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::guarded(
                or([lt("i", "j"), eq("i", "j")]),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        );
        let printed = s.to_string();
        assert!(printed.contains("if i < j || i == j"), "got:\n{printed}");
    }

    #[test]
    fn min_builder() {
        let e = min_expr([lit(3.0), lit(1.0)]);
        assert_eq!(e.to_string(), "min(3, 1)");
    }
}
