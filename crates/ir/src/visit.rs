//! Structural traversal helpers used by the rewriting engine.

use crate::{Expr, Stmt};

impl Expr {
    /// Rebuilds the expression with each direct child replaced by
    /// `f(child)`. Leaves are returned unchanged.
    pub fn map_children(self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        match self {
            Expr::Call { op, args } => {
                Expr::Call { op, args: args.into_iter().map(&mut *f).collect() }
            }
            Expr::Lookup { table, index } => Expr::Lookup { table, index: Box::new(f(*index)) },
            leaf @ (Expr::Literal(_) | Expr::Scalar(_) | Expr::Access(_) | Expr::CmpVal { .. }) => {
                leaf
            }
        }
    }

    /// Immutable references to the direct children.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Call { args, .. } => args.iter().collect(),
            Expr::Lookup { index, .. } => vec![index],
            Expr::Literal(_) | Expr::Scalar(_) | Expr::Access(_) | Expr::CmpVal { .. } => {
                Vec::new()
            }
        }
    }
}

impl Stmt {
    /// Rebuilds the statement with each direct *statement* child replaced
    /// by `f(child)`. Expressions are not visited.
    pub fn map_children(self, f: &mut impl FnMut(Stmt) -> Stmt) -> Stmt {
        match self {
            Stmt::Block(ss) => Stmt::Block(ss.into_iter().map(&mut *f).collect()),
            Stmt::Loop { index, body } => Stmt::Loop { index, body: Box::new(f(*body)) },
            Stmt::If { cond, body } => Stmt::If { cond, body: Box::new(f(*body)) },
            Stmt::Let { name, value, body } => Stmt::Let { name, value, body: Box::new(f(*body)) },
            Stmt::Workspace { name, init, body } => {
                Stmt::Workspace { name, init, body: Box::new(f(*body)) }
            }
            leaf @ Stmt::Assign { .. } => leaf,
        }
    }

    /// Immutable references to the direct statement children.
    pub fn children(&self) -> Vec<&Stmt> {
        match self {
            Stmt::Block(ss) => ss.iter().collect(),
            Stmt::Loop { body, .. }
            | Stmt::If { body, .. }
            | Stmt::Let { body, .. }
            | Stmt::Workspace { body, .. } => vec![body],
            Stmt::Assign { .. } => Vec::new(),
        }
    }

    /// Rewrites every *expression* in the subtree (assignment right-hand
    /// sides and `let` values) with `f`, leaving control flow intact.
    pub fn map_exprs(self, f: &mut impl FnMut(Expr) -> Expr) -> Stmt {
        match self {
            Stmt::Let { name, value, body } => {
                Stmt::Let { name, value: f(value), body: Box::new(body.map_exprs(f)) }
            }
            Stmt::Assign { lhs, op, rhs } => Stmt::Assign { lhs, op, rhs: f(rhs) },
            other => other.map_children(&mut |s| s.map_exprs(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::{Expr, Stmt};

    #[test]
    fn expr_map_children_replaces_args() {
        let e = mul([access("A", ["i"]), access("B", ["i"])]);
        let doubled = e.map_children(&mut |c| match c {
            Expr::Access(_) => lit(1.0),
            other => other,
        });
        assert_eq!(doubled.to_string(), "1 * 1");
    }

    #[test]
    fn stmt_children_counts() {
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), lit(1.0)));
        assert_eq!(s.children().len(), 1);
        let a = assign(access("y", ["i"]), lit(1.0));
        assert!(a.children().is_empty());
    }

    #[test]
    fn map_exprs_reaches_assignments_under_loops() {
        let s = Stmt::loops([idx("i")], assign(access("y", ["i"]), lit(1.0)));
        let s2 = s.map_exprs(&mut |_| lit(7.0));
        let printed = s2.to_string();
        assert!(printed.contains("y[i] += 7"), "got {printed}");
    }
}
