//! Boolean conditions over loop indices.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::{CmpOp, Index};

/// A boolean condition over loop indices, guarding a conditional block.
///
/// Conditions are restricted to comparisons between indices and their
/// conjunctions/disjunctions — exactly the control flow symmetrization
/// produces: the canonical-triangle chain `p1 <= p2 <= …` and the
/// equivalence-group cases (`i == j && j != k`, …). Keeping the language
/// this small lets the executor lift comparisons into loop bounds.
///
/// # Examples
///
/// ```
/// use systec_ir::build::*;
///
/// let c = and([le("i", "j"), ne("j", "k")]);
/// assert_eq!(c.to_string(), "i <= j && j != k");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum Cond {
    /// Always true (the neutral guard).
    #[default]
    True,
    /// A single comparison `lhs ⋈ rhs`.
    Cmp(CmpOp, Index, Index),
    /// Conjunction of conditions.
    And(Vec<Cond>),
    /// Disjunction of conditions.
    Or(Vec<Cond>),
}

impl Cond {
    /// Builds a conjunction, flattening nested `And`s and dropping `True`.
    pub fn and(conds: impl IntoIterator<Item = Cond>) -> Cond {
        let mut flat = Vec::new();
        for c in conds {
            match c {
                Cond::True => {}
                Cond::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Cond::True,
            1 => flat.pop().expect("len checked"),
            _ => Cond::And(flat),
        }
    }

    /// Builds a disjunction, flattening nested `Or`s.
    ///
    /// A `True` disjunct collapses the whole condition to `True`.
    pub fn or(conds: impl IntoIterator<Item = Cond>) -> Cond {
        let mut flat = Vec::new();
        for c in conds {
            match c {
                Cond::True => return Cond::True,
                Cond::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Cond::True,
            1 => flat.pop().expect("len checked"),
            _ => Cond::Or(flat),
        }
    }

    /// Evaluates the condition under a concrete index valuation.
    ///
    /// # Panics
    ///
    /// Panics if a mentioned index is missing from `env` (programs are
    /// validated before execution; an unbound index is a compiler bug).
    pub fn eval(&self, env: &HashMap<Index, usize>) -> bool {
        match self {
            Cond::True => true,
            Cond::Cmp(op, a, b) => {
                let va = *env.get(a).unwrap_or_else(|| panic!("unbound index {a} in condition"));
                let vb = *env.get(b).unwrap_or_else(|| panic!("unbound index {b} in condition"));
                op.eval(va, vb)
            }
            Cond::And(cs) => cs.iter().all(|c| c.eval(env)),
            Cond::Or(cs) => cs.iter().any(|c| c.eval(env)),
        }
    }

    /// The set of indices mentioned by the condition.
    pub fn indices(&self) -> BTreeSet<Index> {
        let mut out = BTreeSet::new();
        self.collect_indices(&mut out);
        out
    }

    fn collect_indices(&self, out: &mut BTreeSet<Index>) {
        match self {
            Cond::True => {}
            Cond::Cmp(_, a, b) => {
                out.insert(a.clone());
                out.insert(b.clone());
            }
            Cond::And(cs) | Cond::Or(cs) => {
                for c in cs {
                    c.collect_indices(out);
                }
            }
        }
    }

    /// Applies an index substitution.
    pub fn substitute(&self, map: &HashMap<Index, Index>) -> Cond {
        let sub = |i: &Index| map.get(i).cloned().unwrap_or_else(|| i.clone());
        match self {
            Cond::True => Cond::True,
            Cond::Cmp(op, a, b) => Cond::Cmp(*op, sub(a), sub(b)),
            Cond::And(cs) => Cond::and(cs.iter().map(|c| c.substitute(map))),
            Cond::Or(cs) => Cond::or(cs.iter().map(|c| c.substitute(map))),
        }
    }

    /// Flattens a conjunction into its conjuncts (a `True` yields none, a
    /// non-`And` condition yields itself).
    pub fn conjuncts(&self) -> Vec<Cond> {
        match self {
            Cond::True => Vec::new(),
            Cond::And(cs) => cs.clone(),
            other => vec![other.clone()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn env(pairs: &[(&str, usize)]) -> HashMap<Index, usize> {
        pairs.iter().map(|(n, v)| (Index::new(n), *v)).collect()
    }

    #[test]
    fn and_flattens_and_drops_true() {
        let c = Cond::and([Cond::True, and([le("i", "j")]), lt("j", "k")]);
        assert_eq!(c, Cond::And(vec![le("i", "j"), lt("j", "k")]));
    }

    #[test]
    fn and_of_nothing_is_true() {
        assert_eq!(Cond::and([]), Cond::True);
        assert_eq!(Cond::and([Cond::True, Cond::True]), Cond::True);
    }

    #[test]
    fn or_short_circuits_true() {
        assert_eq!(Cond::or([lt("i", "j"), Cond::True]), Cond::True);
    }

    #[test]
    fn eval_chain() {
        let c = and([le("i", "j"), le("j", "k")]);
        assert!(c.eval(&env(&[("i", 0), ("j", 1), ("k", 1)])));
        assert!(!c.eval(&env(&[("i", 2), ("j", 1), ("k", 3)])));
    }

    #[test]
    fn eval_or() {
        let c = or([eq("i", "j"), lt("i", "j")]);
        assert!(c.eval(&env(&[("i", 1), ("j", 1)])));
        assert!(c.eval(&env(&[("i", 0), ("j", 1)])));
        assert!(!c.eval(&env(&[("i", 2), ("j", 1)])));
    }

    #[test]
    fn indices_collected() {
        let c = and([le("i", "j"), ne("k", "l")]);
        let names: Vec<_> = c.indices().iter().map(|i| i.name().to_string()).collect();
        assert_eq!(names, ["i", "j", "k", "l"]);
    }

    #[test]
    fn substitute_swaps() {
        let map: HashMap<Index, Index> =
            [(Index::new("i"), Index::new("j")), (Index::new("j"), Index::new("i"))]
                .into_iter()
                .collect();
        assert_eq!(lt("i", "j").substitute(&map), lt("j", "i"));
    }

    #[test]
    fn conjuncts_of_true_empty() {
        assert!(Cond::True.conjuncts().is_empty());
        assert_eq!(lt("i", "j").conjuncts(), vec![lt("i", "j")]);
        assert_eq!(and([lt("i", "j"), eq("j", "k")]).conjuncts().len(), 2);
    }
}
