//! # systec-ir
//!
//! The tensor-program intermediate representation used by the SySTeC
//! reproduction.
//!
//! This crate plays the role that Finch's program syntax plays in the paper
//! (*SySTeC: A Symmetric Sparse Tensor Compiler*, CGO 2025): it describes
//! loop nests over (possibly sparse) multidimensional arrays, with the
//! control flow that symmetric kernels need — conditionals over index
//! comparisons, multiple outputs per iteration, scalar `let` bindings,
//! lookup tables, and reduction assignments over arbitrary semirings.
//!
//! The IR is deliberately *dense-looking*: loops range over whole
//! dimensions and accesses look like ordinary subscripts. The executor in
//! `systec-exec` gives the IR Finch-like semantics, driving loops from
//! sparse tensor levels and lifting index comparisons into loop bounds.
//!
//! ## Layout
//!
//! * [`Index`] — interned loop-index names (`i`, `j`, …).
//! * [`ops`] — element operators ([`BinOp`]), comparison operators
//!   ([`CmpOp`]) and reduction operators ([`AssignOp`]).
//! * [`Expr`] / [`Access`] — right-hand-side expressions and tensor reads.
//! * [`Cond`] — boolean conditions over indices.
//! * [`Stmt`] — statements: loops, conditionals, lets, blocks, assignments.
//! * [`Einsum`] — the pointwise-einsum *input language* accepted by the
//!   SySTeC compiler front end.
//! * [`build`] — convenience constructors for hand-writing programs.
//!
//! ## Example
//!
//! Build the naive SSYMV kernel `y[i] += A[i, j] * x[j]`:
//!
//! ```
//! use systec_ir::build::*;
//! use systec_ir::{AssignOp, Einsum};
//!
//! let ssymv = Einsum::new(
//!     access("y", ["i"]),
//!     AssignOp::Add,
//!     mul([access("A", ["i", "j"]), access("x", ["j"])]),
//!     [idx("j"), idx("i")],
//! );
//! assert_eq!(ssymv.to_string(), "for j, i: y[i] += A[i, j] * x[j]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cond;
mod display;
mod einsum;
mod expr;
mod index;
pub mod ops;
mod parse;
mod stmt;
pub mod visit;

pub mod build;

pub use cond::Cond;
pub use einsum::Einsum;
pub use expr::{Access, Expr, TensorPart, TensorRef};
pub use index::Index;
pub use ops::{AssignOp, BinOp, CmpOp};
pub use parse::{parse_einsum, ParseError};
pub use stmt::{Lhs, Stmt};
