//! The pointwise-einsum input language of the SySTeC compiler.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Access, AssignOp, Expr, Index, Stmt};

/// A single pointwise tensor assignment with an explicit loop order —
/// the input the SySTeC compiler accepts (paper §4.1):
///
/// ```text
/// O[i1, …, in] ⊕= T1[…] ⊗ … ⊗ Tm[…]
/// ```
///
/// together with the order in which the indices will be looped.
///
/// # Examples
///
/// ```
/// use systec_ir::build::*;
/// use systec_ir::{AssignOp, Einsum};
///
/// // SYPRD: y[] += x[i] * A[i, j] * x[j]
/// let syprd = Einsum::new(
///     access("y", [] as [&str; 0]),
///     AssignOp::Add,
///     mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
///     [idx("j"), idx("i")],
/// );
/// assert_eq!(syprd.to_string(), "for j, i: y[] += x[i] * A[i, j] * x[j]");
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Einsum {
    /// The output access.
    pub output: Access,
    /// The reduction operator (`+=`, `min=`, …).
    pub op: AssignOp,
    /// The right-hand side.
    pub rhs: Expr,
    /// Loop order, outermost first. Must cover every index in the
    /// assignment.
    pub loop_order: Vec<Index>,
}

impl Einsum {
    /// Creates an einsum and validates that the loop order covers every
    /// index appearing in the assignment.
    ///
    /// # Panics
    ///
    /// Panics if an index in the assignment is missing from `loop_order`,
    /// or if `loop_order` mentions an index not in the assignment.
    pub fn new(
        output: Access,
        op: AssignOp,
        rhs: Expr,
        loop_order: impl IntoIterator<Item = Index>,
    ) -> Self {
        let loop_order: Vec<Index> = loop_order.into_iter().collect();
        let mut used: BTreeSet<Index> = rhs.indices();
        used.extend(output.indices.iter().cloned());
        let ordered: BTreeSet<Index> = loop_order.iter().cloned().collect();
        assert_eq!(used, ordered, "loop order must mention exactly the indices of the assignment");
        assert_eq!(ordered.len(), loop_order.len(), "loop order must not repeat indices");
        Einsum { output, op, rhs, loop_order }
    }

    /// The set of indices appearing in the assignment.
    pub fn indices(&self) -> BTreeSet<Index> {
        let mut s = self.rhs.indices();
        s.extend(self.output.indices.iter().cloned());
        s
    }

    /// The reduction indices: those not appearing in the output.
    pub fn reduction_indices(&self) -> BTreeSet<Index> {
        let out: BTreeSet<Index> = self.output.indices.iter().cloned().collect();
        self.indices().difference(&out).cloned().collect()
    }

    /// Lowers the einsum to the *naive* loop-nest program: the full loop
    /// nest around the single assignment, with no symmetry exploitation.
    /// This is the "naive Finch" baseline of the paper's evaluation.
    pub fn naive_program(&self) -> Stmt {
        Stmt::loops(
            self.loop_order.iter().cloned(),
            Stmt::Assign { lhs: self.output.clone().into(), op: self.op, rhs: self.rhs.clone() },
        )
    }
}

impl fmt::Display for Einsum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "for ")?;
        for (k, i) in self.loop_order.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, ": {} {} {}", self.output, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn ssymv() -> Einsum {
        Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("j"), idx("i")],
        )
    }

    #[test]
    fn indices_and_reduction_indices() {
        let e = ssymv();
        let all: Vec<_> = e.indices().iter().map(|i| i.name().to_string()).collect();
        assert_eq!(all, ["i", "j"]);
        let red: Vec<_> = e.reduction_indices().iter().map(|i| i.name().to_string()).collect();
        assert_eq!(red, ["j"]);
    }

    #[test]
    #[should_panic(expected = "loop order")]
    fn missing_index_panics() {
        Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i")],
        );
    }

    #[test]
    #[should_panic(expected = "loop order")]
    fn extra_index_panics() {
        Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            Expr::from(access("x", ["i"])),
            [idx("i"), idx("j")],
        );
    }

    #[test]
    fn naive_program_shape() {
        let p = ssymv().naive_program();
        assert_eq!(p.assignments().len(), 1);
        assert_eq!(p.to_string(), "for j:\n  for i:\n    y[i] += A[i, j] * x[j]");
    }
}
