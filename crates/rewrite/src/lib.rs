//! # systec-rewrite
//!
//! A small term-rewriting framework, playing the role RewriteTools.jl
//! plays for the original SySTeC (paper §5.1: *"SySTeC uses RewriteTools,
//! the same rewriting package used by Finch, to define a set of
//! simplification rules"*).
//!
//! A [`Rule`] maps a node to `Some(replacement)` when it fires and `None`
//! when it does not. Rules compose with *strategy combinators*:
//!
//! * [`postwalk`] — rewrite bottom-up (children first);
//! * [`prewalk`] — rewrite top-down (node first, then recurse);
//! * [`fixpoint`] — repeat a strategy until it stops changing the tree;
//! * [`chain`] — try rules in order, applying the first that fires.
//!
//! The combinators are generic over any tree that implements
//! [`Rewritable`]; implementations are provided for [`systec_ir::Stmt`]
//! and [`systec_ir::Expr`].
//!
//! ## Example
//!
//! Constant-fold `1 * x` down to `x` everywhere in an expression:
//!
//! ```
//! use systec_ir::build::*;
//! use systec_ir::{BinOp, Expr};
//! use systec_rewrite::postwalk;
//!
//! let drop_unit = |e: &Expr| match e {
//!     Expr::Call { op: BinOp::Mul, args } => {
//!         let kept: Vec<Expr> = args.iter().filter(|a| **a != lit(1.0)).cloned().collect();
//!         (kept.len() < args.len()).then(|| Expr::call(BinOp::Mul, kept))
//!     }
//!     _ => None,
//! };
//! let e = mul([lit(1.0), access("x", ["i"]).into()]);
//! assert_eq!(postwalk(e, &drop_unit).to_string(), "x[i]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use systec_ir::{Expr, Stmt};

/// A tree that the strategy combinators can traverse.
pub trait Rewritable: Sized + Clone {
    /// Rebuilds the node with every direct child replaced by `f(child)`.
    fn rebuild(self, f: &mut dyn FnMut(Self) -> Self) -> Self;
}

impl Rewritable for Expr {
    fn rebuild(self, f: &mut dyn FnMut(Self) -> Self) -> Self {
        self.map_children(&mut |c| f(c))
    }
}

impl Rewritable for Stmt {
    fn rebuild(self, f: &mut dyn FnMut(Self) -> Self) -> Self {
        self.map_children(&mut |c| f(c))
    }
}

/// A rewrite rule: returns `Some(replacement)` if it fires on the node.
///
/// Any `Fn(&T) -> Option<T>` is a rule, so rules are usually written as
/// closures or free functions.
pub trait Rule<T> {
    /// Attempts to rewrite `node`.
    fn try_rewrite(&self, node: &T) -> Option<T>;
}

impl<T, F: Fn(&T) -> Option<T>> Rule<T> for F {
    fn try_rewrite(&self, node: &T) -> Option<T> {
        self(node)
    }
}

/// Applies `rule` bottom-up: children are rewritten first, then the rule
/// is tried (once) on the rebuilt node.
pub fn postwalk<T: Rewritable>(node: T, rule: &impl Rule<T>) -> T {
    let rebuilt = node.rebuild(&mut |c| postwalk(c, rule));
    match rule.try_rewrite(&rebuilt) {
        Some(next) => next,
        None => rebuilt,
    }
}

/// Applies `rule` top-down: the rule is tried (repeatedly, until it stops
/// firing) on the node, then the strategy recurses into the children.
pub fn prewalk<T: Rewritable>(node: T, rule: &impl Rule<T>) -> T {
    let mut current = node;
    while let Some(next) = rule.try_rewrite(&current) {
        current = next;
    }
    current.rebuild(&mut |c| prewalk(c, rule))
}

/// Repeats `strategy` until the tree stops changing (compared with `==`),
/// with a safety bound of `max_iters` iterations.
///
/// # Panics
///
/// Panics if the strategy is still making changes after `max_iters`
/// iterations — a diverging rule set is a compiler bug we want loudly.
pub fn fixpoint<T: Rewritable + PartialEq>(
    mut node: T,
    max_iters: usize,
    strategy: impl Fn(T) -> T,
) -> T {
    for _ in 0..max_iters {
        let next = strategy(node.clone());
        if next == node {
            return node;
        }
        node = next;
    }
    panic!("rewrite fixpoint did not converge within {max_iters} iterations");
}

/// Combines rules so the first that fires wins.
///
/// ```
/// use systec_ir::{BinOp, Expr};
/// use systec_ir::build::*;
/// use systec_rewrite::{chain, postwalk, Rule};
///
/// let r1 = |e: &Expr| (*e == lit(1.0)).then(|| lit(10.0));
/// let r2 = |e: &Expr| (*e == lit(2.0)).then(|| lit(20.0));
/// let rule = chain(vec![Box::new(r1) as Box<dyn Rule<Expr>>, Box::new(r2)]);
/// let e = Expr::call(BinOp::Add, [lit(1.0), lit(2.0)]);
/// assert_eq!(postwalk(e, &rule).to_string(), "10 + 20");
/// ```
pub fn chain<T>(rules: Vec<Box<dyn Rule<T>>>) -> impl Rule<T> {
    ChainRule { rules }
}

struct ChainRule<T> {
    rules: Vec<Box<dyn Rule<T>>>,
}

impl<T> Rule<T> for ChainRule<T> {
    fn try_rewrite(&self, node: &T) -> Option<T> {
        self.rules.iter().find_map(|r| r.try_rewrite(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;
    use systec_ir::{BinOp, Cond, Expr, Stmt};

    fn fold_add(e: &Expr) -> Option<Expr> {
        match e {
            Expr::Call { op: BinOp::Add, args } => {
                let vals: Option<Vec<f64>> = args
                    .iter()
                    .map(|a| match a {
                        Expr::Literal(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                vals.map(|v| Expr::Literal(v.into_iter().sum()))
            }
            _ => None,
        }
    }

    #[test]
    fn postwalk_folds_nested_constants() {
        let e = Expr::Call {
            op: BinOp::Add,
            args: vec![Expr::Call { op: BinOp::Add, args: vec![lit(1.0), lit(2.0)] }, lit(3.0)],
        };
        assert_eq!(postwalk(e, &fold_add), lit(6.0));
    }

    #[test]
    fn prewalk_applies_at_root_first() {
        // A rule that only fires at Or-nodes, rewriting them to their first
        // disjunct — with prewalk only one application is needed at the root.
        let first = |s: &Stmt| match s {
            Stmt::If { cond: Cond::Or(cs), body } => {
                Some(Stmt::If { cond: cs[0].clone(), body: body.clone() })
            }
            _ => None,
        };
        let s =
            Stmt::guarded(or([lt("i", "j"), eq("i", "j")]), assign(access("y", ["i"]), lit(1.0)));
        let out = prewalk(s, &first);
        assert!(out.to_string().starts_with("if i < j:"), "got {out}");
    }

    #[test]
    fn fixpoint_converges() {
        // Rule: rewrite literal n (> 0) to n - 1; fixpoint reaches 0.
        let dec = |e: &Expr| match e {
            Expr::Literal(v) if *v > 0.0 => Some(Expr::Literal(v - 1.0)),
            _ => None,
        };
        let out = fixpoint(lit(5.0), 100, |e| match dec.try_rewrite(&e) {
            Some(x) => x,
            None => e,
        });
        assert_eq!(out, lit(0.0));
    }

    #[test]
    #[should_panic(expected = "did not converge")]
    fn fixpoint_detects_divergence() {
        let flip = |e: Expr| match e {
            Expr::Literal(v) => Expr::Literal(-v),
            other => other,
        };
        fixpoint(lit(1.0), 10, flip);
    }

    #[test]
    fn chain_first_rule_wins() {
        let r1 = |e: &Expr| (*e == lit(1.0)).then(|| lit(100.0));
        let r2 = |e: &Expr| (*e == lit(1.0)).then(|| lit(200.0));
        let rule = chain(vec![Box::new(r1) as Box<dyn Rule<Expr>>, Box::new(r2)]);
        assert_eq!(rule.try_rewrite(&lit(1.0)), Some(lit(100.0)));
    }

    #[test]
    fn stmt_postwalk_rewrites_blocks() {
        // Merge adjacent identical assignments inside blocks into one.
        let dedup = |s: &Stmt| match s {
            Stmt::Block(ss) if ss.len() == 2 && ss[0] == ss[1] => Some(ss[0].clone()),
            _ => None,
        };
        let a = assign(access("y", ["i"]), lit(1.0));
        let s = Stmt::Block(vec![a.clone(), a.clone()]);
        assert_eq!(postwalk(s, &dedup), a);
    }
}
