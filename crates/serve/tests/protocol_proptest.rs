//! Protocol round-trip property tier (vendored `proptest`):
//!
//! * arbitrary requests and responses encode → decode **bit-identically**
//!   (tensor values compared by `f64` bits, not tolerance);
//! * arbitrary malformed and truncated lines produce a structured
//!   error, never a panic — and the error response itself round-trips,
//!   which is what keeps a connection alive after garbage.

use proptest::prelude::*;
use systec_serve::protocol::{
    CachePayload, CounterPayload, ErrorCode, KernelStatPayload, MergeRule, OutputPayload,
    Placement, PoolPayload, Request, RequestCountsPayload, Response, RouterCountsPayload,
    ServePayload, ShardStatPayload, SlowRunPayload, StorageFormat, TensorPayload, Variant, Warning,
    WarningKind,
};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Names exercising escaping: quotes, backslashes, newlines, non-ASCII.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("A".to_string()),
        Just("big_matrix".to_string()),
        Just("weird \"name\"".to_string()),
        Just("tab\the\\re".to_string()),
        Just("uni\u{00e9}\u{1f600}".to_string()),
        Just("nl\nin name".to_string()),
    ]
}

fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e6f64..1.0e6).prop_map(|v| v),
        Just(0.0),
        Just(-0.0),
        Just(1.5e-300),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
    ]
}

fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..=3)
}

fn payload_strategy() -> impl Strategy<Value = (Vec<usize>, TensorPayload)> {
    (dims_strategy(), any::<bool>(), prop::collection::vec(value_strategy(), 0..6)).prop_map(
        |(dims, dense, values)| {
            if dense {
                (dims.clone(), TensorPayload::Dense(values))
            } else {
                let rank = dims.len();
                let entries = values
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| ((0..rank).map(|m| (k + m) % 7).collect(), v))
                    .collect();
                (dims, TensorPayload::Coo(entries))
            }
        },
    )
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let register = (name_strategy(), payload_strategy(), 0usize..3, any::<bool>()).prop_map(
        |(name, (dims, payload), fmt, replicate)| Request::RegisterTensor {
            name,
            dims,
            payload,
            format: [StorageFormat::Auto, StorageFormat::Dense, StorageFormat::Csf][fmt],
            placement: if replicate { Placement::Replicate } else { Placement::Hash },
        },
    );
    let prepare = (
        name_strategy(),
        prop::collection::vec(name_strategy(), 0..3),
        prop::collection::vec((name_strategy(), name_strategy()), 0..3),
        any::<bool>(),
        any::<bool>(),
        0usize..5,
        any::<bool>(),
    )
        .prop_map(|(einsum, sym, mut inputs, naive, with_threads, threads, sharded)| {
            // Duplicate mapping keys decode ambiguously by design; make
            // keys unique for the round-trip property.
            inputs.sort();
            inputs.dedup_by(|a, b| a.0 == b.0);
            Request::Prepare {
                einsum,
                sym,
                inputs,
                variant: if naive { Variant::Naive } else { Variant::Systec },
                threads: with_threads.then_some(threads),
                sharded,
            }
        });
    let run = (0u64..1000, any::<bool>(), any::<bool>(), 1u64..8, 0u64..8).prop_map(
        |(kernel, full, with_shard, shards, k)| Request::Run {
            kernel,
            // `shard` and `full` are mutually exclusive on the engine but
            // both shapes must ride the wire; keep the strategy legal at
            // the protocol level only (k < n).
            full: full && !with_shard,
            shard: with_shard.then_some((k % shards, shards)),
        },
    );
    let unregister = name_strategy().prop_map(|name| Request::Unregister { name });
    prop_oneof![
        register,
        prepare,
        run,
        unregister,
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Ping),
        Just(Request::Shutdown),
    ]
}

fn output_value_strategy() -> impl Strategy<Value = f64> {
    // Served outputs may be non-finite (min= identities).
    prop_oneof![value_strategy(), Just(f64::INFINITY), Just(f64::NEG_INFINITY), Just(f64::NAN),]
}

fn outputs_strategy() -> impl Strategy<Value = Vec<OutputPayload>> {
    prop::collection::vec(
        (name_strategy(), dims_strategy(), prop::collection::vec(output_value_strategy(), 0..6)),
        0..3,
    )
    .prop_map(|outs| {
        let mut outs: Vec<OutputPayload> = outs
            .into_iter()
            .map(|(name, dims, values)| OutputPayload { name, dims, values })
            .collect();
        outs.sort_by(|a, b| a.name.cmp(&b.name));
        outs.dedup_by(|a, b| a.name == b.name);
        outs
    })
}

fn counters_strategy() -> impl Strategy<Value = CounterPayload> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
        prop::collection::vec((name_strategy(), 0u64..1_000_000), 0..4),
    )
        .prop_map(|(flops, writes, iterations, mut reads)| {
            reads.sort();
            reads.dedup_by(|a, b| a.0 == b.0);
            CounterPayload { flops, writes, iterations, reads }
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    let registered = (name_strategy(), 0u64..100_000, 0u64..10)
        .prop_map(|(name, nnz, generation)| Response::Registered { name, nnz, generation });
    let unregistered = (name_strategy(), any::<bool>())
        .prop_map(|(name, existed)| Response::Unregistered { name, existed });
    let split_strategy = prop::collection::vec((name_strategy(), 0usize..4), 0..3).prop_map(
        |mut entries| -> Vec<(String, MergeRule)> {
            entries.sort();
            entries.dedup_by(|a, b| a.0 == b.0);
            entries
                .into_iter()
                .map(|(name, rule)| {
                    (name, [MergeRule::Rows, MergeRule::Add, MergeRule::Min, MergeRule::Max][rule])
                })
                .collect()
        },
    );
    let prepared = (0u64..1000, any::<bool>(), any::<bool>(), split_strategy, name_strategy())
        .prop_map(|(kernel, splittable, with_split, split, message)| Response::Prepared {
            kernel,
            splittable,
            split: with_split.then_some(split),
            warning: (!with_split)
                .then_some(Warning { kind: WarningKind::SerialFallback, message }),
        });
    let ran = (outputs_strategy(), counters_strategy())
        .prop_map(|(outputs, counters)| Response::Ran { outputs, counters });
    let kernel_stat = (
        0u64..100,
        name_strategy(),
        0u64..9000,
        any::<bool>(),
        (0.0f64..5000.0, 0.0f64..5000.0, 0.0f64..5000.0, 0.0f64..5000.0),
        0u64..50,
    )
        .prop_map(|(kernel, spec, runs, with_quantiles, q, slow)| KernelStatPayload {
            kernel,
            spec,
            runs,
            median_us: with_quantiles.then_some(q.0),
            p90_us: with_quantiles.then_some(q.1),
            p99_us: with_quantiles.then_some(q.2),
            max_us: with_quantiles.then_some(q.3),
            slow,
        });
    let stats = (
        (0u64..9000, 0u64..9000, 0u64..9000, 0u64..9000, 0u64..9000, 0u64..9000),
        (
            0u64..9000,
            0u64..9000,
            0u64..9000,
            0u64..9000,
            0u64..9000,
            0u64..9000,
            0u64..9000,
            0u64..9000,
        ),
        (0u64..64, 0u64..9000, 0u64..9000, 0u64..9000, 0u64..9000, 0u64..9000),
        prop::collection::vec(0u64..9000, 19),
        prop::collection::vec(kernel_stat, 0..3),
        prop::collection::vec((0u64..100, 0u64..1_000_000), 0..4),
    )
        .prop_map(|(c, r, p, s, kernels, slow)| Response::Stats {
            cache: CachePayload {
                hits: c.0,
                misses: c.1,
                builds: c.2,
                evictions: c.3,
                waits: c.4,
                entries: c.5,
            },
            requests: RequestCountsPayload {
                register_tensor: r.0,
                prepare: r.1,
                run: r.2,
                unregister: r.3,
                stats: r.4,
                metrics: r.5,
                ping: r.6,
                errors: r.7,
            },
            pool: PoolPayload {
                workers: p.0,
                submitted: p.1,
                executed: p.2,
                helped: p.3,
                parks: p.4,
                wakeups: p.5,
            },
            serve: ServePayload {
                registry_tensors: s[0],
                registry_bytes: s[1],
                registry_evictions: s[2],
                pinned: s[3],
                batch_dispatches: s[4],
                batched_runs: s[5],
                offloaded_replications: s[6],
                queued: s[7],
                rejected_conns: s[8],
                rejected_bytes: s[9],
                deadline_exceeded: s[10],
                stale_runs: s[11],
                panics_caught: s[12],
                quarantined_kernels: s[13],
                journal_records: s[14],
                journal_bytes: s[15],
                journal_fsyncs: s[16],
                recovery_replayed: s[17],
                recovery_truncated: s[18],
            },
            kernels,
            slow: slow.into_iter().map(|(kernel, us)| SlowRunPayload { kernel, us }).collect(),
        });
    let metrics = name_strategy().prop_map(|salt| Response::Metrics {
        // Realistic multi-line exposition text plus escaping stress
        // from the name strategy (quotes, backslashes, newlines).
        text: format!(
            "# HELP systec_requests_total Requests by verb.\n\
             # TYPE systec_requests_total counter\n\
             systec_requests_total{{verb=\"{salt}\"}} 3\n"
        ),
    });
    let shard_stat =
        (0u64..8, name_strategy(), any::<bool>(), prop::collection::vec(0u64..9000, 4)).prop_map(
            |(shard, addr, healthy, v)| ShardStatPayload {
                shard,
                addr,
                healthy,
                vnodes: v[0],
                keys: v[1],
                forwarded: v[2],
                errors: v[3],
            },
        );
    let cluster_stats =
        (prop::collection::vec(0u64..9000, 7), prop::collection::vec(shard_stat, 0..4)).prop_map(
            |(r, shards)| Response::ClusterStats {
                router: RouterCountsPayload {
                    register_tensor: r[0],
                    prepare: r[1],
                    run: r[2],
                    sharded_runs: r[3],
                    fanouts: r[4],
                    replicated: r[5],
                    errors: r[6],
                },
                shards,
            },
        );
    let error = (0usize..12, name_strategy()).prop_map(|(code, message)| Response::Error {
        code: [
            ErrorCode::Parse,
            ErrorCode::UnknownTensor,
            ErrorCode::UnknownKernel,
            ErrorCode::InvalidKernel,
            ErrorCode::BadTensor,
            ErrorCode::Internal,
            ErrorCode::LineTooLong,
            ErrorCode::DeadlineExceeded,
            ErrorCode::AdmissionRejected,
            ErrorCode::StaleTensor,
            ErrorCode::KernelQuarantined,
            ErrorCode::ShardUnavailable,
        ][code],
        message,
    });
    prop_oneof![
        registered,
        unregistered,
        prepared,
        ran,
        stats,
        cluster_stats,
        metrics,
        Just(Response::Pong),
        Just(Response::ShuttingDown),
        error,
    ]
}

/// Structural equality with NaN-tolerant, bit-exact value comparison.
fn responses_equal(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (
            Response::Ran { outputs: oa, counters: ca },
            Response::Ran { outputs: ob, counters: cb },
        ) => {
            ca == cb
                && oa.len() == ob.len()
                && oa.iter().zip(ob).all(|(x, y)| {
                    x.name == y.name
                        && x.dims == y.dims
                        && x.values.len() == y.values.len()
                        && x.values.iter().zip(&y.values).all(|(u, v)| u.to_bits() == v.to_bits())
                })
        }
        _ => a == b,
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_roundtrip_bit_identically(req in request_strategy()) {
        let line = req.encode();
        prop_assert!(!line.contains('\n'), "one request per line: {line}");
        let decoded = Request::decode(&line)
            .map_err(|e| TestCaseError::fail(format!("{line}: {e}")))?;
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn responses_roundtrip_bit_identically(resp in response_strategy()) {
        let line = resp.encode();
        prop_assert!(!line.contains('\n'), "one response per line: {line}");
        let decoded = Response::decode(&line)
            .map_err(|e| TestCaseError::fail(format!("{line}: {e}")))?;
        prop_assert!(responses_equal(&decoded, &resp), "{:?} != {:?}", decoded, resp);
    }

    #[test]
    fn truncated_requests_error_not_panic(req in request_strategy(), frac in 0.0f64..1.0) {
        let line = req.encode();
        let cut = ((line.len() as f64) * frac) as usize;
        let cut = (0..=cut).rev().find(|&c| line.is_char_boundary(c)).unwrap_or(0);
        if cut < line.len() {
            let err = Request::decode(&line[..cut]);
            prop_assert!(err.is_err(), "proper prefix `{}` must not decode", &line[..cut]);
            // The structured error response built from it survives its
            // own round trip (so the connection can keep talking).
            let e = err.unwrap_err();
            let resp = Response::error(ErrorCode::Parse, e.message);
            let reline = resp.encode();
            prop_assert_eq!(Response::decode(&reline).unwrap(), resp);
        }
    }

    #[test]
    fn garbage_lines_never_panic(bytes in prop::collection::vec(0u32..0x110000, 0..40)) {
        // Arbitrary unicode soup: decode may fail (almost always) but
        // must never panic; if it somehow parses, it must re-encode.
        let line: String = bytes.iter().filter_map(|&b| char::from_u32(b)).collect();
        if let Ok(req) = Request::decode(&line) {
            let re = req.encode();
            prop_assert_eq!(Request::decode(&re).unwrap(), req);
        }
        let _ = Response::decode(&line);
    }

    #[test]
    fn mutated_json_never_panics(resp in response_strategy(), pos in 0usize..200, byte in 0u32..128) {
        let byte = byte as u8;
        // Flip one byte of a valid encoding to a printable/control char:
        // decode must fail cleanly or produce a decodable value.
        let mut line = resp.encode().into_bytes();
        if line.is_empty() {
            return Ok(());
        }
        let pos = pos % line.len();
        line[pos] = byte;
        if let Ok(s) = String::from_utf8(line) {
            let _ = Response::decode(&s);
            let _ = Request::decode(&s);
        }
    }
}
