//! Chaos tier: deterministic fault injection under concurrency.
//!
//! A seeded [`FaultPlan`] drives panics and IO failures through a
//! server carrying 16 concurrent connections, and every property the
//! fault-tolerance story promises is asserted:
//!
//! * an injected panic answers its victims with a **structured**
//!   `internal_error` — the process never aborts and the server keeps
//!   serving;
//! * an engine-level panic **quarantines** the kernel handle; victims
//!   re-prepare the same spec and resume — and every successful run,
//!   before or after, is **byte-identical** to an oracle captured on a
//!   never-faulted engine;
//! * injected read/write faults sever exactly their victim connection;
//!   peers never notice and reconnecting clients converge;
//! * injected journal failures refuse the mutation with zero side
//!   effects, and recovery (including a torn journal tail) restores
//!   every applied tensor with its exact generation.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use systec_serve::protocol::{
    ErrorCode, Placement, Request, Response, StorageFormat, TensorPayload,
};
use systec_serve::{Client, Engine, FaultSite, RetryPolicy, ServerConfig};

const CONNS: usize = 16;
const RUNS_PER_CONN: u64 = 12;

fn config() -> ServerConfig {
    ServerConfig { max_batch: 8, executors: common::executors(), ..ServerConfig::default() }
}

/// 16 connections hammer one kernel while the plan injects an
/// executor-level panic (caught at the scheduler) and an engine-level
/// panic (caught around the kernel, quarantining the handle). Every
/// client must complete its quota of successful runs, each
/// byte-identical to the oracle; panics surface only as structured
/// errors.
#[test]
fn injected_panics_never_abort_and_survivors_stay_byte_identical() {
    let plan = Arc::new(
        common::plan(0xC4A05).nth(FaultSite::ExecutorPanic, 3).nth(FaultSite::ExecPanic, 7),
    );
    let engine = Engine::new().with_fault_plan(Arc::clone(&plan));
    let h = common::warmed_server_with(engine, config());
    let addr = h.server.addr();
    let oracle = Arc::new(h.oracle);
    let internal_errors = Arc::new(AtomicU64::new(0));
    let quarantined_refusals = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..CONNS)
        .map(|_| {
            let oracle = Arc::clone(&oracle);
            let internal_errors = Arc::clone(&internal_errors);
            let quarantined_refusals = Arc::clone(&quarantined_refusals);
            let mut kernel = h.kernel;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut successes = 0u64;
                let mut budget = 10_000u32; // no silent infinite loop
                while successes < RUNS_PER_CONN {
                    budget = budget.checked_sub(1).expect("no convergence");
                    let line = client
                        .send_raw(&Request::Run { kernel, full: false, shard: None }.encode())
                        .unwrap();
                    match Response::decode(&line).unwrap() {
                        Response::Ran { .. } => {
                            assert_eq!(line, *oracle, "successful runs must be byte-identical");
                            successes += 1;
                        }
                        Response::Error { code: ErrorCode::Internal, .. } => {
                            // A panic victim: structured, retryable.
                            internal_errors.fetch_add(1, Ordering::SeqCst);
                        }
                        Response::Error { code: ErrorCode::KernelQuarantined, .. } => {
                            // The handle died; re-prepare mints a fresh
                            // one serving identical bytes.
                            quarantined_refusals.fetch_add(1, Ordering::SeqCst);
                            kernel = common::prepare_kernel(&mut client);
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                successes
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("no client thread may die"), RUNS_PER_CONN);
    }

    // Both injections fired, were counted, and the server still serves.
    assert_eq!(plan.injected(FaultSite::ExecutorPanic), 1);
    assert_eq!(plan.injected(FaultSite::ExecPanic), 1);
    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.request(&Request::Ping).unwrap(), Response::Pong);
    let Response::Stats { serve, .. } = probe.request(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert!(serve.panics_caught >= 2, "both panics must be counted: {}", serve.panics_caught);
    assert_eq!(serve.quarantined_kernels, 1, "exactly the engine-level panic quarantines");
    // The quarantine was visible to at least one client (its victims
    // got internal_error; subsequent runs got the structured refusal).
    assert!(internal_errors.load(Ordering::SeqCst) >= 1);
    probe.request(&Request::Shutdown).unwrap();
    h.server.wait();
}

/// Injected socket faults (read and write) sever exactly their victim
/// connections. Clients reconnect with [`RetryPolicy`] backoff and
/// still complete their full quota of byte-identical runs; the server
/// never aborts.
#[test]
fn injected_io_faults_sever_only_their_victims() {
    let plan =
        Arc::new(common::plan(0x10FA).nth(FaultSite::ConnRead, 5).nth(FaultSite::ConnWrite, 11));
    let engine = Engine::new().with_fault_plan(Arc::clone(&plan));
    let h = common::warmed_server_with(engine, config());
    let addr = h.server.addr();
    let oracle = Arc::new(h.oracle);
    let kernel = h.kernel;

    let workers: Vec<_> = (0..CONNS)
        .map(|i| {
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    attempts: 8,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(100),
                    seed: 0xBEEF + i as u64,
                };
                let mut client = Client::connect_with_retry(addr, &policy).unwrap();
                let mut successes = 0u64;
                let mut reconnects = 0u64;
                let mut budget = 10_000u32;
                while successes < RUNS_PER_CONN {
                    budget = budget.checked_sub(1).expect("no convergence");
                    match client
                        .send_raw(&Request::Run { kernel, full: false, shard: None }.encode())
                    {
                        Ok(line) => {
                            assert_eq!(line, *oracle, "severed peers must not corrupt survivors");
                            successes += 1;
                        }
                        Err(_) => {
                            // Our connection was the victim: reconnect
                            // and resume. Peers never see this.
                            reconnects += 1;
                            client = Client::connect_with_retry(addr, &policy).unwrap();
                        }
                    }
                }
                (successes, reconnects)
            })
        })
        .collect();
    let mut total_reconnects = 0u64;
    for w in workers {
        let (successes, reconnects) = w.join().expect("no client thread may die");
        assert_eq!(successes, RUNS_PER_CONN);
        total_reconnects += reconnects;
    }

    assert_eq!(plan.injected(FaultSite::ConnRead), 1);
    assert_eq!(plan.injected(FaultSite::ConnWrite), 1);
    assert!(total_reconnects >= 1, "at least one victim observed its severed connection");
    let mut probe = Client::connect(addr).unwrap();
    assert_eq!(probe.request(&Request::Ping).unwrap(), Response::Pong);
    probe.request(&Request::Shutdown).unwrap();
    h.server.wait();
}

/// Journal faults and a torn tail: registrations racing an injected
/// journal-write failure either apply (journaled, recovered exactly)
/// or refuse with zero side effects — and recovery after a torn tail
/// restores every applied tensor with its exact pre-crash generation.
#[test]
fn journal_faults_and_torn_tails_recover_every_applied_tensor() {
    let dir = std::env::temp_dir().join(format!("systec-chaos-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: a durable server with ~30% of journal appends failing.
    let plan = Arc::new(common::plan(0xD15C).rate(FaultSite::JournalWrite, 300_000));
    let engine = Engine::new()
        .with_fault_plan(Arc::clone(&plan))
        .with_data_dir(&dir)
        .expect("open data dir");
    let server = systec_serve::serve_with("127.0.0.1:0", engine, config()).expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();

    // Register many tensors; record exactly which applied and at what
    // generation — the recovery oracle.
    let mut applied: Vec<(String, u64)> = Vec::new();
    let mut refused = 0u64;
    for i in 0..24 {
        let name = format!("t{i}");
        let resp = client
            .request(&Request::RegisterTensor {
                name: name.clone(),
                dims: vec![3],
                payload: TensorPayload::Dense(vec![i as f64, 1.0, -1.0]),
                format: StorageFormat::Auto,
                placement: Placement::Hash,
            })
            .unwrap();
        match resp {
            Response::Registered { generation, .. } => applied.push((name, generation)),
            Response::Error { code: ErrorCode::Internal, .. } => refused += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert!(refused >= 1, "the injected journal failures must have fired");
    assert!(plan.injected(FaultSite::JournalWrite) >= 1);
    // A refused registration has zero side effects: the live count is
    // exactly the applied set.
    let Response::Stats { serve, .. } = client.request(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert_eq!(serve.registry_tensors as usize, applied.len());

    // Graceful shutdown drains and flushes the journal.
    client.request(&Request::Shutdown).unwrap();
    server.wait();

    // Tear the journal tail: append garbage bytes as a crash mid-append
    // would.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("journal.dat"))
            .expect("journal exists");
        f.write_all(&[0x17, 0xFF, 0x00, 0x42, 0x99]).unwrap();
    }

    // Phase 2: recover. Every applied tensor must be back; the torn
    // tail must be counted; generations must be exact (asserted by
    // re-registering: the next generation is exactly old + 1).
    let engine = Engine::new().with_data_dir(&dir).expect("recover data dir");
    let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
    assert_eq!(serve.registry_tensors as usize, applied.len(), "every applied tensor recovers");
    assert!(serve.recovery_replayed as usize >= applied.len());
    assert!(serve.recovery_truncated >= 5, "the torn tail was measured and dropped");
    for (name, generation) in &applied {
        let resp = engine.handle(&Request::RegisterTensor {
            name: name.clone(),
            dims: vec![3],
            payload: TensorPayload::Dense(vec![0.0, 0.0, 0.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        let Response::Registered { generation: next, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(next, generation + 1, "generation counter for {name} must survive recovery");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
