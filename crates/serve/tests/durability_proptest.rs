//! Durability round-trip property tier (vendored `proptest`):
//!
//! * arbitrary journal/snapshot records frame → decode **bit-identically**
//!   (tensor values compared by `f64` bits, so NaN and ±inf survive the
//!   disk format);
//! * a framed stream truncated at **every** byte offset decodes its
//!   longest valid record prefix without ever panicking — the property
//!   behind torn-tail crash recovery;
//! * arbitrary garbage appended after a valid prefix never corrupts the
//!   prefix and never panics.

use proptest::prelude::*;
use systec_serve::durability::{decode_stream, Record};
use systec_serve::protocol::TensorPayload;

/// Names exercising escaping: quotes, backslashes, newlines, non-ASCII.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("A".to_string()),
        Just(String::new()),
        Just("weird \"name\"".to_string()),
        Just("tab\the\\re".to_string()),
        Just("uni\u{00e9}\u{1f600}".to_string()),
        Just("nl\nin name".to_string()),
        Just("\u{0000}nul".to_string()),
    ]
}

/// Durable values must survive the disk format exactly — including the
/// non-finite ones a panicking kernel may have left behind.
fn value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e6f64..1.0e6).prop_map(|v| v),
        Just(0.0),
        Just(-0.0),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE),
        Just(f64::MAX),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    let dims = prop::collection::vec(1usize..5, 1..=3);
    let register = (
        name_strategy(),
        dims,
        0u64..100,
        any::<bool>(),
        prop::collection::vec(value_strategy(), 0..6),
    )
        .prop_map(|(name, dims, generation, dense, values)| {
            let payload = if dense {
                TensorPayload::Dense(values)
            } else {
                let rank = dims.len();
                let entries = values
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| ((0..rank).map(|m| (k + m) % 7).collect(), v))
                    .collect();
                TensorPayload::Coo(entries)
            };
            Record::Register { name, dims, generation, payload }
        });
    let unregister = name_strategy().prop_map(|name| Record::Unregister { name });
    let generations = prop::collection::vec((name_strategy(), 0u64..1000), 0..5)
        .prop_map(|generations| Record::Generations { generations });
    prop_oneof![register, unregister, generations]
}

/// Structural equality with bit-exact value comparison (plain `==`
/// would reject NaN == NaN).
fn records_equal(a: &Record, b: &Record) -> bool {
    match (a, b) {
        (
            Record::Register { name: na, dims: da, generation: ga, payload: pa },
            Record::Register { name: nb, dims: db, generation: gb, payload: pb },
        ) => {
            na == nb
                && da == db
                && ga == gb
                && match (pa, pb) {
                    (TensorPayload::Dense(va), TensorPayload::Dense(vb)) => {
                        va.len() == vb.len()
                            && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits())
                    }
                    (TensorPayload::Coo(ea), TensorPayload::Coo(eb)) => {
                        ea.len() == eb.len()
                            && ea.iter().zip(eb).all(|((ca, va), (cb, vb))| {
                                ca == cb && va.to_bits() == vb.to_bits()
                            })
                    }
                    _ => false,
                }
        }
        (a, b) => a == b,
    }
}

proptest! {
    /// Every record frames and decodes back bit-identically.
    #[test]
    fn record_frame_roundtrip_is_bit_identical(record in record_strategy()) {
        let stream = decode_stream(&record.frame());
        prop_assert_eq!(stream.records.len(), 1);
        prop_assert!(records_equal(&stream.records[0], &record));
        prop_assert_eq!(stream.truncated, 0);
    }

    /// A journal truncated at every possible byte offset — the torn
    /// tail a `kill -9` leaves behind — decodes the longest valid
    /// record prefix and never panics.
    #[test]
    fn truncation_at_every_offset_recovers_the_valid_prefix(
        records in prop::collection::vec(record_strategy(), 1..4)
    ) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for record in &records {
            bytes.extend_from_slice(&record.frame());
            boundaries.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let stream = decode_stream(&bytes[..cut]);
            // The valid prefix is exactly the whole records that fit.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(stream.records.len(), whole);
            prop_assert_eq!(stream.valid_len, boundaries[whole]);
            prop_assert_eq!(stream.truncated as usize, cut - boundaries[whole]);
            for (got, want) in stream.records.iter().zip(&records) {
                prop_assert!(records_equal(got, want));
            }
        }
    }

    /// Arbitrary garbage after a valid prefix neither corrupts the
    /// prefix nor panics the decoder.
    #[test]
    fn garbage_tails_never_corrupt_the_prefix(
        records in prop::collection::vec(record_strategy(), 0..3),
        garbage in prop::collection::vec((0u32..256).prop_map(|b| b as u8), 0..64)
    ) {
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&record.frame());
        }
        let valid_len = bytes.len();
        bytes.extend_from_slice(&garbage);
        let stream = decode_stream(&bytes);
        // The decoder may not find *fewer* records than the prefix
        // holds; by vanishing luck the garbage could frame validly, so
        // allow more.
        prop_assert!(stream.records.len() >= records.len());
        prop_assert!(stream.valid_len >= valid_len);
        for (got, want) in stream.records.iter().zip(&records) {
            prop_assert!(records_equal(got, want));
        }
    }

    /// Pure fuzz: any byte soup decodes without panicking.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec((0u32..256).prop_map(|b| b as u8), 0..256)) {
        let stream = decode_stream(&bytes);
        prop_assert!(stream.valid_len <= bytes.len());
    }
}
