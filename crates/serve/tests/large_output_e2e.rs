//! Large-output coalescing tier: like `coalescing_e2e`, but the hot
//! kernel's output (a dense 260x260 matrix, 67 600 elements) crosses
//! the scheduler's `LARGE_OUTPUT_ELEMS` replication threshold, so every
//! batch response is encoded and fanned out on the dedicated replicator
//! thread instead of the executor. Asserts that
//!
//! * coalescing still happens — dispatches stay strictly below runs
//!   (offloading the multi-megabyte encode *frees* the executor; it
//!   must not serialize behind the replicator);
//! * every response is **byte-identical** to the serial oracle — the
//!   replicator thread shares the codec path, so offloading is
//!   wire-invisible;
//! * `offloaded_replications` matches the dispatch count exactly: every
//!   batch of this kernel is large, so every one takes the offload
//!   path, and accounting stays exact (runs served, nothing expired,
//!   queue drained).
//!
//! Single `#[test]`: the assertions read engine-wide scheduler
//! counters, which a concurrently running sibling test would perturb.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

use systec_codegen::{ExecContext, Parallelism};
use systec_exec::Counters;
use systec_ir::parse_einsum;
use systec_kernels::{parse_symmetry, Prepared};
use systec_serve::protocol::{Placement, Request, Response, StorageFormat, TensorPayload, Variant};
use systec_serve::{oracle_response, serve_with, Client, Engine, ServerConfig};
use systec_tensor::generate::{random_dense, rng, sprand};
use systec_tensor::{csf, SparseTensor, Tensor};

const CLIENTS: usize = 8;
const RUNS_PER_CLIENT: usize = 8;
const EINSUM: &str = "for i, k, j: Y[i, j] += A[i, k] * B[k, j]";

#[test]
fn large_outputs_replicate_off_the_executor_and_stay_byte_identical() {
    let config = ServerConfig { max_batch: 16, executors: 1, ..ServerConfig::default() };
    let server = serve_with("127.0.0.1:0", Engine::new(), config).expect("bind ephemeral port");
    let addr = server.addr();

    // A sparse-times-dense product: heavy enough per dispatch that
    // same-key arrivals queue behind the busy executor, with a dense
    // n x n output that crosses the large-response threshold.
    let n = 260;
    let mut r = rng(0xB16);
    let a = sprand(n, n, 8_000, &mut r);
    let b = random_dense(vec![n, n], &mut r);

    let mut setup = Client::connect(addr).unwrap();
    let reg_a = Request::RegisterTensor {
        name: "A".into(),
        dims: vec![n, n],
        payload: TensorPayload::Coo(a.entries().map(|(c, v)| (c.to_vec(), v)).collect()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    };
    let reg_b = Request::RegisterTensor {
        name: "B".into(),
        dims: vec![n, n],
        payload: TensorPayload::Dense(b.as_slice().to_vec()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    };
    for req in [&reg_a, &reg_b] {
        let resp = setup.request(req).unwrap();
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }
    let prepare = Request::Prepare {
        einsum: EINSUM.into(),
        sym: vec![],
        inputs: vec![],
        variant: Variant::Systec,
        threads: Some(1),
        sharded: false,
    };

    // The serial oracle: same plan path, direct execution, same codec.
    let expected = {
        let einsum = parse_einsum(EINSUM).unwrap();
        let mut local = HashMap::new();
        local.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&a, &csf(2)).unwrap()));
        local.insert("B".to_string(), Tensor::Dense(b.clone()));
        let sym = parse_symmetry(&einsum, &[] as &[&str]).unwrap();
        let prepared = Prepared::compile_einsum(&einsum, &sym, &local)
            .unwrap()
            .with_parallelism(Parallelism::threads(1));
        let mut outputs = HashMap::new();
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        prepared.run_timed_into(&mut outputs, &mut ctx, &mut counters).unwrap();
        Arc::new(oracle_response(&outputs, &counters).encode())
    };

    // Each worker compares its multi-megabyte reply lines against the
    // oracle in place (hoarding 64 copies would dominate the test's
    // memory), returning only the match count.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut workers = Vec::new();
    for client_id in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        let expected = Arc::clone(&expected);
        let prepare = prepare.encode();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let line = client.send_raw(&prepare).expect("prepare");
            let kernel = match Response::decode(&line).expect("prepared reply decodes") {
                Response::Prepared { kernel, .. } => kernel,
                other => panic!("client {client_id}: prepare failed: {other:?}"),
            };
            let run = Request::Run { kernel, full: false, shard: None }.encode();
            barrier.wait();
            let mut matched = 0usize;
            for round in 0..RUNS_PER_CLIENT {
                let line = client
                    .send_raw(&run)
                    .unwrap_or_else(|e| panic!("client {client_id} round {round}: {e}"));
                assert_eq!(
                    line, *expected,
                    "client {client_id} round {round}: replicated reply must match the oracle"
                );
                matched += 1;
            }
            (kernel, matched)
        }));
    }
    let results: Vec<(u64, usize)> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();

    let first_kernel = results[0].0;
    let total = CLIENTS * RUNS_PER_CLIENT;
    let served: usize = results
        .iter()
        .map(|(kernel, matched)| {
            assert_eq!(*kernel, first_kernel, "identical prepares share one handle");
            *matched
        })
        .sum();
    assert_eq!(served, total);

    // Telemetry: the executor coalesced, and every (large) dispatch
    // was replicated on the offload thread.
    let stats_resp = setup.request(&Request::Stats).unwrap();
    let Response::Stats { requests, serve: srv, kernels, .. } = stats_resp else {
        panic!("stats failed: {stats_resp:?}")
    };
    assert_eq!(requests.run, total as u64);
    assert_eq!(requests.errors, 0, "a clean workload answers no errors");
    assert_eq!(srv.batched_runs, total as u64, "every run dispatches through the scheduler");
    assert!(
        srv.batch_dispatches >= 1 && srv.batch_dispatches < total as u64,
        "a single executor under {CLIENTS} concurrent clients must coalesce \
         ({} dispatches for {total} runs)",
        srv.batch_dispatches,
    );
    assert_eq!(
        srv.offloaded_replications, srv.batch_dispatches,
        "every dispatch of a large-output kernel takes the replicator thread"
    );
    assert_eq!(srv.queued, 0, "queue drains once clients join");
    assert_eq!(srv.deadline_exceeded, 0);
    assert_eq!(srv.stale_runs, 0);
    assert_eq!(srv.rejected_conns, 0);
    assert_eq!(srv.rejected_bytes, 0);
    assert_eq!(kernels.len(), 1, "one hot kernel");
    assert_eq!(kernels[0].runs, total as u64, "per-kernel run accounting covers batches");

    let resp = setup.request(&Request::Shutdown).unwrap();
    assert_eq!(resp, Response::ShuttingDown);
    server.wait();
}
