//! Extends the PR 2 counting-allocator regression harness to a warmed
//! server worker: once an engine's pooled state is warm (run slots +
//! execution contexts sized by the first few requests), the
//! steady-state **execution path** of a `run` request —
//! [`systec_serve::Engine::execute`]: kernel lookup, slot + context
//! checkout, `run_timed_into`, latency recording, lease return —
//! performs **zero** heap allocations. Response serialization is
//! deliberately outside the measured region (it builds a fresh line per
//! request by design).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use systec_serve::protocol::{Placement, Request, Response, StorageFormat, TensorPayload, Variant};
use systec_serve::Engine;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

/// The two tests below each measure a delta of the process-global
/// counter; serialize them so one test's warmup never lands inside the
/// other's measured region.
fn measurement_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Registers a small symmetric SSYMV workload and returns its handle.
fn warmed_engine() -> (Engine, u64) {
    let engine = Engine::new();
    let n = 12;
    // Tridiagonal-ish symmetric matrix, deterministic without an RNG.
    let mut entries = Vec::new();
    for i in 0..n {
        entries.push((vec![i, i], 1.0 + i as f64));
        if i + 1 < n {
            entries.push((vec![i, i + 1], 0.5 + i as f64 / 10.0));
            entries.push((vec![i + 1, i], 0.5 + i as f64 / 10.0));
        }
    }
    let resp = engine.handle(&Request::RegisterTensor {
        name: "A".into(),
        dims: vec![n, n],
        payload: TensorPayload::Coo(entries),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    });
    assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    let resp = engine.handle(&Request::RegisterTensor {
        name: "x".into(),
        dims: vec![n],
        payload: TensorPayload::Dense((0..n).map(|k| 1.0 + k as f64 / 7.0).collect()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    });
    assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    let resp = engine.handle(&Request::Prepare {
        einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
        sym: vec!["A".into()],
        inputs: vec![],
        variant: Variant::Systec,
        threads: Some(1),
        sharded: false,
    });
    let Response::Prepared { kernel, .. } = resp else { panic!("prepare failed: {resp:?}") };
    (engine, kernel)
}

#[test]
fn warmed_server_worker_executes_allocation_free() {
    let _serialized = measurement_lock();
    // Telemetry explicitly ON: latency-histogram recording (atomic
    // bucket increments) and the slow-threshold check live inside the
    // measured region and must not cost an allocation.
    systec_telemetry::set_mode(systec_telemetry::TelemetryMode::On);
    let (engine, kernel) = warmed_engine();
    // Warm the pooled state: the first runs size the run slot, the
    // execution context, and the counters map.
    for _ in 0..3 {
        let lease = engine.execute(kernel).expect("run succeeds");
        assert!(!lease.outputs().is_empty());
    }
    assert_eq!(engine.context_pool().created(), 1, "one serial worker, one context");

    let before = allocations();
    for _ in 0..10 {
        let lease = engine.execute(kernel).expect("run succeeds");
        // Touch the results the way serialization would read them.
        std::hint::black_box(lease.outputs().len());
        std::hint::black_box(lease.counters().flops);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state serving must not allocate on the execution path \
         (saw {} allocations over 10 runs)",
        after - before
    );
    // Still the same single pooled context — the leases recycled it.
    assert_eq!(engine.context_pool().created(), 1);
}

#[test]
fn interleaving_kernels_stays_allocation_free_once_both_are_warm() {
    let _serialized = measurement_lock();
    let (engine, ssymv) = warmed_engine();
    let resp = engine.handle(&Request::Prepare {
        einsum: "for i, j: y[] += x[i] * A[i, j] * x[j]".into(),
        sym: vec!["A".into()],
        inputs: vec![],
        variant: Variant::Systec,
        threads: Some(1),
        sharded: false,
    });
    let Response::Prepared { kernel: syprd, .. } = resp else { panic!("{resp:?}") };
    for _ in 0..3 {
        drop(engine.execute(ssymv).unwrap());
        drop(engine.execute(syprd).unwrap());
    }
    let before = allocations();
    for _ in 0..10 {
        drop(engine.execute(ssymv).unwrap());
        drop(engine.execute(syprd).unwrap());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "per-kernel slots keep interleaved serving allocation-free (saw {})",
        after - before
    );
}

#[test]
fn telemetry_off_freezes_recording_without_changing_results() {
    use systec_telemetry::{set_mode, TelemetryMode};

    // Mirrors the exact-parity counters' `CounterMode::Off` test: the
    // global switch must change *observability only* — served bytes
    // stay identical — while histograms and counters freeze. Runs
    // under the measurement lock because the mode is process-global.
    let _serialized = measurement_lock();
    let (engine, kernel) = warmed_engine();

    set_mode(TelemetryMode::On);
    let on_line = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();
    let counted_while_on = {
        // One recorded sample per pooled run while On.
        let Response::Stats { kernels, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        assert!(kernels[0].median_us.is_some(), "On mode records latencies");
        kernels[0].runs
    };

    set_mode(TelemetryMode::Off);
    let off_line = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();
    let Response::Stats { kernels, .. } = engine.handle(&Request::Stats) else {
        panic!("stats failed")
    };
    set_mode(TelemetryMode::On);

    assert_eq!(on_line, off_line, "telemetry mode must not change served bytes");
    assert_eq!(kernels[0].runs, counted_while_on + 1, "run accounting is mode-independent");
    // The histogram froze: the Off run left no new sample, so the
    // engine-side latency count (exposed via the Prometheus text)
    // still matches the On-mode run count.
    let Response::Metrics { text } = engine.handle(&Request::Metrics) else {
        panic!("metrics failed")
    };
    assert!(
        text.contains(&format!(
            "systec_kernel_latency_ns_count{{kernel=\"0\"}} {counted_while_on}"
        )),
        "Off-mode runs must not enter the latency histogram:\n{text}"
    );
}
