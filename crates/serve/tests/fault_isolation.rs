//! Fault-isolation tier (on the shared `common` harness, like the
//! chaos tier): misbehaving connections must not disturb well-behaved
//! ones, and shutdown must leak no workers.
//!
//! * garbage lines get a structured `parse` error and the connection
//!   **stays open**;
//! * a connection that disconnects mid-request (no trailing newline)
//!   is cleaned up while in-flight traffic on other connections
//!   completes normally;
//! * unregistered tensors / bad handles get error replies, not drops;
//! * shutdown joins every connection handler (`active_connections`
//!   returns to zero) and — reusing PR 4's pool-reuse assertion — the
//!   steady-state run traffic spawned **zero** extra `rayon` pool
//!   workers beyond warmup.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use systec_serve::protocol::{
    ErrorCode, Placement, Request, Response, StorageFormat, TensorPayload, Variant,
};
use systec_serve::{serve, Client, Engine};

#[test]
fn faulty_connections_are_isolated_and_shutdown_leaks_nothing() {
    let common::Harness { server, kernel, oracle } = common::warmed_server();
    let addr = server.addr();

    // A well-behaved connection runs continuously in the background
    // while the faults below happen, checking every response against
    // the harness oracle (captured on a separate, never-faulted
    // engine).
    let stop = Arc::new(AtomicBool::new(false));
    let victim_stop = Arc::clone(&stop);
    let victim = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let expected = oracle;
        let mut completed = 0u64;
        while !victim_stop.load(Ordering::SeqCst) {
            let line = client
                .send_raw(&Request::Run { kernel, full: false, shard: None }.encode())
                .unwrap();
            assert_eq!(line, expected, "in-flight runs must be untouched by faulty peers");
            completed += 1;
        }
        completed
    });

    // Fault 1: garbage, then a valid request on the SAME connection —
    // the server answers a structured error and keeps the line open.
    let mut faulty = Client::connect(addr).unwrap();
    for garbage in ["this is not json", "{\"op\":", "{\"op\":\"warp\"}", "{}"] {
        let line = faulty.send_raw(garbage).unwrap();
        match Response::decode(&line).unwrap() {
            Response::Error { code: ErrorCode::Parse, .. } => {}
            other => panic!("garbage `{garbage}` got {other:?}"),
        }
    }
    assert_eq!(faulty.request(&Request::Ping).unwrap(), Response::Pong, "connection survives");

    // Fault 2: a mid-request disconnect — half a request, no newline,
    // then a hard drop.
    {
        let mut half = TcpStream::connect(addr).unwrap();
        half.write_all(br#"{"op":"run","ker"#).unwrap();
        half.flush().unwrap();
        drop(half);
    }

    // Fault 3: semantic errors get error replies, not drops.
    let resp = faulty
        .request(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * z[j]".into(),
            sym: vec![],
            inputs: vec![("z".into(), "never_registered".into())],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        })
        .unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::UnknownTensor, .. }), "{resp:?}");
    let resp = faulty.request(&Request::Run { kernel: 4096, full: false, shard: None }).unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::UnknownKernel, .. }), "{resp:?}");
    let resp = faulty
        .request(&Request::RegisterTensor {
            name: "bad".into(),
            dims: vec![2, 2],
            payload: TensorPayload::Coo(vec![(vec![9, 9], 1.0)]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        })
        .unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::BadTensor, .. }), "{resp:?}");
    assert_eq!(faulty.request(&Request::Ping).unwrap(), Response::Pong, "still alive after all");

    // Let the victim overlap the faults for a while, then take the
    // pool-reuse snapshot: steady-state parallel serving must not keep
    // spawning pool workers (PR 4's persistent-pool guarantee).
    let workers_after_warmup = rayon::pool_workers_spawned();
    let mut churn = Client::connect(addr).unwrap();
    for _ in 0..50 {
        let line =
            churn.send_raw(&Request::Run { kernel, full: false, shard: None }.encode()).unwrap();
        assert!(matches!(Response::decode(&line), Ok(Response::Ran { .. })));
    }
    assert_eq!(
        rayon::pool_workers_spawned(),
        workers_after_warmup,
        "steady-state serving reuses parked pool workers"
    );

    stop.store(true, Ordering::SeqCst);
    let victim_runs = victim.join().expect("victim connection never errored");
    assert!(victim_runs > 1, "the well-behaved connection made progress throughout");

    // Error accounting: 4 garbage lines + 3 semantic errors + the
    // mid-request disconnect (EOF delivers its partial line, which
    // fails to parse).
    let Response::Stats { requests, .. } = churn.request(&Request::Stats).unwrap() else {
        panic!("stats failed")
    };
    assert_eq!(requests.errors, 8);

    // Clean shutdown on signal: the wire acknowledges, every handler
    // joins, no connection workers leak.
    let resp = churn.request(&Request::Shutdown).unwrap();
    assert_eq!(resp, Response::ShuttingDown);
    // Connections other than the shutdown sender are severed.
    let err = faulty.request(&Request::Ping);
    assert!(err.is_err(), "peer connections are closed by shutdown");
    server.wait();
}

#[test]
fn oversized_request_lines_are_answered_and_cut_off() {
    use std::io::{BufRead, BufReader};

    let server = serve("127.0.0.1:0", Engine::new()).expect("bind");
    // Stream more than MAX_REQUEST_LINE bytes with no newline: the
    // server must answer one structured error and hang up instead of
    // buffering without bound.
    let mut hog = TcpStream::connect(server.addr()).unwrap();
    let chunk = vec![b'a'; 1 << 20];
    let mut sent = 0usize;
    while sent <= systec_serve::server::MAX_REQUEST_LINE {
        if hog.write_all(&chunk).is_err() {
            break; // server already cut us off mid-stream
        }
        sent += chunk.len();
    }
    let _ = hog.flush();
    let mut reader = BufReader::new(hog.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    match Response::decode(reply.trim_end()) {
        Ok(Response::Error { code: ErrorCode::LineTooLong, message }) => {
            assert!(message.contains("exceeds"), "{message}");
        }
        other => panic!("expected a parse error for the oversized line, got {other:?}"),
    }
    // The connection is closed afterwards (framing is unrecoverable).
    reply.clear();
    assert_eq!(reader.read_line(&mut reply).unwrap_or(0), 0, "connection must be closed");

    // Other clients are unaffected.
    let mut ok = Client::connect(server.addr()).unwrap();
    assert_eq!(ok.request(&Request::Ping).unwrap(), Response::Pong);
    server.join();
}

#[test]
fn programmatic_shutdown_joins_all_handlers() {
    let server = serve("127.0.0.1:0", Engine::new()).expect("bind");
    let addr = server.addr();
    // Park a few idle connections mid-read.
    let mut idle = Vec::new();
    for _ in 0..4 {
        let mut c = Client::connect(addr).unwrap();
        assert_eq!(c.request(&Request::Ping).unwrap(), Response::Pong);
        idle.push(c);
    }
    // Handlers are live.
    for _ in 0..100 {
        if server.active_connections() == 4 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert_eq!(server.active_connections(), 4);
    server.shutdown();
    let probe = server.engine().clone();
    server.wait();
    // wait() returns only after every handler joined; nothing serves
    // anymore, and the engine is still sane for inspection.
    drop(probe);
    for c in &mut idle {
        assert!(c.request(&Request::Ping).is_err(), "sockets are shut down");
    }
}

#[test]
fn a_panicking_spec_is_circuit_broken_at_prepare_over_the_wire() {
    use std::sync::Arc;
    use systec_serve::{FaultSite, ServerConfig};

    // Every run of the harness spec panics. Budget 2: two full
    // prepare → panic → quarantine bounces, then the *spec* is refused
    // at prepare time with a structured, non-retryable error — over
    // the wire, exactly like the engine-level unit tier promises.
    let plan = Arc::new(common::plan(0xB0DCE7).rate(FaultSite::ExecPanic, 1_000_000));
    let engine = Engine::new().with_fault_plan(plan).with_panic_budget(2);
    let common::Harness { server, kernel, .. } =
        common::warmed_server_with(engine, ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let strike = |client: &mut Client, kernel: u64| {
        let resp = client.request(&Request::Run { kernel, full: false, shard: None }).unwrap();
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::Internal, .. }),
            "a panicking run answers internal_error: {resp:?}"
        );
    };
    strike(&mut client, kernel);
    // The quarantine bounce: a fresh prepare mints a fresh handle
    // (the quarantined one must not satisfy dedup) and panics again.
    let bounced = common::prepare_kernel(&mut client);
    assert_ne!(bounced, kernel, "quarantined handles must not satisfy dedup");
    strike(&mut client, bounced);

    // Budget exhausted: the bounce is broken before another doomed
    // compile.
    let resp = client
        .request(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(2),
            sharded: false,
        })
        .unwrap();
    let Response::Error { code, message } = resp else { panic!("{resp:?}") };
    assert_eq!(code, ErrorCode::KernelQuarantined);
    assert!(message.contains("circuit-broken"), "{message}");

    // Re-registering the data bumps its generation, which re-keys the
    // spec and re-opens the breaker: clients with fresh data are not
    // locked out by the old spec's strikes.
    common::register_inputs(&mut client);
    let reopened = common::prepare_kernel(&mut client);
    assert_ne!(reopened, bounced);

    assert_eq!(client.request(&Request::Shutdown).unwrap(), Response::ShuttingDown);
    server.wait();
}
