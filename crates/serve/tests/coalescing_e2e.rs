//! Coalescing end-to-end tier: hammer one hot kernel from 16 concurrent
//! connections through a single-executor server and assert that
//!
//! * the scheduler **coalesced** concurrent identical runs — the
//!   dispatch counter is strictly below the run counter (while the lone
//!   executor is busy, same-key arrivals pile into one bucket and drain
//!   as a batch on the next dispatch);
//! * every one of the 480 responses is **byte-identical** to a serial
//!   direct-execution oracle serialized through the same codec — a
//!   batched dispatch is wire-indistinguishable from serial service;
//! * accounting is exact: `batched_runs` equals the run count, nothing
//!   expired, went stale, or was rejected, and the queue drained.
//!
//! Single `#[test]`: the assertions read engine-wide scheduler counters,
//! which a concurrently running sibling test would perturb.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

use systec_codegen::{ExecContext, Parallelism};
use systec_exec::Counters;
use systec_ir::parse_einsum;
use systec_kernels::{parse_symmetry, Prepared};
use systec_serve::protocol::{Placement, Request, Response, StorageFormat, TensorPayload, Variant};
use systec_serve::{oracle_response, serve_with, Client, Engine, ServerConfig};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};
use systec_tensor::{csf, SparseTensor, Tensor};

const CLIENTS: usize = 16;
const RUNS_PER_CLIENT: usize = 30;
const EINSUM: &str = "for i, j: y[i] += A[i, j] * x[j]";

#[test]
fn concurrent_identical_runs_coalesce_and_stay_byte_identical() {
    // One executor, generous batch: while the executor serves one
    // dispatch, every same-key arrival queues behind it and the next
    // dispatch drains them together.
    let config = ServerConfig { max_batch: 16, executors: 1, ..ServerConfig::default() };
    let server = serve_with("127.0.0.1:0", Engine::new(), config).expect("bind ephemeral port");
    let addr = server.addr();

    // A moderately heavy SSYMV so each dispatch occupies the executor
    // long enough for the other clients' next runs to queue up.
    let n = 256;
    let mut r = rng(0xC0A1);
    let a = symmetric_erdos_renyi(n, 2, 0.08, &mut r);
    let x = random_dense(vec![n], &mut r);

    let mut setup = Client::connect(addr).unwrap();
    let reg_a = Request::RegisterTensor {
        name: "A".into(),
        dims: vec![n, n],
        payload: TensorPayload::Coo(a.entries().map(|(c, v)| (c.to_vec(), v)).collect()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    };
    let reg_x = Request::RegisterTensor {
        name: "x".into(),
        dims: vec![n],
        payload: TensorPayload::Dense(x.as_slice().to_vec()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    };
    for req in [&reg_a, &reg_x] {
        let resp = setup.request(req).unwrap();
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }
    let prepare = Request::Prepare {
        einsum: EINSUM.into(),
        sym: vec!["A".into()],
        inputs: vec![],
        variant: Variant::Systec,
        threads: Some(1),
        sharded: false,
    };

    // The serial oracle: same plan path, direct execution, same codec.
    let expected = {
        let einsum = parse_einsum(EINSUM).unwrap();
        let mut local = HashMap::new();
        local.insert("A".to_string(), Tensor::Sparse(SparseTensor::from_coo(&a, &csf(2)).unwrap()));
        local.insert("x".to_string(), Tensor::Dense(x.clone()));
        let sym = parse_symmetry(&einsum, &["A".to_string()]).unwrap();
        let prepared = Prepared::compile_einsum(&einsum, &sym, &local)
            .unwrap()
            .with_parallelism(Parallelism::threads(1));
        let mut outputs = HashMap::new();
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        prepared.run_timed_into(&mut outputs, &mut ctx, &mut counters).unwrap();
        oracle_response(&outputs, &counters).encode()
    };

    // 16 clients prepare (deduping to one handle) and then, from a
    // barrier, keep one run in flight each until 480 runs have served.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut workers = Vec::new();
    for client_id in 0..CLIENTS {
        let barrier = Arc::clone(&barrier);
        let prepare = prepare.encode();
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let line = client.send_raw(&prepare).expect("prepare");
            let kernel = match Response::decode(&line).expect("prepared reply decodes") {
                Response::Prepared { kernel, .. } => kernel,
                other => panic!("client {client_id}: prepare failed: {other:?}"),
            };
            let run = Request::Run { kernel, full: false, shard: None }.encode();
            barrier.wait();
            let mut lines = Vec::with_capacity(RUNS_PER_CLIENT);
            for round in 0..RUNS_PER_CLIENT {
                let line = client
                    .send_raw(&run)
                    .unwrap_or_else(|e| panic!("client {client_id} round {round}: {e}"));
                lines.push(line);
            }
            (kernel, lines)
        }));
    }
    let results: Vec<(u64, Vec<String>)> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();

    // Byte-identical to the serial oracle, on every line of every
    // connection — batching never leaks into the wire format.
    let first_kernel = results[0].0;
    let mut served = 0usize;
    for (kernel, lines) in &results {
        assert_eq!(*kernel, first_kernel, "identical prepares share one handle");
        for line in lines {
            assert_eq!(*line, expected, "batched responses must match the serial oracle");
            served += 1;
        }
    }
    let total = CLIENTS * RUNS_PER_CLIENT;
    assert_eq!(served, total);

    // Telemetry: fewer dispatches than runs is the coalescing win.
    let stats_resp = setup.request(&Request::Stats).unwrap();
    let Response::Stats { requests, serve: srv, kernels, .. } = stats_resp else {
        panic!("stats failed: {stats_resp:?}")
    };
    assert_eq!(requests.run, total as u64);
    assert_eq!(requests.errors, 0, "a clean workload answers no errors");
    assert_eq!(srv.batched_runs, total as u64, "every run dispatches through the scheduler");
    assert!(
        srv.batch_dispatches >= 1 && srv.batch_dispatches < total as u64,
        "a single executor under 16 concurrent clients must coalesce \
         ({} dispatches for {total} runs)",
        srv.batch_dispatches,
    );
    assert_eq!(srv.queued, 0, "queue drains once clients join");
    assert_eq!(srv.deadline_exceeded, 0);
    assert_eq!(srv.stale_runs, 0);
    assert_eq!(srv.rejected_conns, 0);
    assert_eq!(srv.rejected_bytes, 0);
    assert_eq!(kernels.len(), 1, "one hot kernel");
    assert_eq!(kernels[0].runs, total as u64, "per-kernel run accounting covers batches");

    // Clean shutdown over the wire.
    let resp = setup.request(&Request::Shutdown).unwrap();
    assert_eq!(resp, Response::ShuttingDown);
    server.wait();
}
