//! Shared harness for the fault tiers (`fault_isolation.rs`,
//! `chaos_e2e.rs`): one warmed ssymv server with a deterministic
//! workload, an explicit [`FaultPlan`] hook, and the byte-identical
//! oracle every healthy run must reproduce.

// Each test binary compiles this module separately and uses a
// different subset of it.
#![allow(dead_code)]

use systec_serve::protocol::{Placement, Request, Response, StorageFormat, TensorPayload, Variant};
use systec_serve::{serve_with, Client, Engine, FaultPlan, RunningServer, ServerConfig};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

/// A running warmed server: tensors registered, one ssymv kernel
/// prepared, and the oracle line captured from a fault-free engine.
pub struct Harness {
    /// The running server under test.
    pub server: RunningServer,
    /// The prepared kernel handle.
    pub kernel: u64,
    /// The exact response line a healthy `run` must produce —
    /// captured from a separate, never-faulted engine so injected
    /// faults cannot contaminate it.
    pub oracle: String,
}

/// Scheduler executors for the tier: `SYSTEC_TEST_THREADS` when CI
/// pins it, else 2.
pub fn executors() -> usize {
    std::env::var("SYSTEC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// The deterministic harness inputs as registration requests.
fn input_requests() -> Vec<Request> {
    let n = 24;
    let mut r = rng(0xFA017);
    let a = symmetric_erdos_renyi(n, 2, 0.2, &mut r);
    let x = random_dense(vec![n], &mut r);
    vec![
        Request::RegisterTensor {
            name: "A".into(),
            dims: vec![n, n],
            payload: TensorPayload::Coo(a.entries().map(|(c, v)| (c.to_vec(), v)).collect()),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        },
        Request::RegisterTensor {
            name: "x".into(),
            dims: vec![n],
            payload: TensorPayload::Dense(x.as_slice().to_vec()),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        },
    ]
}

/// The ssymv prepare for the harness inputs (threads=2 so runs
/// exercise the worker pool).
fn prepare_request() -> Request {
    Request::Prepare {
        einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
        sym: vec!["A".into()],
        inputs: vec![],
        variant: Variant::Systec,
        threads: Some(2),
        sharded: false,
    }
}

/// Registers the deterministic ssymv inputs over the wire.
pub fn register_inputs(client: &mut Client) {
    for request in input_requests() {
        let resp = client.request(&request).unwrap();
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }
}

/// Prepares the ssymv kernel over the wire and returns its handle.
pub fn prepare_kernel(client: &mut Client) -> u64 {
    let resp = client.request(&prepare_request()).unwrap();
    let Response::Prepared { kernel, splittable, .. } = resp else {
        panic!("prepare failed: {resp:?}")
    };
    assert!(splittable, "ssymv splits; threads=2 dispatches the pool");
    kernel
}

/// Registers the inputs directly against the engine — used to warm a
/// fault-injected server without the setup traffic itself consuming
/// events from the socket fault streams.
pub fn register_inputs_engine(engine: &Engine) {
    for request in input_requests() {
        let resp = engine.handle(&request);
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }
}

/// Prepares the ssymv kernel directly against the engine.
pub fn prepare_kernel_engine(engine: &Engine) -> u64 {
    let resp = engine.handle(&prepare_request());
    let Response::Prepared { kernel, splittable, .. } = resp else {
        panic!("prepare failed: {resp:?}")
    };
    assert!(splittable, "ssymv splits; threads=2 dispatches the pool");
    kernel
}

/// The run line a fault-free engine produces for the harness workload —
/// computed on its own engine, independent of any server under test.
pub fn oracle_line() -> String {
    let engine = Engine::new();
    register_inputs_engine(&engine);
    let kernel = prepare_kernel_engine(&engine);
    let line = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();
    assert!(matches!(Response::decode(&line), Ok(Response::Ran { .. })), "{line}");
    line
}

/// Boots a warmed server around `engine` (attach a [`FaultPlan`]
/// and/or data dir to it first) and captures the oracle. The warmup
/// happens engine-side, so it consumes no socket fault events.
pub fn warmed_server_with(engine: Engine, config: ServerConfig) -> Harness {
    let oracle = oracle_line();
    let server = serve_with("127.0.0.1:0", engine, config).expect("bind");
    register_inputs_engine(server.engine());
    let kernel = prepare_kernel_engine(server.engine());
    Harness { server, kernel, oracle }
}

/// A warmed fault-free server with the default transport config.
pub fn warmed_server() -> Harness {
    warmed_server_with(Engine::new(), ServerConfig::default())
}

/// Convenience: a seeded plan builder the tiers share, so every tier
/// names its faults the same way.
pub fn plan(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
}
