//! End-to-end serving tier: spawn the real TCP server on an ephemeral
//! port, hammer it with 32 concurrent client connections × 105 requests
//! each over five distinct kernels, and assert
//!
//! * every run response is **byte-identical** across all connections and
//!   repetitions, and identical to a direct `Prepared::run_timed_into`
//!   oracle serialized through the same codec (outputs bit-exact,
//!   counters exact);
//! * the plan cache performed **exactly one build per distinct kernel
//!   key** — single-flight holds under real sockets (`CacheStats.builds`
//!   asserted);
//! * request/run accounting in `stats` is exact, with zero errors and
//!   zero evictions.
//!
//! This file deliberately holds a single `#[test]`: the assertions are
//! against process-wide plan-cache statistics, which a concurrently
//! running sibling test would perturb.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use systec_codegen::{ExecContext, Parallelism};
use systec_exec::Counters;
use systec_ir::parse_einsum;
use systec_kernels::{clear_plan_cache, parse_symmetry, plan_cache_stats, Prepared};
use systec_serve::protocol::{Placement, Request, Response, StorageFormat, TensorPayload, Variant};
use systec_serve::{oracle_response, serve, Client, Engine};
use systec_tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
use systec_tensor::{csf, CooTensor, DenseTensor, Tensor};

const CLIENTS: usize = 32;
const RUNS_PER_KERNEL: usize = 20; // x 5 kernels = 100 run requests per client

/// One kernel of the workload: the protocol prepare request plus
/// everything the oracle needs to reproduce it directly.
struct KernelCase {
    label: &'static str,
    einsum: &'static str,
    sym: Vec<String>,
    variant: Variant,
    threads: usize,
}

fn cases() -> Vec<KernelCase> {
    vec![
        KernelCase {
            label: "ssymv",
            einsum: "for i, j: y[i] += A[i, j] * x[j]",
            sym: vec!["A".into()],
            variant: Variant::Systec,
            threads: 1,
        },
        KernelCase {
            label: "ssymv-naive",
            einsum: "for i, j: y[i] += A[i, j] * x[j]",
            sym: vec![],
            variant: Variant::Naive,
            threads: 1,
        },
        KernelCase {
            label: "syprd",
            einsum: "for i, j: y[] += x[i] * A[i, j] * x[j]",
            sym: vec!["A".into()],
            variant: Variant::Systec,
            threads: 1,
        },
        KernelCase {
            label: "bellman-ford",
            einsum: "for i, j: y[i] min= A[i, j] + d[j]",
            sym: vec!["A".into()],
            variant: Variant::Systec,
            threads: 1,
        },
        KernelCase {
            // Parallel execution over real sockets: SSYRK is
            // row-splittable, so threads=2 dispatches the worker pool.
            label: "ssyrk",
            einsum: "for i, j, k: C[i, j] += G[i, k] * G[j, k]",
            sym: vec![],
            variant: Variant::Systec,
            threads: 2,
        },
    ]
}

fn prepare_request(case: &KernelCase) -> Request {
    Request::Prepare {
        einsum: case.einsum.into(),
        sym: case.sym.clone(),
        inputs: vec![],
        variant: case.variant,
        threads: Some(case.threads),
        sharded: false,
    }
}

/// The shared dataset, both as registration requests and as the local
/// tensors the oracle binds. The protocol carries values with shortest
/// round-trip printing, so the server's packed tensors are bit-identical
/// to these.
struct Dataset {
    requests: Vec<Request>,
    local: HashMap<String, Tensor>,
}

fn coo_payload(coo: &CooTensor) -> TensorPayload {
    TensorPayload::Coo(coo.entries().map(|(coords, v)| (coords.to_vec(), v)).collect())
}

fn dataset() -> Dataset {
    let n = 30;
    let mut r = rng(0xE2E);
    let a = symmetric_erdos_renyi(n, 2, 0.15, &mut r);
    let g = sprand(n, n, 120, &mut r);
    let x = random_dense(vec![n], &mut r);
    let d = random_dense(vec![n], &mut r);

    let mut local = HashMap::new();
    local.insert(
        "A".to_string(),
        Tensor::Sparse(systec_tensor::SparseTensor::from_coo(&a, &csf(2)).unwrap()),
    );
    local.insert(
        "G".to_string(),
        Tensor::Sparse(systec_tensor::SparseTensor::from_coo(&g, &csf(2)).unwrap()),
    );
    local.insert("x".to_string(), Tensor::Dense(x.clone()));
    local.insert("d".to_string(), Tensor::Dense(d.clone()));

    let dense_req = |name: &str, t: &DenseTensor| Request::RegisterTensor {
        name: name.into(),
        dims: t.dims().to_vec(),
        payload: TensorPayload::Dense(t.as_slice().to_vec()),
        format: StorageFormat::Auto,
        placement: Placement::Hash,
    };
    let requests = vec![
        Request::RegisterTensor {
            name: "A".into(),
            dims: vec![n, n],
            payload: coo_payload(&a),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        },
        Request::RegisterTensor {
            name: "G".into(),
            dims: vec![n, n],
            payload: coo_payload(&g),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        },
        dense_req("x", &x),
        dense_req("d", &d),
    ];
    Dataset { requests, local }
}

/// The direct-execution oracle: prepare through the same plan-cache
/// path, execute with `run_timed_into`, serialize through the same
/// response codec.
fn oracle_line(case: &KernelCase, registered: &HashMap<String, Tensor>) -> String {
    let einsum = parse_einsum(case.einsum).unwrap();
    // Bind exactly the tensors the einsum reads, as the server does —
    // the plan key covers all bindings, so binding extra tensors would
    // (correctly) key a different plan.
    let local: HashMap<String, Tensor> = einsum
        .rhs
        .accesses()
        .iter()
        .map(|a| (a.tensor.name.clone(), registered[&a.tensor.name].clone()))
        .collect();
    let local = &local;
    let prepared = match case.variant {
        Variant::Systec => {
            let sym = parse_symmetry(&einsum, &case.sym).unwrap();
            Prepared::compile_einsum(&einsum, &sym, local).unwrap()
        }
        Variant::Naive => Prepared::naive_einsum(&einsum, local).unwrap(),
    }
    .with_parallelism(Parallelism::threads(case.threads));
    let mut outputs = HashMap::new();
    let mut ctx = ExecContext::new();
    let mut counters = Counters::new();
    prepared.run_timed_into(&mut outputs, &mut ctx, &mut counters).unwrap();
    oracle_response(&outputs, &counters).encode()
}

#[test]
fn thirty_two_connections_hundred_requests_byte_deterministic() {
    clear_plan_cache();
    let data = dataset();
    let server = serve("127.0.0.1:0", Engine::new()).expect("bind ephemeral port");
    let addr = server.addr();

    // Register the shared tensors over one setup connection.
    let mut setup = Client::connect(addr).unwrap();
    for req in &data.requests {
        let resp = setup.request(req).unwrap();
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }

    let builds_before_hammer = plan_cache_stats().builds;
    assert_eq!(builds_before_hammer, 0, "registration must not build plans");

    // Hammer: every client prepares every kernel itself (32 concurrent
    // prepares per key → single-flight must collapse them to one build)
    // and then runs each 20 times, keeping every raw response line.
    let all_cases = Arc::new(cases());
    let mut workers = Vec::new();
    for client_id in 0..CLIENTS {
        let all_cases = Arc::clone(&all_cases);
        workers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut handles = Vec::new();
            for case in all_cases.iter() {
                let line = client.send_raw(&prepare_request(case).encode()).expect("prepare");
                match Response::decode(&line).expect("prepared reply decodes") {
                    Response::Prepared { kernel, splittable, .. } => {
                        if case.label == "ssyrk" {
                            assert!(splittable, "ssyrk must be row-splittable");
                        }
                        handles.push(kernel);
                    }
                    other => panic!("client {client_id}: prepare failed: {other:?}"),
                }
            }
            // Interleave kernels so concurrent traffic mixes plans.
            let mut lines: Vec<Vec<String>> = vec![Vec::new(); all_cases.len()];
            for round in 0..RUNS_PER_KERNEL {
                for (k, &handle) in handles.iter().enumerate() {
                    let req = Request::Run { kernel: handle, full: false, shard: None };
                    let line = client
                        .send_raw(&req.encode())
                        .unwrap_or_else(|e| panic!("client {client_id} round {round}: {e}"));
                    lines[k].push(line);
                }
            }
            (handles, lines)
        }));
    }
    let results: Vec<(Vec<u64>, Vec<Vec<String>>)> =
        workers.into_iter().map(|w| w.join().expect("client thread")).collect();

    // Byte-determinism: within a client, across clients, and against
    // the direct-execution oracle.
    for (k, case) in all_cases.iter().enumerate() {
        let expected = oracle_line(case, &data.local);
        let mut seen = 0usize;
        for (handles, lines) in &results {
            assert_eq!(handles.len(), all_cases.len());
            for line in &lines[k] {
                assert_eq!(
                    *line, expected,
                    "kernel {} must serve byte-identical oracle responses",
                    case.label
                );
                seen += 1;
            }
        }
        assert_eq!(seen, CLIENTS * RUNS_PER_KERNEL, "{}", case.label);
    }

    // Identical prepares dedupe to one handle per kernel across every
    // connection.
    let first_handles = &results[0].0;
    for (handles, _) in &results {
        assert_eq!(handles, first_handles, "handles must be shared across connections");
    }

    // Single-flight under real sockets: exactly one plan build per
    // distinct kernel key, even with 32 concurrent prepares per key —
    // and the oracle preparations above shared those plans (hits, not
    // builds).
    let stats = plan_cache_stats();
    assert_eq!(
        stats.builds,
        all_cases.len() as u64,
        "exactly one build per distinct kernel key (got {stats:?})"
    );
    assert_eq!(stats.evictions, 0, "five plans never evict from a 64-entry cache");

    // Server-side accounting is exact.
    let stats_resp = setup.request(&Request::Stats).unwrap();
    let Response::Stats { cache, requests, serve: srv, kernels, .. } = stats_resp else {
        panic!("stats failed: {stats_resp:?}")
    };
    assert_eq!(cache.builds, all_cases.len() as u64);
    assert_eq!(cache.evictions, 0);
    assert_eq!(requests.register_tensor, data.requests.len() as u64);
    assert_eq!(requests.prepare, (CLIENTS * all_cases.len()) as u64);
    assert_eq!(requests.run, (CLIENTS * RUNS_PER_KERNEL * all_cases.len()) as u64);
    assert_eq!(requests.errors, 0, "a clean workload answers no errors");

    // Every run traveled the coalescing scheduler, the queue drained,
    // and nothing expired, went stale, or was rejected. With 32 clients
    // keeping one request in flight each against 2 executors, at least
    // some dispatches must have carried more than one run.
    let total_runs = (CLIENTS * RUNS_PER_KERNEL * all_cases.len()) as u64;
    assert_eq!(srv.batched_runs, total_runs, "every run dispatches through the scheduler");
    assert!(
        srv.batch_dispatches >= 1 && srv.batch_dispatches < total_runs,
        "coalescing must collapse concurrent identical runs ({} dispatches for {} runs)",
        srv.batch_dispatches,
        total_runs
    );
    assert_eq!(srv.queued, 0, "queue drains once clients join");
    assert_eq!(srv.deadline_exceeded, 0);
    assert_eq!(srv.stale_runs, 0);
    assert_eq!(srv.rejected_conns, 0);
    assert_eq!(srv.rejected_bytes, 0);
    assert_eq!(srv.registry_tensors, data.requests.len() as u64);
    assert_eq!(srv.registry_evictions, 0, "no byte cap configured, nothing evicts");
    assert_eq!(srv.pinned, 4, "A, G, x, d each pinned at generation 0");
    assert_eq!(kernels.len(), all_cases.len(), "prepares dedupe to one handle per kernel");
    let total_runs: u64 = kernels.iter().map(|k| k.runs).sum();
    assert_eq!(total_runs, (CLIENTS * RUNS_PER_KERNEL * all_cases.len()) as u64);
    for k in &kernels {
        assert_eq!(k.runs, (CLIENTS * RUNS_PER_KERNEL) as u64, "{}", k.spec);
        assert!(k.median_us.is_some(), "{} has latency samples", k.spec);
        assert!(k.p90_us.is_some() && k.p99_us.is_some() && k.max_us.is_some(), "{}", k.spec);
    }

    // The Prometheus exposition over the same socket: required families
    // present, and — with all clients joined and the pool quiescent —
    // two consecutive scrapes of the idle server are byte-identical
    // (the metrics verb's own request count is excluded by design).
    let metrics_resp = setup.request(&Request::Metrics).unwrap();
    let Response::Metrics { text } = metrics_resp else {
        panic!("metrics failed: {metrics_resp:?}")
    };
    for family in [
        "systec_admission_rejects_total",
        "systec_compile_phase_ns_total",
        "systec_kernel_latency_ns_bucket",
        "systec_kernel_runs_total",
        "systec_plan_cache_builds_total",
        "systec_pool_submitted_total",
        "systec_registry_bytes",
        "systec_requests_total",
        "systec_serve_batch_dispatches_total",
        "systec_serve_batch_size_bucket",
        "systec_serve_queue_depth",
    ] {
        assert!(text.contains(family), "missing {family}");
    }
    assert!(
        text.contains(&format!(
            "systec_kernel_latency_ns_count{{kernel=\"0\"}} {}",
            CLIENTS * RUNS_PER_KERNEL
        )),
        "kernel 0 histogram must hold every pooled run"
    );
    let Response::Metrics { text: again } = setup.request(&Request::Metrics).unwrap() else {
        panic!("second metrics scrape failed")
    };
    assert_eq!(text, again, "idle scrapes must be byte-identical");

    // Clean shutdown over the wire.
    let resp = setup.request(&Request::Shutdown).unwrap();
    assert_eq!(resp, Response::ShuttingDown);
    server.wait();
}
