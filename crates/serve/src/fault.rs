//! Deterministic fault injection for the serve tier.
//!
//! A [`FaultPlan`] is a seeded schedule of failures wired into the
//! seams of the serving stack: the accept/read/write sweeps of the
//! event loop, the scheduler's dispatch path, the engine's kernel
//! execution, and the durability journal's write path. Production
//! servers carry no plan (`Engine::fault_plan()` returns `None`) and
//! every site costs a single `Option` load on that path; the chaos
//! test tier installs a plan and replays the *same* fault schedule on
//! every run — per-site decisions come from independent xorshift
//! streams stepped by atomic counters, so a site's n-th decision is a
//! pure function of `(seed, site, n)` regardless of how threads
//! interleave.
//!
//! Every injected fault is counted per site and exposed as
//! `systec_faults_injected_total{site="…"}` so a chaos run can assert
//! the faults it asked for actually fired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A seam where a [`FaultPlan`] can force a failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// Drop a just-accepted connection on the floor (simulated accept
    /// failure — the client sees an immediate disconnect).
    Accept,
    /// Treat a connection's read sweep as a hard socket error.
    ConnRead,
    /// Treat a connection's write sweep as a hard socket error.
    ConnWrite,
    /// Sleep inside the scheduler between the dequeue-time deadline
    /// check and dispatch (forces the pre-dispatch re-check to fire).
    DispatchDelay,
    /// Panic on the executor thread outside the engine's catch (tests
    /// the scheduler's own isolation).
    ExecutorPanic,
    /// Panic inside kernel execution (tests engine quarantine).
    ExecPanic,
    /// Sleep inside kernel execution (forced slow run).
    ExecDelay,
    /// Fail a durability journal append with an I/O error.
    JournalWrite,
}

/// All sites, in stable order. Index in this array is the site's
/// stream/counter slot and the order of `faults_injected` samples in
/// the metrics exposition.
pub const FAULT_SITES: [FaultSite; 8] = [
    FaultSite::Accept,
    FaultSite::ConnRead,
    FaultSite::ConnWrite,
    FaultSite::DispatchDelay,
    FaultSite::ExecutorPanic,
    FaultSite::ExecPanic,
    FaultSite::ExecDelay,
    FaultSite::JournalWrite,
];

impl FaultSite {
    /// Stable label used in metrics (`site="…"`).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Accept => "accept",
            FaultSite::ConnRead => "conn_read",
            FaultSite::ConnWrite => "conn_write",
            FaultSite::DispatchDelay => "dispatch_delay",
            FaultSite::ExecutorPanic => "executor_panic",
            FaultSite::ExecPanic => "exec_panic",
            FaultSite::ExecDelay => "exec_delay",
            FaultSite::JournalWrite => "journal_write",
        }
    }

    fn index(self) -> usize {
        FAULT_SITES.iter().position(|s| *s == self).expect("site listed")
    }
}

/// When a site fires.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Never fires (default for every site).
    Never,
    /// Fires exactly once, on the n-th arming check (1-based).
    Nth(u64),
    /// Fires pseudo-randomly with probability `per_million / 1_000_000`
    /// per check, from the site's own seeded stream.
    Rate(u64),
}

struct SiteState {
    mode: Mode,
    /// xorshift64 stream state; stepped only in `Rate` mode.
    rng: AtomicU64,
    /// Arming checks seen (drives `Nth`).
    checks: AtomicU64,
    /// Faults actually injected.
    injected: AtomicU64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn xorshift64(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

/// A seeded, deterministic schedule of injected faults.
pub struct FaultPlan {
    sites: [SiteState; FAULT_SITES.len()],
    delay: Duration,
}

impl FaultPlan {
    /// A plan with every site disarmed. Stream seeds derive from
    /// `seed`, so arming a `Rate` later still replays deterministically.
    pub fn seeded(seed: u64) -> FaultPlan {
        let sites = std::array::from_fn(|i| SiteState {
            mode: Mode::Never,
            // splitmix decorrelates the per-site streams even for
            // adjacent seeds; `| 1` keeps xorshift out of its zero
            // fixed point.
            rng: AtomicU64::new(splitmix64(seed ^ (i as u64)) | 1),
            checks: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
        FaultPlan { sites, delay: Duration::from_millis(20) }
    }

    /// Arm `site` to fire exactly once, on its `n`-th check (1-based).
    pub fn nth(mut self, site: FaultSite, n: u64) -> FaultPlan {
        self.sites[site.index()].mode = Mode::Nth(n.max(1));
        self
    }

    /// Arm `site` to fire with probability `per_million / 1_000_000`
    /// per check.
    pub fn rate(mut self, site: FaultSite, per_million: u64) -> FaultPlan {
        self.sites[site.index()].mode = Mode::Rate(per_million.min(1_000_000));
        self
    }

    /// How long delay-type sites (`ExecDelay`, `DispatchDelay`) sleep
    /// when they fire.
    pub fn delay_for(mut self, delay: Duration) -> FaultPlan {
        self.delay = delay;
        self
    }

    /// The sleep injected by delay-type sites.
    pub fn delay(&self) -> Duration {
        self.delay
    }

    /// Decide whether `site` fails right now. Steps the site's check
    /// counter (and, in `Rate` mode, its stream) and counts the
    /// injection when it fires.
    pub fn fire(&self, site: FaultSite) -> bool {
        let s = &self.sites[site.index()];
        let check = s.checks.fetch_add(1, Ordering::Relaxed) + 1;
        let hit = match s.mode {
            Mode::Never => false,
            Mode::Nth(n) => check == n,
            Mode::Rate(per_million) => {
                let stepped = s
                    .rng
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |x| Some(xorshift64(x)))
                    .map(xorshift64)
                    .unwrap_or(1);
                stepped % 1_000_000 < per_million
            }
        };
        if hit {
            s.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Faults injected so far at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].injected.load(Ordering::Relaxed)
    }

    /// Arming checks seen so far at `site`.
    pub fn checks(&self, site: FaultSite) -> u64 {
        self.sites[site.index()].checks.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("FaultPlan");
        for site in FAULT_SITES {
            let s = &self.sites[site.index()];
            d.field(site.name(), &(s.mode, s.injected.load(Ordering::Relaxed)));
        }
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        let plan = FaultPlan::seeded(7);
        for _ in 0..10_000 {
            assert!(!plan.fire(FaultSite::ExecPanic));
        }
        assert_eq!(plan.injected(FaultSite::ExecPanic), 0);
        assert_eq!(plan.checks(FaultSite::ExecPanic), 10_000);
    }

    #[test]
    fn nth_fires_exactly_once_at_the_requested_check() {
        let plan = FaultPlan::seeded(7).nth(FaultSite::JournalWrite, 3);
        let fired: Vec<bool> = (0..6).map(|_| plan.fire(FaultSite::JournalWrite)).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(plan.injected(FaultSite::JournalWrite), 1);
    }

    #[test]
    fn rate_streams_are_deterministic_and_per_site_independent() {
        let a = FaultPlan::seeded(42).rate(FaultSite::ConnRead, 100_000);
        let b = FaultPlan::seeded(42)
            .rate(FaultSite::ConnRead, 100_000)
            .rate(FaultSite::ConnWrite, 500_000);
        // Interleave unrelated-site checks on `b`: ConnRead's decisions
        // must match `a` check-for-check anyway.
        let mut seq_a = Vec::new();
        let mut seq_b = Vec::new();
        for i in 0..4_000 {
            seq_a.push(a.fire(FaultSite::ConnRead));
            if i % 3 == 0 {
                b.fire(FaultSite::ConnWrite);
            }
            seq_b.push(b.fire(FaultSite::ConnRead));
        }
        assert_eq!(seq_a, seq_b);
        let hits = plan_hits(&a, FaultSite::ConnRead);
        // ~10% of 4000 checks; wide bounds, but zero or all would mean
        // the stream is broken.
        assert!(hits > 100 && hits < 1_000, "{hits} hits");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).rate(FaultSite::ExecPanic, 300_000);
        let b = FaultPlan::seeded(2).rate(FaultSite::ExecPanic, 300_000);
        let sa: Vec<bool> = (0..256).map(|_| a.fire(FaultSite::ExecPanic)).collect();
        let sb: Vec<bool> = (0..256).map(|_| b.fire(FaultSite::ExecPanic)).collect();
        assert_ne!(sa, sb);
    }

    fn plan_hits(plan: &FaultPlan, site: FaultSite) -> u64 {
        plan.injected(site)
    }
}
