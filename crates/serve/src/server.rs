//! The TCP transport: a long-lived listener speaking the line protocol.
//!
//! One handler thread per connection (requests on a connection are
//! processed in order; connections are independent), all sharing one
//! [`Engine`]. A request that fails to parse gets an error response and
//! the connection **stays open** — fault isolation between connections
//! is a test tier (`tests/fault_isolation.rs`).
//!
//! ## Shutdown
//!
//! A `shutdown` request (or [`RunningServer::shutdown`]) flips the flag,
//! wakes the accept loop with a loopback connection, and shuts down
//! every live client socket, which unblocks the handler threads;
//! [`RunningServer::wait`]/[`RunningServer::join`] then join every
//! thread — no worker leaks (asserted by the fault tier via
//! [`RunningServer::active_connections`]).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::Engine;
use crate::protocol::{ErrorCode, Request, Response};
use crate::relock;

/// Upper bound on one request line. Large enough for a multi-megabyte
/// tensor registration, small enough that a client streaming bytes
/// without a newline cannot grow server memory without bound — past
/// the cap the connection gets an error response and is closed (its
/// request framing is lost, so resynchronization is impossible).
pub const MAX_REQUEST_LINE: usize = 64 * 1024 * 1024;

struct Shared {
    engine: Arc<Engine>,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// Live client sockets by connection id, shut down to unblock their
    /// handlers when the server stops.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    active: AtomicUsize,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Wake the accept loop; it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock every handler parked in a read. Connections racing
        // with this sweep re-check the flag after registering
        // themselves (see `accept_loop`), so none slips through.
        let conns = relock(&self.conns);
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A serving instance bound to an address, accepting in a background
/// thread. Dropping without [`RunningServer::join`] leaves the threads
/// running (they exit on shutdown); tests should `join`.
pub struct RunningServer {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// accepting connections against `engine`.
///
/// # Errors
///
/// Propagates socket errors from binding.
pub fn serve(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<RunningServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: Arc::new(engine),
        addr,
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        handlers: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("systec-serve-accept".into())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(RunningServer { shared, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (fd exhaustion) must not
                // busy-spin a core; back off briefly and retry.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection, or a late client
        }
        // A tracked clone is mandatory: it is what trigger_shutdown
        // severs to unblock the handler, so an untrackable connection
        // is dropped rather than served unstoppably.
        let Ok(tracked) = stream.try_clone() else {
            continue;
        };
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        relock(&shared.conns).insert(id, tracked);
        // Re-check AFTER registering: a shutdown between the flag check
        // above and the insert has already swept `conns` without seeing
        // this connection, so sever it ourselves instead of leaving a
        // handler parked in a read forever (wait() would never join it).
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            relock(&shared.conns).remove(&id);
            return;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned =
            std::thread::Builder::new().name(format!("systec-serve-conn-{id}")).spawn(move || {
                handle_connection(stream, id, &conn_shared);
                relock(&conn_shared.conns).remove(&id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                let mut handlers = relock(&shared.handlers);
                // Reap finished handlers so a long-lived server does not
                // accumulate joinable thread handles forever.
                let mut k = 0;
                while k < handlers.len() {
                    if handlers[k].is_finished() {
                        let _ = handlers.swap_remove(k).join();
                    } else {
                        k += 1;
                    }
                }
                handlers.push(handle);
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                relock(&shared.conns).remove(&id);
            }
        }
    }
}

/// Outcome of reading one request line with a size cap.
enum LineRead {
    /// A complete line (terminator stripped is up to the caller).
    Line,
    /// EOF / disconnect / severed socket.
    Closed,
    /// The line exceeded [`MAX_REQUEST_LINE`] before a newline arrived.
    TooLong,
}

/// Like `read_line`, but gives up once the line exceeds the cap —
/// otherwise one client streaming newline-free bytes would grow server
/// memory without bound.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, line: &mut String) -> LineRead {
    line.clear();
    let mut buf = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if buf.is_empty() { LineRead::Closed } else { finish(buf, line) };
            }
            Ok(chunk) => chunk,
            Err(_) => return LineRead::Closed,
        };
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let take = nl + 1;
                if buf.len() + take > MAX_REQUEST_LINE {
                    reader.consume(take);
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                return finish(buf, line);
            }
            None => {
                let take = chunk.len();
                if buf.len() + take > MAX_REQUEST_LINE {
                    reader.consume(take);
                    return LineRead::TooLong;
                }
                buf.extend_from_slice(chunk);
                reader.consume(take);
            }
        }
    }
}

fn finish(buf: Vec<u8>, line: &mut String) -> LineRead {
    match String::from_utf8(buf) {
        Ok(s) => {
            *line = s;
            LineRead::Line
        }
        // Non-UTF-8 bytes become a line that fails request parsing (a
        // structured error, not a dropped connection).
        Err(e) => {
            *line = String::from_utf8_lossy(e.as_bytes()).into_owned();
            LineRead::Line
        }
    }
}

fn handle_connection(stream: TcpStream, _id: u64, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match read_bounded_line(&mut reader, &mut line) {
            LineRead::Closed => return, // EOF, disconnect, or shutdown
            LineRead::TooLong => {
                // The connection's framing is unrecoverable mid-line;
                // answer once and hang up.
                shared.engine.count_error();
                let _ = write_response(
                    &mut writer,
                    &Response::error(
                        ErrorCode::Parse,
                        format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                    ),
                );
                return;
            }
            LineRead::Line => {}
        }
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue; // blank keep-alive lines are not requests
        }
        let response = match Request::decode(trimmed) {
            Ok(Request::Shutdown) => {
                // Acknowledge, then stop the whole server.
                let _ = write_response(&mut writer, &Response::ShuttingDown);
                shared.trigger_shutdown();
                return;
            }
            Ok(request) => shared.engine.handle(&request),
            Err(e) => {
                shared.engine.count_error();
                Response::error(ErrorCode::Parse, e.message)
            }
        };
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut encoded = response.encode();
    encoded.push('\n');
    writer.write_all(encoded.as_bytes())?;
    writer.flush()
}

impl RunningServer {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared engine (tests inspect pools and drive it directly).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Initiates shutdown (idempotent): stops accepting, unblocks every
    /// handler. Does not wait — see [`RunningServer::wait`].
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until the server has shut down (a client sent `shutdown`,
    /// or [`RunningServer::shutdown`] was called) and every thread has
    /// been joined.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers: Vec<JoinHandle<()>> = std::mem::take(&mut *relock(&self.shared.handlers));
        for handle in handlers {
            let _ = handle.join();
        }
    }

    /// [`RunningServer::shutdown`] + [`RunningServer::wait`].
    pub fn join(self) {
        self.shutdown();
        self.wait();
    }
}
