//! The TCP transport: a nonblocking event loop speaking the line
//! protocol.
//!
//! One loop thread owns the listener and every connection (std sockets
//! in nonblocking mode, parked on the vendored [`polling`] shim), and a
//! small executor pool ([`crate::scheduler`]) runs the engine work. The
//! loop reads request lines, submits them to the scheduler tagged with
//! a connection id, and writes completed response lines back; at most
//! **one request per connection is in flight at a time**, so responses
//! on a connection always come back in request order, while `run`
//! requests from *different* connections hitting the same prepared
//! kernel coalesce into one engine dispatch.
//!
//! ## Admission control
//!
//! First-class engine-side backpressure, all structurally reported:
//!
//! * `max_conns` — a connection over the cap receives one
//!   `admission_rejected` error line and is closed;
//! * `max_registered_bytes` (an [`Engine`] builder) — an over-cap
//!   `register_tensor` is refused with `admission_rejected` after LRU
//!   eviction of unpinned tensors fails to make room;
//! * `deadline` — a request that waits in queue past the per-request
//!   deadline is answered `deadline_exceeded` instead of dispatched;
//! * an over-long request line gets a `line_too_long` error reply which
//!   is fully flushed before the connection closes — never a silent
//!   mid-stream drop (its framing is lost, so it cannot resynchronize).
//!
//! A request that fails to parse gets an error response and the
//! connection **stays open** — fault isolation between connections is a
//! test tier (`tests/fault_isolation.rs`).
//!
//! ## Shutdown and drain
//!
//! Both shutdown paths — a client's `shutdown` request and
//! [`RunningServer::shutdown`] — first **drain**: the loop stops
//! accepting connections and stops consuming new request lines, but
//! keeps delivering scheduler completions and flushing queued response
//! bytes until no request is in flight and every output queue is
//! empty, bounded by [`ServerConfig::drain_timeout`]. Only then are the
//! remaining connections severed and (when the registry is durable)
//! the journal flushed. A request answered before the drain deadline is
//! therefore never lost to shutdown. Afterward
//! [`RunningServer::wait`]/[`RunningServer::join`] join the loop thread
//! and the scheduler executors — no thread leaks (asserted by the
//! fault tier via [`RunningServer::active_connections`]).

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::fault::FaultSite;
use crate::protocol::{ErrorCode, Request, Response};
use crate::relock;
use crate::scheduler::Scheduler;

/// Upper bound on one request line. Large enough for a multi-megabyte
/// tensor registration, small enough that a client streaming bytes
/// without a newline cannot grow server memory without bound — past
/// the cap the connection gets a structured `line_too_long` error
/// response, which is drained to the socket before the connection is
/// closed (its request framing is lost, so resynchronization is
/// impossible).
pub const MAX_REQUEST_LINE: usize = 64 * 1024 * 1024;

/// Shortest idle park between event-loop sweeps; doubles per idle
/// sweep up to [`PARK_MAX`], and any progress (or a scheduler
/// completion's wakeup) resets it.
const PARK_MIN: Duration = Duration::from_micros(50);
/// Longest idle park — bounds worst-case latency for newly arrived
/// bytes, since the poll shim cannot observe socket readiness itself.
const PARK_MAX: Duration = Duration::from_millis(2);

/// Transport tuning for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission cap on concurrently served connections; a connection
    /// over the cap is refused with one `admission_rejected` line.
    /// `None` (the default) accepts without bound.
    pub max_conns: Option<usize>,
    /// Most `run` requests coalesced into one engine dispatch.
    pub max_batch: usize,
    /// Scheduler executor threads.
    pub executors: usize,
    /// Per-request queueing deadline; a request waiting longer is
    /// answered `deadline_exceeded` instead of dispatched. `None` (the
    /// default) never expires requests.
    pub deadline: Option<Duration>,
    /// Bound on the graceful drain: after shutdown is requested,
    /// in-flight requests get this long to complete and flush before
    /// the remaining connections are severed.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: None,
            max_batch: 32,
            executors: 2,
            deadline: None,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

struct Shared {
    engine: Arc<Engine>,
    addr: SocketAddr,
    /// Programmatic shutdown flag ([`RunningServer::shutdown`]).
    shutdown: AtomicBool,
    /// Connections currently owned by the event loop.
    active: AtomicUsize,
    /// Parks the event loop between sweeps; completions and shutdown
    /// notify it.
    poller: polling::Poller,
    /// Completed `(conn, line)` pairs from the scheduler executors,
    /// drained by the loop each sweep.
    completions: Mutex<Vec<(u64, Arc<String>)>>,
}

/// A serving instance bound to an address, running its event loop in a
/// background thread. Dropping without [`RunningServer::join`] leaves
/// the threads running (they exit on shutdown); tests should `join`.
pub struct RunningServer {
    shared: Arc<Shared>,
    event_loop: Option<JoinHandle<()>>,
}

/// Binds `addr` with default [`ServerConfig`] — see [`serve_with`].
///
/// # Errors
///
/// Propagates socket errors from binding.
pub fn serve(addr: impl ToSocketAddrs, engine: Engine) -> std::io::Result<RunningServer> {
    serve_with(addr, engine, ServerConfig::default())
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// the event loop and scheduler against `engine`.
///
/// # Errors
///
/// Propagates socket errors from binding.
pub fn serve_with(
    addr: impl ToSocketAddrs,
    engine: Engine,
    config: ServerConfig,
) -> std::io::Result<RunningServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        engine: Arc::new(engine),
        addr,
        shutdown: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        poller: polling::Poller::new(),
        completions: Mutex::new(Vec::new()),
    });
    let sink_shared = Arc::clone(&shared);
    let scheduler = Scheduler::new(
        Arc::clone(&shared.engine),
        config.executors,
        config.max_batch,
        config.deadline,
        Arc::new(move |conn, line| {
            relock(&sink_shared.completions).push((conn, line));
            sink_shared.poller.notify();
        }),
    );
    let loop_shared = Arc::clone(&shared);
    let event_loop = std::thread::Builder::new()
        .name("systec-serve-loop".into())
        .spawn(move || event_loop(&listener, &loop_shared, &config, &scheduler))?;
    Ok(RunningServer { shared, event_loop: Some(event_loop) })
}

/// One complete input unit extracted from a connection's byte stream.
enum InEvent {
    /// A newline-terminated (or EOF-terminated) request line.
    Line(String),
    /// The stream exceeded [`MAX_REQUEST_LINE`] without a newline.
    TooLong,
}

/// A queued outgoing line; the terminating newline is written when
/// `written` passes the line length.
struct OutMsg {
    line: Arc<String>,
    written: usize,
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet split into lines.
    buf: Vec<u8>,
    /// Prefix of `buf` already scanned and known newline-free; keeps
    /// line-splitting linear when one line spans many read sweeps.
    scanned: usize,
    /// Complete input units awaiting processing.
    pending: VecDeque<InEvent>,
    /// Outgoing response lines, written in order.
    out: VecDeque<OutMsg>,
    /// A request was submitted to the scheduler and its response has
    /// not yet come back — per-connection ordering gate.
    in_flight: bool,
    /// Close once `out` drains; no further input is processed.
    closing: bool,
    /// Input after an over-long line is discarded (framing is lost).
    discarding: bool,
    /// The peer finished sending (EOF seen).
    eof: bool,
    /// Hard socket error; drop without further IO.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            scanned: 0,
            pending: VecDeque::new(),
            out: VecDeque::new(),
            in_flight: false,
            closing: false,
            discarding: false,
            eof: false,
            dead: false,
        }
    }

    /// Nonblocking read sweep: drains the socket into `buf` and splits
    /// complete lines into `pending`. Returns whether bytes arrived.
    fn read_input(&mut self, scratch: &mut [u8]) -> bool {
        if self.eof || self.dead {
            return false;
        }
        let mut progress = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.eof = true;
                    // A trailing unterminated line still parses: EOF is
                    // its terminator (a structured parse error beats a
                    // silent drop).
                    if !self.buf.is_empty() && !self.discarding {
                        let line = std::mem::take(&mut self.buf);
                        self.pending.push_back(InEvent::Line(lossy(line)));
                        progress = true;
                    }
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.ingest(&scratch[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    fn ingest(&mut self, bytes: &[u8]) {
        if self.discarding {
            return;
        }
        self.buf.extend_from_slice(bytes);
        loop {
            // Scan only bytes no earlier sweep has covered: a cap-sized
            // newline-free flood arrives in socket-buffer-sized reads,
            // and rescanning from the front each read is quadratic.
            let fresh = self.buf[self.scanned..].iter().position(|&b| b == b'\n');
            match fresh.map(|p| self.scanned + p) {
                Some(nl) if nl > MAX_REQUEST_LINE => break self.give_up_on_framing(),
                Some(nl) => {
                    let line: Vec<u8> = self.buf.drain(..=nl).collect();
                    self.scanned = 0;
                    self.pending.push_back(InEvent::Line(lossy(line)));
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.buf.len() > MAX_REQUEST_LINE {
                        self.give_up_on_framing();
                    }
                    break;
                }
            }
        }
    }

    /// The line cap was breached: drop the buffered bytes, discard all
    /// further input, and queue the structural `TooLong` event.
    fn give_up_on_framing(&mut self) {
        self.buf = Vec::new();
        self.scanned = 0;
        self.discarding = true;
        self.pending.push_back(InEvent::TooLong);
    }

    fn push_line(&mut self, line: Arc<String>) {
        self.out.push_back(OutMsg { line, written: 0 });
    }

    /// Nonblocking write sweep over the outgoing queue. Returns whether
    /// bytes were written.
    fn write_output(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut progress = false;
        while let Some(front) = self.out.front_mut() {
            let bytes = front.line.as_bytes();
            let chunk: &[u8] =
                if front.written < bytes.len() { &bytes[front.written..] } else { b"\n" };
            match self.stream.write(chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progress = true;
                    front.written += n;
                    if front.written > bytes.len() {
                        self.out.pop_front();
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progress
    }

    /// Nothing left to do for this connection: closed by error, or all
    /// input consumed and all output delivered after EOF/closing.
    fn done(&self) -> bool {
        self.dead
            || (!self.in_flight
                && self.pending.is_empty()
                && self.out.is_empty()
                && (self.eof || self.closing))
    }
}

fn lossy(bytes: Vec<u8>) -> String {
    match String::from_utf8(bytes) {
        Ok(s) => s,
        // Non-UTF-8 bytes become a line that fails request parsing (a
        // structured error, not a dropped connection).
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}

fn event_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    config: &ServerConfig,
    scheduler: &Scheduler,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut events: Vec<polling::Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut park = PARK_MIN;
    let faults = shared.engine.fault_plan().cloned();
    // Set when shutdown was requested (by verb or programmatically):
    // the drain deadline. While draining, no new connections are
    // accepted and no new request lines consumed, but completions keep
    // flowing out until everything in flight is answered and flushed.
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + config.drain_timeout);
        }
        let draining = drain_deadline.is_some();
        let mut progress = false;

        // 1. Deliver scheduler completions to their connections.
        let completed: Vec<(u64, Arc<String>)> = std::mem::take(&mut *relock(&shared.completions));
        for (conn_id, line) in completed {
            progress = true;
            if let Some(conn) = conns.get_mut(&conn_id) {
                conn.in_flight = false;
                conn.push_line(line);
            }
            // A completion for a connection that died in the meantime
            // is dropped; its work was already accounted.
        }

        // 2. Accept sweep, with connection admission.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    if draining {
                        continue; // shutting down: late connections drop
                    }
                    if faults.as_ref().is_some_and(|p| p.fire(FaultSite::Accept)) {
                        continue; // injected accept failure: drop the socket
                    }
                    if config.max_conns.is_some_and(|cap| conns.len() >= cap) {
                        reject_connection(shared, stream, conns.len());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = next_id;
                    next_id += 1;
                    // Tokens are bookkeeping for the poll shim's source
                    // set; the sweep below visits every connection and
                    // treats `WouldBlock` as not-ready.
                    shared.poller.register(token(id));
                    conns.insert(id, Conn::new(stream));
                    shared.active.store(conns.len(), Ordering::SeqCst);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept failure; retry next sweep
            }
        }

        // 3. Per-connection IO and request processing. A draining loop
        // stops consuming input — completions and writes only.
        let mut finished: Vec<u64> = Vec::new();
        for (&id, conn) in &mut conns {
            if !draining {
                let read = conn.read_input(&mut scratch);
                // An injected read fault severs the connection exactly
                // as a peer reset would — the isolation the chaos tier
                // asserts is that *other* connections never notice. It
                // fires only on sweeps that actually carried bytes, so
                // the Nth injection is the Nth data-bearing read.
                if read && faults.as_ref().is_some_and(|p| p.fire(FaultSite::ConnRead)) {
                    conn.dead = true;
                    conn.pending.clear();
                }
                progress |= read;
            }
            while !draining && !conn.in_flight && !conn.closing {
                let Some(event) = conn.pending.pop_front() else { break };
                progress = true;
                match event {
                    InEvent::TooLong => {
                        shared.engine.count_error();
                        conn.push_line(Arc::new(
                            Response::error(
                                ErrorCode::LineTooLong,
                                format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                            )
                            .encode(),
                        ));
                        // The reply drains below; then the conn closes.
                        conn.closing = true;
                    }
                    InEvent::Line(text) => {
                        let trimmed = text.trim_end_matches(['\n', '\r']);
                        if trimmed.is_empty() {
                            continue; // blank keep-alive lines are not requests
                        }
                        match Request::decode(trimmed) {
                            Ok(Request::Shutdown) => {
                                // Acknowledge, then enter the drain: the
                                // ack and every in-flight response flush
                                // before the loop exits.
                                conn.push_line(Arc::new(Response::ShuttingDown.encode()));
                                conn.closing = true;
                                shared.shutdown.store(true, Ordering::SeqCst);
                            }
                            Ok(request) => {
                                conn.in_flight = true;
                                scheduler.submit(id, request);
                            }
                            Err(e) => {
                                // Parse errors answer inline — they never
                                // reach the scheduler, and ordering holds
                                // because nothing from this connection is
                                // in flight here.
                                shared.engine.count_error();
                                conn.push_line(Arc::new(
                                    Response::error(ErrorCode::Parse, e.message).encode(),
                                ));
                            }
                        }
                    }
                }
            }
            // An injected write fault severs the connection before its
            // queued bytes go out, as a peer reset mid-response would.
            if !conn.dead
                && !conn.out.is_empty()
                && faults.as_ref().is_some_and(|p| p.fire(FaultSite::ConnWrite))
            {
                conn.dead = true;
            }
            progress |= conn.write_output();
            if conn.done() {
                finished.push(id);
            }
        }
        for id in finished {
            progress = true;
            conns.remove(&id);
            shared.poller.deregister(token(id));
        }
        shared.active.store(conns.len(), Ordering::SeqCst);

        // 4. The drain completes once every in-flight request has been
        // answered and every queued response byte flushed — or the
        // deadline passes and the stragglers are severed.
        if let Some(deadline) = drain_deadline {
            let quiesced = conns.values().all(|c| c.dead || (!c.in_flight && c.out.is_empty()));
            if quiesced || Instant::now() >= deadline {
                break;
            }
        }

        if progress {
            park = PARK_MIN;
            continue;
        }
        // The shim cannot observe socket readiness, so idle sweeps park
        // briefly and back off; completions and shutdown cut the park
        // short via `notify`.
        shared.poller.wait(&mut events, Some(park));
        park = park.saturating_mul(2).min(PARK_MAX);
    }
    // Sever everything; dropping the streams closes them, and the
    // scheduler (dropped by the caller) drains and joins its executors.
    for id in conns.keys() {
        shared.poller.deregister(token(*id));
    }
    conns.clear();
    shared.active.store(0, Ordering::SeqCst);
    // The drain is over: make the durable registry state current on
    // disk before the process counts as stopped.
    shared.engine.flush_journal();
}

/// The poll-shim token for a connection id (token 0 is reserved for
/// the listener by convention).
fn token(conn: u64) -> usize {
    usize::try_from(conn).unwrap_or(usize::MAX).saturating_add(1)
}

/// Answers an over-cap connection with one structured error line and
/// closes it. The write is best-effort and nonblocking — a fresh
/// socket's send buffer always holds one short line.
fn reject_connection(shared: &Arc<Shared>, stream: TcpStream, live: usize) {
    shared.engine.serve_metrics().admission_rejected_conns.inc_always();
    shared.engine.count_error();
    let mut line = Response::error(
        ErrorCode::AdmissionRejected,
        format!("connection limit reached ({live} active); retry later"),
    )
    .encode();
    line.push('\n');
    let mut stream = stream;
    let _ = stream.write_all(line.as_bytes());
}

impl RunningServer {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared engine (tests inspect pools and drive it directly).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Connections currently owned by the event loop.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Initiates shutdown (idempotent): the event loop exits its next
    /// sweep, severing every connection. Does not wait — see
    /// [`RunningServer::wait`].
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.poller.notify();
    }

    /// Blocks until the server has shut down (a client sent `shutdown`,
    /// or [`RunningServer::shutdown`] was called) and the event loop
    /// and scheduler executors have been joined.
    pub fn wait(mut self) {
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
    }

    /// [`RunningServer::shutdown`] + [`RunningServer::wait`].
    pub fn join(self) {
        self.shutdown();
        self.wait();
    }
}
