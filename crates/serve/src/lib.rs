//! # systec-serve
//!
//! A long-lived einsum server over the shared plan cache — the serving
//! layer of the ROADMAP's millions-of-users story. SySTeC's payoff is
//! cheap reuse: the symmetry-aware compile is expensive once, then
//! amortized across many executions. This crate turns that into a
//! service: a TCP server (std `TcpListener`, no network dependencies)
//! speaking a line-delimited JSON protocol, where
//!
//! * tensors are **registered once** into an in-process registry,
//! * kernels are **prepared once** — N connections preparing the same
//!   (einsum, symmetry, formats, dims) key trigger exactly **one**
//!   single-flight plan build in the process-wide cache, and
//! * executions run on **pooled per-worker state** (warmed
//!   [`systec_codegen::ExecContext`]s + per-kernel output slots), so the
//!   steady-state execution path allocates **nothing** per request.
//!
//! ## Protocol
//!
//! See [`protocol`] for the verb table. A quick exchange:
//!
//! ```text
//! > {"op":"register_tensor","name":"A","dims":[4,4],"coo":[[0,1,2.0],[1,0,2.0]]}
//! < {"ok":true,"reply":"registered","name":"A","nnz":2,"generation":0}
//! > {"op":"prepare","einsum":"for i, j: y[i] += A[i, j] * x[j]","sym":["A"]}
//! < {"ok":true,"reply":"prepared","kernel":0,"splittable":true}
//! > {"op":"run","kernel":0}
//! < {"ok":true,"reply":"run","outputs":{...},"counters":{...}}
//! ```
//!
//! ## Example (in-process)
//!
//! ```
//! use systec_serve::{serve, Client, Engine};
//! use systec_serve::protocol::{Request, Response, StorageFormat, TensorPayload, Variant};
//!
//! let server = serve("127.0.0.1:0", Engine::new()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.request(&Request::Ping).unwrap();
//! assert_eq!(reply, Response::Pong);
//! client.request(&Request::Shutdown).unwrap();
//! server.wait();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod durability;
pub mod engine;
pub mod fault;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;

/// Recovers a mutex even when a panic elsewhere poisoned it: every
/// guarded structure in this crate stays consistent across panics
/// (pools of reusable state, connection bookkeeping), so poisoning must
/// not disable the server for the rest of the process.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use client::{Client, ClientError, RetryPolicy};
pub use engine::{oracle_response, Engine, EngineError, RunLease};
pub use fault::{FaultPlan, FaultSite};
pub use server::{serve, serve_with, RunningServer, ServerConfig};
