//! The serving engine: everything behind the protocol, independent of
//! the transport.
//!
//! An [`Engine`] owns the tensor registry, the kernel table, a shared
//! [`ContextPool`], and the request/latency metrics. The TCP layer
//! ([`crate::server`]) decodes request lines and calls
//! [`Engine::handle`]; tests drive the engine directly (the
//! counting-allocator tier calls [`Engine::execute`] to isolate the
//! execution path from response serialization).
//!
//! ## The zero-allocation run path
//!
//! Plans are compiled once (process-wide single-flight plan cache, see
//! `systec_kernels::Prepared`), and every kernel handle keeps a pool of
//! warmed [`RunSlot`]s — output tensors plus a `Counters` value sized on
//! first use. A `run` request checks out one slot and one pooled
//! [`ExecContext`], calls `run_timed_into`, and returns both on drop:
//! once as many slots/contexts exist as there are concurrent runners,
//! the steady-state execution path performs **zero** heap allocations
//! (`tests/serve_alloc_regression.rs`). Response serialization happens
//! after the lease is taken and is allowed to allocate.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

use crate::durability::{Durability, Record, Recovery, DEFAULT_SNAPSHOT_EVERY};
use crate::fault::{FaultPlan, FaultSite};
use crate::relock;

use systec_codegen::{ContextPool, MergeKind, Parallelism, PooledContext};
use systec_exec::{Counters, ExecError};
use systec_ir::{parse_einsum, AssignOp};
use systec_kernels::{parse_symmetry, plan_cache_stats, serial_fallback_note, Prepared};
use systec_telemetry::{self as telemetry, Histogram, Snapshot};
use systec_tensor::{csf, CooTensor, DenseTensor, SparseTensor, Tensor};

use crate::protocol::{
    CachePayload, CounterPayload, ErrorCode, KernelStatPayload, MergeRule, OutputPayload,
    PoolPayload, Request, RequestCountsPayload, Response, ServePayload, SlowRunPayload,
    StorageFormat, TensorPayload, Variant, Warning, WarningKind,
};

/// Runs slower than this are counted as slow and logged (overridable
/// via [`Engine::with_slow_threshold`]).
const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(10);

/// Capacity of the engine-wide slow-run log.
const SLOW_LOG_CAPACITY: usize = 32;

/// Consecutive panicking runs of one spec before `prepare` itself is
/// circuit-broken (overridable via [`Engine::with_panic_budget`]). A
/// successful run of the spec resets the count.
const DEFAULT_PANIC_BUDGET: u32 = 3;

/// A fixed-capacity ring of the most recent over-threshold runs. The
/// buffer is allocated once at engine construction, so appending on
/// the run path is a lock plus an index write — no allocation.
#[derive(Debug)]
struct SlowLog {
    entries: Vec<SlowRunPayload>,
    next: usize,
    recorded: u64,
}

impl SlowLog {
    fn new() -> SlowLog {
        SlowLog { entries: Vec::with_capacity(SLOW_LOG_CAPACITY), next: 0, recorded: 0 }
    }

    fn record(&mut self, entry: SlowRunPayload) {
        if self.entries.len() < SLOW_LOG_CAPACITY {
            self.entries.push(entry);
        } else {
            self.entries[self.next] = entry;
        }
        self.next = (self.next + 1) % SLOW_LOG_CAPACITY;
        self.recorded = self.recorded.saturating_add(1);
    }

    /// The retained entries, oldest first. The all-time `recorded`
    /// count is compared in u64 — casting it *down* to usize, as an
    /// earlier revision did, would wrap on 32-bit targets after 2^32
    /// slow runs and misreport a long-rotated ring as unrotated.
    fn snapshot(&self) -> Vec<SlowRunPayload> {
        if self.recorded <= self.entries.len() as u64 {
            self.entries.clone()
        } else {
            let mut out = Vec::with_capacity(self.entries.len());
            out.extend_from_slice(&self.entries[self.next..]);
            out.extend_from_slice(&self.entries[..self.next]);
            out
        }
    }
}

/// Reusable per-run state for one kernel: initialized outputs and a
/// counters value, both retaining capacity between runs.
#[derive(Debug, Default)]
struct RunSlot {
    outputs: HashMap<String, DenseTensor>,
    counters: Counters,
}

/// One prepared kernel handle.
struct KernelEntry {
    /// Human-readable spec (variant + einsum + symmetry + bindings).
    spec: String,
    /// Dedup identity: two `prepare` requests with this exact key share
    /// a handle.
    dedup: String,
    prepared: Prepared,
    slots: Mutex<Vec<RunSlot>>,
    /// Run latencies in nanoseconds: a fixed array of atomic buckets,
    /// so recording is wait-free and allocation-free.
    latency: Histogram,
    runs: AtomicU64,
    /// Runs that exceeded the engine's slow threshold.
    slow: AtomicU64,
    /// Registry pins: each bound input's registered name and the
    /// generation whose data this kernel cloned at prepare time.
    pinned: Vec<(String, u64)>,
    /// Registry epoch at which the pins were last verified fresh. A
    /// matching load lets the run path skip the registry entirely —
    /// the epoch only moves on (re-)registration.
    valid_epoch: AtomicU64,
    /// Set when a run of this handle panicked. A quarantined handle
    /// never executes again (`kernel_quarantined`), and the dedup
    /// searches skip it so re-`prepare` mints a fresh handle over the
    /// same spec.
    quarantined: AtomicBool,
    /// Consecutive panics of this handle's *spec* (shared across the
    /// handles a re-prepared spec mints): quarantine increments it, a
    /// successful run resets it, and `prepare` circuit-breaks the spec
    /// once it reaches the engine's panic budget.
    panic_count: Arc<AtomicU32>,
}

/// A completed execution, borrowing nothing: holds the kernel entry, the
/// checked-out slot and context, and returns the slot to its pools on
/// drop. Accessors expose the results for serialization.
pub struct RunLease {
    entry: Arc<KernelEntry>,
    slot: Option<RunSlot>,
    _ctx: PooledContext,
}

impl RunLease {
    /// The executed kernel's outputs (main program only, the paper's
    /// timed region).
    pub fn outputs(&self) -> &HashMap<String, DenseTensor> {
        &self.slot.as_ref().expect("present until drop").outputs
    }

    /// Exact work counters of this run.
    pub fn counters(&self) -> &Counters {
        &self.slot.as_ref().expect("present until drop").counters
    }
}

impl Drop for RunLease {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            relock(&self.entry.slots).push(slot);
        }
    }
}

/// Request counters (atomics; incremented per handled request).
#[derive(Debug, Default)]
struct RequestCounts {
    register_tensor: AtomicU64,
    unregister: AtomicU64,
    prepare: AtomicU64,
    run: AtomicU64,
    stats: AtomicU64,
    metrics: AtomicU64,
    ping: AtomicU64,
    errors: AtomicU64,
}

/// One registered tensor plus its lifecycle bookkeeping.
#[derive(Debug)]
struct TensorEntry {
    data: Tensor,
    /// 0 on first registration of the name, +1 per re-registration;
    /// survives unregister and eviction (see [`Registry::generations`]).
    generation: u64,
    /// Estimated payload size charged against the byte cap.
    bytes: u64,
    /// Logical clock of the last registration or prepare binding —
    /// the LRU eviction order.
    last_used: u64,
}

/// The tensor registry: live tensors, the per-name generation history,
/// and the pin refcounts held by prepared kernels.
#[derive(Debug, Default)]
struct Registry {
    tensors: HashMap<String, TensorEntry>,
    /// Highest generation ever assigned per name. Kept after eviction
    /// and unregister so a name can never be reborn at a generation a
    /// stale kernel still pins (the classic ABA).
    generations: HashMap<String, u64>,
    /// Refcounts of `(name, generation)` pins held by kernel entries;
    /// a tensor pinned at its current generation is never evicted.
    pins: HashMap<(String, u64), u64>,
    /// Total estimated bytes of live tensors.
    bytes: u64,
    /// LRU evictions performed to admit new registrations.
    evictions: u64,
    /// Logical clock driving `last_used`.
    clock: u64,
}

impl Registry {
    /// Marks `name` as just used (registration or prepare binding).
    fn touch(&mut self, name: &str) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.tensors.get_mut(name) {
            entry.last_used = clock;
        }
    }

    /// The least-recently-used live tensor that is not pinned at its
    /// current generation, excluding `keep` (the name being replaced —
    /// its bytes are already credited, so evicting it would
    /// double-count).
    fn lru_unpinned(&self, keep: &str) -> Option<String> {
        self.tensors
            .iter()
            .filter(|(name, e)| {
                name.as_str() != keep && !self.pins.contains_key(&((*name).clone(), e.generation))
            })
            .min_by_key(|(_, e)| e.last_used)
            .map(|(name, _)| name.clone())
    }

    /// Total bytes the LRU policy could free for a registration of
    /// `keep` (every live, unpinned tensor except `keep` itself).
    fn evictable_bytes(&self, keep: &str) -> u64 {
        self.tensors
            .iter()
            .filter(|(name, e)| {
                name.as_str() != keep && !self.pins.contains_key(&((*name).clone(), e.generation))
            })
            .map(|(_, e)| e.bytes)
            .sum()
    }
}

/// Estimated payload bytes of a registered tensor — the unit of the
/// `--max-bytes` admission cap. Dense values cost 8 bytes each; sparse
/// entries charge one value plus one coordinate per level.
fn tensor_bytes(tensor: &Tensor) -> u64 {
    match tensor {
        Tensor::Dense(d) => 8 * d.as_slice().len() as u64,
        Tensor::Sparse(s) => (8 + 8 * s.dims().len() as u64) * s.nnz() as u64,
    }
}

/// The dimensions of a stored tensor (for durable records).
fn tensor_dims(tensor: &Tensor) -> Vec<usize> {
    match tensor {
        Tensor::Dense(d) => d.dims().to_vec(),
        Tensor::Sparse(s) => s.dims().to_vec(),
    }
}

/// Serializes stored tensor data for a durable record: dense stays a
/// value list, sparse enumerates COO entries. The payload kind encodes
/// the storage, so replay rebuilds the same representation.
fn tensor_payload(tensor: &Tensor) -> TensorPayload {
    match tensor {
        Tensor::Dense(d) => TensorPayload::Dense(d.as_slice().to_vec()),
        Tensor::Sparse(s) => {
            let coo = s.to_coo();
            TensorPayload::Coo(coo.entries().map(|(c, v)| (c.to_vec(), v)).collect())
        }
    }
}

/// Rebuilds stored tensor data from a recovered record; `None` if the
/// record does not describe a valid tensor (skipped during replay —
/// the record passed its CRC, so this would indicate a writer bug, and
/// recovery must still never panic).
fn rebuild_tensor(dims: &[usize], payload: &TensorPayload) -> Option<Tensor> {
    match payload {
        TensorPayload::Dense(values) => {
            DenseTensor::from_vec(dims.to_vec(), values.clone()).ok().map(Tensor::Dense)
        }
        TensorPayload::Coo(entries) => {
            let mut coo = CooTensor::new(dims.to_vec());
            for (coords, v) in entries {
                coo.try_push(coords, *v).ok()?;
            }
            SparseTensor::from_coo(&coo, &csf(dims.len())).ok().map(Tensor::Sparse)
        }
    }
}

/// An engine-level failure, mapped onto a protocol error response.
#[derive(Debug)]
pub struct EngineError {
    /// Protocol error code.
    pub code: ErrorCode,
    /// Description.
    pub message: String,
}

impl EngineError {
    fn new(code: ErrorCode, message: impl Into<String>) -> EngineError {
        EngineError { code, message: message.into() }
    }
}

/// The protocol-independent serving core. Shared across connections
/// behind an `Arc`; all methods take `&self`.
pub struct Engine {
    registry: RwLock<Registry>,
    /// Bumped on every (re-)registration. Kernel entries cache the
    /// epoch at which their pins last verified fresh, so steady-state
    /// runs check freshness with two relaxed atomic loads and no lock.
    registry_epoch: AtomicU64,
    kernels: RwLock<Vec<Arc<KernelEntry>>>,
    contexts: ContextPool,
    counts: RequestCounts,
    /// Per-engine serving metrics (batching, admission, registry
    /// lifecycle); owned here so parallel tests never bleed into each
    /// other's scrapes.
    serve: telemetry::ServeMetrics,
    /// Admission cap on total estimated registered bytes (`None` =
    /// unlimited).
    max_registered_bytes: Option<u64>,
    default_parallelism: Parallelism,
    slow_threshold_ns: u64,
    slow_log: Mutex<SlowLog>,
    /// Optional durable registry (`--data-dir`): a write-ahead journal
    /// consulted *before* every registry mutation is applied.
    durability: Option<Mutex<Durability>>,
    /// Snapshot cadence handed to [`Durability`] at `with_data_dir`.
    snapshot_every: u64,
    /// Kernel handles quarantined so far (drives the gauge).
    quarantined_count: AtomicU64,
    /// Consecutive panicking runs per spec dedup key, shared with the
    /// spec's kernel entries. Bounds the quarantine → re-prepare →
    /// panic bounce: at `panic_budget` the spec is refused at `prepare`.
    panic_counts: Mutex<HashMap<String, Arc<AtomicU32>>>,
    /// Consecutive panics after which a spec is circuit-broken.
    panic_budget: u32,
    /// Optional deterministic fault schedule (chaos tests only).
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An empty engine; executions default to serial.
    pub fn new() -> Engine {
        Engine::with_parallelism(Parallelism::Serial)
    }

    /// An engine whose executions use `default_parallelism` unless a
    /// `prepare` request carries an explicit `threads` — `Some(1)`
    /// really does force serial execution (plans the compiler cannot
    /// split run serially either way).
    pub fn with_parallelism(default_parallelism: Parallelism) -> Engine {
        Engine {
            registry: RwLock::new(Registry::default()),
            registry_epoch: AtomicU64::new(0),
            kernels: RwLock::new(Vec::new()),
            contexts: ContextPool::new(),
            counts: RequestCounts::default(),
            serve: telemetry::ServeMetrics::new(),
            max_registered_bytes: None,
            default_parallelism,
            slow_threshold_ns: u64::try_from(DEFAULT_SLOW_THRESHOLD.as_nanos()).unwrap_or(u64::MAX),
            slow_log: Mutex::new(SlowLog::new()),
            durability: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            quarantined_count: AtomicU64::new(0),
            panic_counts: Mutex::new(HashMap::new()),
            panic_budget: DEFAULT_PANIC_BUDGET,
            fault_plan: None,
        }
    }

    /// Overrides the per-spec panic budget (default 3): once a spec's
    /// runs panic that many times without an intervening success, its
    /// `prepare` is refused with `kernel_quarantined` instead of
    /// minting yet another doomed handle.
    pub fn with_panic_budget(mut self, budget: u32) -> Engine {
        self.panic_budget = budget.max(1);
        self
    }

    /// Caps the total estimated bytes of registered tensors (admission
    /// control): a registration that cannot fit even after LRU-evicting
    /// every unpinned tensor is refused with `admission_rejected`, and
    /// nothing is evicted for a refused registration.
    pub fn with_max_registered_bytes(mut self, cap: u64) -> Engine {
        self.max_registered_bytes = Some(cap);
        self
    }

    /// Overrides the slow-run threshold (default 10 ms): runs at or
    /// above it bump the per-kernel `slow` count and enter the
    /// engine-wide slow log reported by `stats`.
    pub fn with_slow_threshold(mut self, threshold: Duration) -> Engine {
        self.slow_threshold_ns = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
        self
    }

    /// Overrides the journal→snapshot fold cadence (records between
    /// snapshots). Call before [`Engine::with_data_dir`].
    pub fn with_snapshot_every(mut self, records: u64) -> Engine {
        self.snapshot_every = records.max(1);
        self
    }

    /// Installs a deterministic fault schedule (chaos tests). Without a
    /// plan every injection site is a single `Option` load.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Engine {
        self.fault_plan = Some(plan);
        self
    }

    /// The installed fault schedule, if any — read by the scheduler and
    /// transport so one plan drives every seam.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// Makes the registry durable under `dir`: recovers the snapshot +
    /// journal written by a previous process (truncating any torn
    /// tail), then journals every subsequent mutation write-ahead.
    /// Generation counters are part of the records, so stale-pin
    /// semantics survive the restart.
    pub fn with_data_dir(mut self, dir: impl AsRef<Path>) -> io::Result<Engine> {
        let (durability, recovery) = Durability::open(dir.as_ref(), self.snapshot_every)?;
        self.apply_recovery(recovery);
        self.durability = Some(Mutex::new(durability));
        Ok(self)
    }

    /// Replays recovered records into the (still single-owner) registry.
    fn apply_recovery(&mut self, recovery: Recovery) {
        let mut replayed = 0u64;
        {
            let reg = self.registry.get_mut().unwrap_or_else(PoisonError::into_inner);
            for record in recovery.records {
                match record {
                    Record::Register { name, dims, generation, payload } => {
                        let Some(data) = rebuild_tensor(&dims, &payload) else { continue };
                        let bytes = tensor_bytes(&data);
                        let freed = reg.tensors.get(&name).map_or(0, |e| e.bytes);
                        reg.bytes = (reg.bytes - freed) + bytes;
                        let prior = reg.generations.get(&name).copied();
                        reg.generations
                            .insert(name.clone(), prior.map_or(generation, |g| g.max(generation)));
                        reg.clock += 1;
                        let last_used = reg.clock;
                        reg.tensors
                            .insert(name, TensorEntry { data, generation, bytes, last_used });
                    }
                    Record::Unregister { name } => {
                        if let Some(entry) = reg.tensors.remove(&name) {
                            reg.bytes -= entry.bytes;
                        }
                    }
                    Record::Generations { generations } => {
                        for (name, generation) in generations {
                            let prior = reg.generations.get(&name).copied();
                            reg.generations
                                .insert(name, prior.map_or(generation, |g| g.max(generation)));
                        }
                    }
                }
                replayed += 1;
            }
            self.serve.registry_bytes.set(reg.bytes);
            self.serve.registry_tensors.set(reg.tensors.len() as u64);
        }
        self.serve.recovery_replayed.add_always(replayed);
        self.serve.recovery_truncated.add_always(recovery.truncated);
    }

    /// Appends one record to the journal (write-ahead) and fsyncs it,
    /// honoring an injected `JournalWrite` fault. No-op without
    /// `--data-dir`.
    fn journal_append(&self, dur: &mut Durability, record: &Record) -> io::Result<()> {
        if let Some(plan) = &self.fault_plan {
            if plan.fire(FaultSite::JournalWrite) {
                return Err(io::Error::other("injected journal write failure"));
            }
        }
        let bytes = dur.append(record)?;
        self.serve.journal_records.inc_always();
        self.serve.journal_bytes.add_always(bytes);
        self.serve.journal_fsyncs.inc_always();
        Ok(())
    }

    /// Folds the journal into a snapshot when due. Snapshot failure is
    /// non-fatal: the journal remains the source of truth.
    fn maybe_snapshot(&self, dur: &mut Durability, reg: &Registry) {
        if !dur.wants_snapshot() {
            return;
        }
        let mut generations: Vec<(String, u64)> =
            reg.generations.iter().map(|(n, g)| (n.clone(), *g)).collect();
        generations.sort();
        let mut records = vec![Record::Generations { generations }];
        let mut names: Vec<&String> = reg.tensors.keys().collect();
        names.sort();
        for name in names {
            let entry = &reg.tensors[name];
            records.push(Record::Register {
                name: name.clone(),
                dims: tensor_dims(&entry.data),
                generation: entry.generation,
                payload: tensor_payload(&entry.data),
            });
        }
        if let Ok((bytes, fsyncs)) = dur.write_snapshot(&records) {
            self.serve.journal_bytes.add_always(bytes);
            self.serve.journal_fsyncs.add_always(fsyncs);
        }
    }

    /// Fsyncs the journal if one is open (graceful-drain hook; every
    /// append already syncs, so this is cheap).
    pub fn flush_journal(&self) {
        if let Some(dur) = &self.durability {
            if relock(dur).sync().is_ok() {
                self.serve.journal_fsyncs.inc_always();
            }
        }
    }

    /// Handles one request, returning the response to write back.
    /// `shutdown` is acknowledged here but acted on by the transport.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match request {
            // `placement` is a routing concern: a single worker stores
            // every tensor it is asked to, wherever a router would put it.
            Request::RegisterTensor { name, dims, payload, format, placement: _ } => {
                self.counts.register_tensor.fetch_add(1, Ordering::Relaxed);
                self.register(name, dims, payload, *format)
            }
            Request::Unregister { name } => {
                self.counts.unregister.fetch_add(1, Ordering::Relaxed);
                self.unregister(name)
            }
            Request::Prepare { einsum, sym, inputs, variant, threads, sharded } => {
                self.counts.prepare.fetch_add(1, Ordering::Relaxed);
                self.prepare(einsum, sym, inputs, *variant, *threads, *sharded)
            }
            Request::Run { kernel, full, shard } => {
                self.counts.run.fetch_add(1, Ordering::Relaxed);
                self.run_coalesced(*kernel, *full, *shard, 1)
            }
            Request::Stats => {
                self.counts.stats.fetch_add(1, Ordering::Relaxed);
                Ok(self.stats())
            }
            Request::Metrics => {
                self.counts.metrics.fetch_add(1, Ordering::Relaxed);
                Ok(Response::Metrics { text: self.metrics_text() })
            }
            Request::Ping => {
                self.counts.ping.fetch_add(1, Ordering::Relaxed);
                Ok(Response::Pong)
            }
            Request::Shutdown => Ok(Response::ShuttingDown),
        };
        result.unwrap_or_else(|e| {
            self.count_error();
            Response::error(e.code, e.message)
        })
    }

    /// Counts an error answered outside [`Engine::handle`] (the
    /// transport's parse failures), so `stats.requests.errors` covers
    /// every error response the server ever wrote.
    pub fn count_error(&self) {
        self.counts.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn register(
        &self,
        name: &str,
        dims: &[usize],
        payload: &TensorPayload,
        format: StorageFormat,
    ) -> Result<Response, EngineError> {
        if name.is_empty() {
            return Err(EngineError::new(ErrorCode::BadTensor, "tensor name must be non-empty"));
        }
        if dims.is_empty() || dims.contains(&0) {
            return Err(EngineError::new(
                ErrorCode::BadTensor,
                format!("dims must be non-empty and positive, got {dims:?}"),
            ));
        }
        let bad = |message: String| EngineError::new(ErrorCode::BadTensor, message);
        let coo = match payload {
            TensorPayload::Dense(values) => {
                let expect: usize = dims.iter().product();
                if values.len() != expect {
                    return Err(bad(format!(
                        "dense payload has {} values but dims {dims:?} need {expect}",
                        values.len()
                    )));
                }
                if !values.iter().all(|v| v.is_finite()) {
                    return Err(bad("tensor values must be finite".into()));
                }
                if format == StorageFormat::Dense || format == StorageFormat::Auto {
                    let dense = DenseTensor::from_vec(dims.to_vec(), values.clone())
                        .map_err(|e| bad(e.to_string()))?;
                    let nnz = values.len() as u64;
                    return self.insert_tensor(name, Tensor::Dense(dense), nnz);
                }
                let dense = DenseTensor::from_vec(dims.to_vec(), values.clone())
                    .map_err(|e| bad(e.to_string()))?;
                CooTensor::from_dense(&dense)
            }
            TensorPayload::Coo(entries) => {
                let mut coo = CooTensor::new(dims.to_vec());
                for (coords, v) in entries {
                    if !v.is_finite() {
                        return Err(bad("tensor values must be finite".into()));
                    }
                    coo.try_push(coords, *v).map_err(|e| bad(e.to_string()))?;
                }
                if format == StorageFormat::Dense {
                    let dense = coo.to_dense();
                    let nnz = dense.as_slice().len() as u64;
                    return self.insert_tensor(name, Tensor::Dense(dense), nnz);
                }
                coo
            }
        };
        let sparse = SparseTensor::from_coo(&coo, &csf(dims.len()))
            .map_err(|e| bad(format!("packing to CSF: {e}")))?;
        let nnz = sparse.nnz() as u64;
        self.insert_tensor(name, Tensor::Sparse(sparse), nnz)
    }

    /// Admits validated tensor data under `name`: charges its estimated
    /// bytes against the registry cap (LRU-evicting unpinned tensors to
    /// make room), assigns the next generation for the name, and
    /// publishes the new registry epoch so kernels pinning an older
    /// generation fail their next freshness check loudly.
    fn insert_tensor(&self, name: &str, data: Tensor, nnz: u64) -> Result<Response, EngineError> {
        let bytes = tensor_bytes(&data);
        let mut reg = self.registry.write().unwrap_or_else(PoisonError::into_inner);
        // A replacement frees the old entry's bytes before the cap
        // check, and the replaced name itself is never an LRU victim.
        let freed = reg.tensors.get(name).map_or(0, |e| e.bytes);
        // Victims are *staged* (removed but held aside) rather than
        // dropped: if the journal append below fails, they go back and
        // the refused registration has no side effects at all.
        let mut victims: Vec<(String, TensorEntry)> = Vec::new();
        if let Some(cap) = self.max_registered_bytes {
            let mut projected = (reg.bytes - freed).saturating_add(bytes);
            if projected > cap {
                // Decide feasibility up front so a refused registration
                // has no side effects — rejection must not evict.
                if projected.saturating_sub(reg.evictable_bytes(name)) > cap {
                    self.serve.admission_rejected_bytes.inc_always();
                    return Err(EngineError::new(
                        ErrorCode::AdmissionRejected,
                        format!(
                            "registering `{name}` ({bytes} bytes) would exceed the \
                             registered-bytes cap ({cap} bytes) even after evicting \
                             every unpinned tensor"
                        ),
                    ));
                }
                while projected > cap {
                    let victim = reg.lru_unpinned(name).expect("evictable bytes checked above");
                    let evicted = reg.tensors.remove(&victim).expect("victim is live");
                    reg.bytes -= evicted.bytes;
                    projected -= evicted.bytes;
                    victims.push((victim, evicted));
                }
            }
        }
        let generation = reg.generations.get(name).map_or(0, |g| g + 1);
        // Write-ahead: evictions and the registration hit the journal
        // (fsynced) before any of it becomes visible. A failed append
        // restores the staged victims and changes nothing.
        if let Some(dur) = &self.durability {
            let mut dur = relock(dur);
            let result = victims
                .iter()
                .try_for_each(|(victim, _)| {
                    self.journal_append(&mut dur, &Record::Unregister { name: victim.clone() })
                })
                .and_then(|()| {
                    self.journal_append(
                        &mut dur,
                        &Record::Register {
                            name: name.to_string(),
                            dims: tensor_dims(&data),
                            generation,
                            payload: tensor_payload(&data),
                        },
                    )
                });
            if let Err(e) = result {
                for (victim, entry) in victims {
                    reg.bytes += entry.bytes;
                    reg.tensors.insert(victim, entry);
                }
                return Err(EngineError::new(
                    ErrorCode::Internal,
                    format!("journal write failed, registration not applied: {e}"),
                ));
            }
        }
        for (_, _) in &victims {
            reg.evictions += 1;
            self.serve.registry_evictions.inc_always();
        }
        drop(victims);
        reg.generations.insert(name.to_string(), generation);
        reg.bytes = (reg.bytes - freed) + bytes;
        reg.clock += 1;
        let last_used = reg.clock;
        reg.tensors.insert(name.to_string(), TensorEntry { data, generation, bytes, last_used });
        self.serve.registry_bytes.set(reg.bytes);
        self.serve.registry_tensors.set(reg.tensors.len() as u64);
        // Fold the journal into a snapshot only after the mutation is
        // visible in `reg` — the snapshot replaces the journal, so it
        // must contain everything journaled so far.
        if let Some(dur) = &self.durability {
            self.maybe_snapshot(&mut relock(dur), &reg);
        }
        drop(reg);
        // Publish after the registry write: a run that observes the new
        // epoch re-verifies its pins under the registry lock and is
        // guaranteed to see the new generation there.
        self.registry_epoch.fetch_add(1, Ordering::Release);
        Ok(Response::Registered { name: name.to_string(), nnz, generation })
    }

    fn unregister(&self, name: &str) -> Result<Response, EngineError> {
        let mut reg = self.registry.write().unwrap_or_else(PoisonError::into_inner);
        // Write-ahead: journal the removal before applying it. A name
        // that was never registered journals nothing.
        if reg.tensors.contains_key(name) {
            if let Some(dur) = &self.durability {
                self.journal_append(
                    &mut relock(dur),
                    &Record::Unregister { name: name.to_string() },
                )
                .map_err(|e| {
                    EngineError::new(
                        ErrorCode::Internal,
                        format!("journal write failed, unregister not applied: {e}"),
                    )
                })?;
            }
        }
        let existed = match reg.tensors.remove(name) {
            Some(entry) => {
                reg.bytes -= entry.bytes;
                true
            }
            None => false,
        };
        self.serve.registry_bytes.set(reg.bytes);
        self.serve.registry_tensors.set(reg.tensors.len() as u64);
        if existed {
            if let Some(dur) = &self.durability {
                self.maybe_snapshot(&mut relock(dur), &reg);
            }
        }
        drop(reg);
        // `generations` is deliberately retained: a later re-register
        // still advances the name's generation, and kernels pinning the
        // removed data keep serving their own snapshot — removal
        // invalidates nothing, so the epoch does not move either.
        Ok(Response::Unregistered { name: name.to_string(), existed })
    }

    fn prepare(
        &self,
        einsum_text: &str,
        sym: &[String],
        input_map: &[(String, String)],
        variant: Variant,
        threads: Option<usize>,
        sharded: bool,
    ) -> Result<Response, EngineError> {
        let parse_span = telemetry::span(telemetry::Phase::Parse);
        let einsum = parse_einsum(einsum_text)
            .map_err(|e| EngineError::new(ErrorCode::InvalidKernel, e.to_string()))?;
        let symmetry = parse_symmetry(&einsum, sym)
            .map_err(|message| EngineError::new(ErrorCode::InvalidKernel, message))?;
        drop(parse_span);

        // Resolve einsum tensor names to registered data. Unmapped names
        // default to themselves.
        let mut bindings: Vec<(String, String)> = Vec::new();
        for access in einsum.rhs.accesses() {
            let tensor = access.tensor.name.clone();
            if bindings.iter().any(|(t, _)| *t == tensor) {
                continue;
            }
            let registered = input_map
                .iter()
                .find(|(t, _)| *t == tensor)
                .map_or_else(|| tensor.clone(), |(_, r)| r.clone());
            bindings.push((tensor, registered));
        }
        bindings.sort();
        // Snapshot the epoch BEFORE reading the bindings: if a
        // re-register lands in between, the cached epoch is already
        // behind and the first run re-verifies the pins (never the
        // reverse, which would let a stale pin ride a fresh epoch).
        let epoch_at_prepare = self.registry_epoch.load(Ordering::Acquire);
        let (inputs, pinned) = {
            let mut registry = self.registry.write().unwrap_or_else(PoisonError::into_inner);
            let mut inputs: HashMap<String, Tensor> = HashMap::new();
            let mut pinned: Vec<(String, u64)> = Vec::new();
            for (tensor, registered) in &bindings {
                let (data, generation) = match registry.tensors.get(registered) {
                    Some(entry) => (entry.data.clone(), entry.generation),
                    None => {
                        return Err(EngineError::new(
                            ErrorCode::UnknownTensor,
                            format!("tensor `{registered}` (for `{tensor}`) is not registered"),
                        ))
                    }
                };
                inputs.insert(tensor.clone(), data);
                if !pinned.iter().any(|(n, g)| n == registered && *g == generation) {
                    pinned.push((registered.clone(), generation));
                }
                registry.touch(registered);
            }
            (inputs, pinned)
        };

        // Canonical identity for handle dedup: the einsum re-rendered,
        // the declarations as sent, the bindings *and the generations
        // they resolved to* (so a prepare after a re-register mints a
        // fresh handle over the new data), the variant, threads.
        let variant_tag = match variant {
            Variant::Systec => "systec",
            Variant::Naive => "naive",
        };
        let dedup = format!(
            "{variant_tag}::{einsum}::sym={sym:?}::inputs={bindings:?}::gens={pinned:?}::threads={threads:?}"
        );
        // Circuit breaker on the quarantine → re-prepare bounce: a spec
        // whose runs panicked `panic_budget` consecutive times is refused
        // here, before compiling yet another doomed handle. The count is
        // shared with every handle the spec mints and resets on any
        // successful run.
        let panic_count = {
            let mut counts = relock(&self.panic_counts);
            Arc::clone(counts.entry(dedup.clone()).or_default())
        };
        let panics = panic_count.load(Ordering::Acquire);
        if panics >= self.panic_budget {
            return Err(EngineError::new(
                ErrorCode::KernelQuarantined,
                format!(
                    "this spec panicked on {panics} consecutive runs and is circuit-broken — \
                     re-register its data (or fix the spec) before preparing it again"
                ),
            ));
        }
        if let Some(found) = self.find_kernel(&dedup, sharded) {
            return Ok(found);
        }

        // Compile outside any engine lock: concurrent prepares of
        // different kernels must not serialize, and concurrent prepares
        // of the same kernel single-flight inside the plan cache.
        let prepared = match variant {
            Variant::Systec => Prepared::compile_einsum(&einsum, &symmetry, &inputs),
            Variant::Naive => Prepared::naive_einsum(&einsum, &inputs),
        }
        .map_err(|e| match e {
            ExecError::InvalidKernel { message } => {
                EngineError::new(ErrorCode::InvalidKernel, message)
            }
            other => EngineError::new(ErrorCode::InvalidKernel, other.to_string()),
        })?;
        let parallelism = threads.map_or(self.default_parallelism, Parallelism::threads);
        let prepared = prepared.with_parallelism(parallelism);
        let splittable = prepared.splittable();
        let warning = fallback_warning(parallelism, splittable);
        let entry = Arc::new(KernelEntry {
            spec: format!("{variant_tag}::{einsum}"),
            dedup,
            prepared,
            slots: Mutex::new(Vec::new()),
            latency: Histogram::new(),
            runs: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            pinned,
            valid_epoch: AtomicU64::new(epoch_at_prepare),
            quarantined: AtomicBool::new(false),
            panic_count,
        });

        let mut kernels = self.kernels.write().unwrap_or_else(PoisonError::into_inner);
        // Re-check under the write lock: a racing prepare of the same
        // spec may have inserted between our check and here. Quarantined
        // handles are invisible to dedup — re-preparing a panicked spec
        // must mint a fresh handle.
        if let Some(k) = kernels
            .iter()
            .position(|k| k.dedup == entry.dedup && !k.quarantined.load(Ordering::Acquire))
        {
            let existing = &kernels[k];
            return Ok(Response::Prepared {
                kernel: k as u64,
                splittable: existing.prepared.splittable(),
                split: sharded.then(|| split_payload(&existing.prepared)).flatten(),
                warning: warning.clone(),
            });
        }
        kernels.push(Arc::clone(&entry));
        let kernel = (kernels.len() - 1) as u64;
        drop(kernels);
        // Pin the bound generations only after winning the insert race:
        // the losing duplicate above never pinned, so the refcounts
        // track exactly the kernel entries that hold a data snapshot.
        let mut reg = self.registry.write().unwrap_or_else(PoisonError::into_inner);
        for (name, generation) in &entry.pinned {
            *reg.pins.entry((name.clone(), *generation)).or_insert(0) += 1;
        }
        drop(reg);
        Ok(Response::Prepared {
            kernel,
            splittable,
            split: sharded.then(|| split_payload(&entry.prepared)).flatten(),
            warning,
        })
    }

    fn find_kernel(&self, dedup: &str, sharded: bool) -> Option<Response> {
        let kernels = self.kernels.read().unwrap_or_else(PoisonError::into_inner);
        kernels.iter().position(|k| k.dedup == dedup && !k.quarantined.load(Ordering::Acquire)).map(
            |k| Response::Prepared {
                kernel: k as u64,
                splittable: kernels[k].prepared.splittable(),
                split: sharded.then(|| split_payload(&kernels[k].prepared)).flatten(),
                warning: fallback_warning(
                    kernels[k].prepared.parallelism(),
                    kernels[k].prepared.splittable(),
                ),
            },
        )
    }

    fn entry(&self, kernel: u64) -> Result<Arc<KernelEntry>, EngineError> {
        let kernels = self.kernels.read().unwrap_or_else(PoisonError::into_inner);
        usize::try_from(kernel).ok().and_then(|k| kernels.get(k)).cloned().ok_or_else(|| {
            EngineError::new(
                ErrorCode::UnknownKernel,
                format!("no kernel with handle {kernel} (have {})", kernels.len()),
            )
        })
    }

    /// Executes a prepared kernel on the pooled path (main program only)
    /// and returns a lease over the results. **Steady state performs
    /// zero heap allocations** — the lease returns the warmed slot and
    /// context to their pools on drop.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownKernel`] for a bad handle; executor failures
    /// surface as [`ErrorCode::Internal`] (not expected after successful
    /// preparation).
    pub fn execute(&self, kernel: u64) -> Result<RunLease, EngineError> {
        self.execute_coalesced(kernel, None, 1)
    }

    /// [`Engine::execute`] for a coalesced batch: one execution that
    /// accounts for `n` identical requests — `runs += n`, `n` latency
    /// samples of the shared wall time, and at most one slow-log entry
    /// (the batch was one slow event, not `n`). With a `shard`, only
    /// that top-level row range executes (row-owned outputs keep their
    /// initialization outside the window; reduced outputs accumulate
    /// the range's contribution onto it).
    fn execute_coalesced(
        &self,
        kernel: u64,
        shard: Option<(usize, usize)>,
        n: u64,
    ) -> Result<RunLease, EngineError> {
        let entry = self.entry(kernel)?;
        self.check_quarantine(kernel, &entry)?;
        self.ensure_fresh(&entry)?;
        if shard.is_some() && entry.prepared.split_outputs().is_none() {
            return Err(EngineError::new(
                ErrorCode::InvalidKernel,
                format!("kernel {kernel} is not row-splittable; `shard` needs a splittable plan"),
            ));
        }
        let mut slot = relock(&entry.slots).pop().unwrap_or_default();
        let mut ctx = self.contexts.checkout();
        // With telemetry off the clock is never read: the run path is
        // then byte-for-byte the pre-telemetry one (the alloc tier's
        // parity test).
        let started = telemetry::enabled().then(Instant::now);
        // The catch covers the vendored rayon pool too: its workers
        // catch task panics and resume them on the joining caller, so a
        // parallel run's panic lands right here. `AssertUnwindSafe` is
        // sound because a panicking run's slot and context are
        // discarded below, never repooled.
        let result = catch_unwind(AssertUnwindSafe(|| {
            self.inject_exec_faults();
            match shard {
                None => {
                    entry.prepared.run_timed_into(&mut slot.outputs, &mut ctx, &mut slot.counters)
                }
                Some((k, shards)) => entry.prepared.run_shard_into(
                    &mut slot.outputs,
                    &mut ctx,
                    &mut slot.counters,
                    k,
                    shards,
                ),
            }
        }));
        let result = match result {
            Ok(result) => result,
            Err(_panic) => {
                // Poisoned intermediate state: drop the slot and the
                // context rather than returning them to their pools.
                drop(slot);
                ctx.discard();
                return Err(self.quarantine(kernel, &entry));
            }
        };
        if let Err(e) = result {
            // Return the slot before surfacing the failure.
            relock(&entry.slots).push(slot);
            return Err(EngineError::new(ErrorCode::Internal, e.to_string()));
        }
        entry.runs.fetch_add(n, Ordering::Relaxed);
        entry.panic_count.store(0, Ordering::Release);
        if let Some(started) = started {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            for _ in 0..n {
                entry.latency.record(nanos);
            }
            if nanos >= self.slow_threshold_ns {
                entry.slow.fetch_add(n, Ordering::Relaxed);
                relock(&self.slow_log).record(SlowRunPayload { kernel, us: nanos / 1_000 });
            }
        }
        Ok(RunLease { entry, slot: Some(slot), _ctx: ctx })
    }

    /// Refuses execution of a quarantined handle with the structured
    /// `kernel_quarantined` code.
    fn check_quarantine(&self, kernel: u64, entry: &KernelEntry) -> Result<(), EngineError> {
        if entry.quarantined.load(Ordering::Acquire) {
            return Err(EngineError::new(
                ErrorCode::KernelQuarantined,
                format!(
                    "kernel {kernel} was quarantined after a panicking run — \
                     re-prepare the same spec to mint a fresh handle"
                ),
            ));
        }
        Ok(())
    }

    /// Quarantines a handle whose run panicked and builds the
    /// `internal_error` reply for the victims. The first quarantining
    /// thread bumps the gauge; every caught panic bumps the counter.
    fn quarantine(&self, kernel: u64, entry: &KernelEntry) -> EngineError {
        self.serve.panics_caught.inc_always();
        if !entry.quarantined.swap(true, Ordering::AcqRel) {
            let n = self.quarantined_count.fetch_add(1, Ordering::Relaxed) + 1;
            self.serve.quarantined_kernels.set(n);
            // One spec-level strike per quarantined handle (not per
            // victim request racing into this panic).
            entry.panic_count.fetch_add(1, Ordering::AcqRel);
        }
        EngineError::new(
            ErrorCode::Internal,
            format!(
                "execution of kernel {kernel} panicked; the handle is quarantined — \
                 re-prepare to mint a fresh one"
            ),
        )
    }

    /// Chaos-test hooks on the execution path: a forced slow run and a
    /// forced panic. Without a plan this is one branch on a `None`.
    fn inject_exec_faults(&self) {
        if let Some(plan) = &self.fault_plan {
            if plan.fire(FaultSite::ExecDelay) {
                std::thread::sleep(plan.delay());
            }
            if plan.fire(FaultSite::ExecPanic) {
                panic!("injected kernel execution panic");
            }
        }
    }

    /// Verifies the kernel's pinned tensors are still the current
    /// generations. Steady state is two relaxed-ish atomic loads: the
    /// registry epoch only moves on (re-)registration, so a matching
    /// cached epoch proves nothing was re-registered since the last
    /// check. On an epoch change the pins re-verify under the registry
    /// lock; an *unregistered* name does not invalidate (the kernel
    /// keeps serving its snapshot), a *re-registered* one does.
    fn ensure_fresh(&self, entry: &KernelEntry) -> Result<(), EngineError> {
        let epoch = self.registry_epoch.load(Ordering::Acquire);
        if entry.valid_epoch.load(Ordering::Relaxed) == epoch {
            return Ok(());
        }
        let reg = self.registry.read().unwrap_or_else(PoisonError::into_inner);
        for (name, pinned) in &entry.pinned {
            let current = reg.generations.get(name).copied().unwrap_or(*pinned);
            if current != *pinned {
                drop(reg);
                self.serve.stale_runs.inc_always();
                return Err(EngineError::new(
                    ErrorCode::StaleTensor,
                    format!(
                        "tensor `{name}` was re-registered (now generation {current}; this \
                         kernel pinned generation {pinned}) — re-prepare to pick up the new data"
                    ),
                ));
            }
        }
        drop(reg);
        entry.valid_epoch.store(epoch, Ordering::Relaxed);
        Ok(())
    }

    /// Handles `n` coalesced identical `run` requests with a single
    /// execution and returns the one response every requester receives.
    /// Request and error accounting both count all `n`, so wire-level
    /// totals are indistinguishable from `n` serial requests.
    pub fn run_batch(
        &self,
        kernel: u64,
        full: bool,
        shard: Option<(u64, u64)>,
        n: u64,
    ) -> Response {
        self.counts.run.fetch_add(n, Ordering::Relaxed);
        self.run_coalesced(kernel, full, shard, n).unwrap_or_else(|e| {
            self.counts.errors.fetch_add(n, Ordering::Relaxed);
            Response::error(e.code, e.message)
        })
    }

    fn run_coalesced(
        &self,
        kernel: u64,
        full: bool,
        shard: Option<(u64, u64)>,
        n: u64,
    ) -> Result<Response, EngineError> {
        let shard = match shard {
            None => None,
            Some(_) if full => {
                return Err(EngineError::new(
                    ErrorCode::InvalidKernel,
                    "`shard` cannot be combined with `full`: output replication needs the \
                     complete result, not one row range",
                ))
            }
            Some((k, shards)) => Some((
                usize::try_from(k).map_err(|_| shard_overflow(k))?,
                usize::try_from(shards).map_err(|_| shard_overflow(shards))?,
            )),
        };
        if full {
            // The complete result (main + output replication): a fresh
            // allocation per request, documented as off the hot path.
            let entry = self.entry(kernel)?;
            self.check_quarantine(kernel, &entry)?;
            self.ensure_fresh(&entry)?;
            let (outputs, counters) = catch_unwind(AssertUnwindSafe(|| {
                self.inject_exec_faults();
                entry.prepared.run_full()
            }))
            .map_err(|_panic| self.quarantine(kernel, &entry))?
            .map_err(|e| EngineError::new(ErrorCode::Internal, e.to_string()))?;
            entry.runs.fetch_add(n, Ordering::Relaxed);
            entry.panic_count.store(0, Ordering::Release);
            // Deliberately NOT recorded in the latency histogram: the
            // quantiles report the paper's timed region (pooled
            // main-program runs), and replication + fresh allocation
            // would skew them.
            return Ok(ran_response(&outputs, &counters));
        }
        let lease = self.execute_coalesced(kernel, shard, n)?;
        Ok(ran_response(lease.outputs(), lease.counters()))
    }

    fn stats(&self) -> Response {
        let cache = plan_cache_stats();
        let pool = rayon::pool_stats();
        let kernels = self.kernels.read().unwrap_or_else(PoisonError::into_inner);
        let kernel_stats = kernels
            .iter()
            .enumerate()
            .map(|(k, entry)| {
                let snapshot = entry.latency.snapshot();
                KernelStatPayload {
                    kernel: k as u64,
                    spec: entry.spec.clone(),
                    runs: entry.runs.load(Ordering::Relaxed),
                    median_us: quantile_us(&snapshot, 0.5),
                    p90_us: quantile_us(&snapshot, 0.9),
                    p99_us: quantile_us(&snapshot, 0.99),
                    max_us: (snapshot.count > 0).then(|| snapshot.max as f64 / 1_000.0),
                    slow: entry.slow.load(Ordering::Relaxed),
                }
            })
            .collect();
        Response::Stats {
            cache: CachePayload {
                hits: cache.hits,
                misses: cache.misses,
                builds: cache.builds,
                evictions: cache.evictions,
                waits: cache.waits,
                entries: cache.entries as u64,
            },
            requests: RequestCountsPayload {
                register_tensor: self.counts.register_tensor.load(Ordering::Relaxed),
                prepare: self.counts.prepare.load(Ordering::Relaxed),
                run: self.counts.run.load(Ordering::Relaxed),
                stats: self.counts.stats.load(Ordering::Relaxed),
                metrics: self.counts.metrics.load(Ordering::Relaxed),
                ping: self.counts.ping.load(Ordering::Relaxed),
                unregister: self.counts.unregister.load(Ordering::Relaxed),
                errors: self.counts.errors.load(Ordering::Relaxed),
            },
            pool: PoolPayload {
                workers: pool.workers_spawned as u64,
                submitted: pool.tasks_submitted as u64,
                executed: pool.tasks_executed as u64,
                helped: pool.tasks_helped as u64,
                parks: pool.parks as u64,
                wakeups: pool.wakeups as u64,
            },
            serve: self.serve_payload(),
            kernels: kernel_stats,
            slow: relock(&self.slow_log).snapshot(),
        }
    }

    fn serve_payload(&self) -> ServePayload {
        let reg = self.registry.read().unwrap_or_else(PoisonError::into_inner);
        ServePayload {
            registry_tensors: reg.tensors.len() as u64,
            registry_bytes: reg.bytes,
            registry_evictions: reg.evictions,
            pinned: reg.pins.len() as u64,
            batch_dispatches: self.serve.batch_dispatches.get(),
            batched_runs: self.serve.batched_runs.get(),
            offloaded_replications: self.serve.offloaded_replications.get(),
            queued: self.serve.queue_depth.get(),
            rejected_conns: self.serve.admission_rejected_conns.get(),
            rejected_bytes: self.serve.admission_rejected_bytes.get(),
            deadline_exceeded: self.serve.deadline_exceeded.get(),
            stale_runs: self.serve.stale_runs.get(),
            panics_caught: self.serve.panics_caught.get(),
            quarantined_kernels: self.serve.quarantined_kernels.get(),
            journal_records: self.serve.journal_records.get(),
            journal_bytes: self.serve.journal_bytes.get(),
            journal_fsyncs: self.serve.journal_fsyncs.get(),
            recovery_replayed: self.serve.recovery_replayed.get(),
            recovery_truncated: self.serve.recovery_truncated.get(),
        }
    }

    /// Per-engine serving metrics (batching, admission, registry
    /// lifecycle). The transport and scheduler record into these; the
    /// counters use the ungated paths so — like request counts — the
    /// accounting survives `--telemetry off`.
    pub fn serve_metrics(&self) -> &telemetry::ServeMetrics {
        &self.serve
    }

    /// Renders the Prometheus text exposition (format 0.0.4). Families
    /// appear in sorted name order and every value is an integer, so
    /// two scrapes of an idle server are byte-identical — the `metrics`
    /// verb's own request count is deliberately excluded from
    /// `systec_requests_total` for exactly that reason.
    fn metrics_text(&self) -> String {
        let m = telemetry::global();
        let cache = plan_cache_stats();
        let pool = rayon::pool_stats();
        let mut w = telemetry::prom::PromWriter::new();

        // -- admission control ---------------------------------------
        w.family(
            "systec_admission_rejects_total",
            "counter",
            "Requests refused by admission control, by reason.",
        );
        w.sample(
            "systec_admission_rejects_total",
            &[("reason", "deadline")],
            self.serve.deadline_exceeded.get(),
        );
        w.sample(
            "systec_admission_rejects_total",
            &[("reason", "max_bytes")],
            self.serve.admission_rejected_bytes.get(),
        );
        w.sample(
            "systec_admission_rejects_total",
            &[("reason", "max_conns")],
            self.serve.admission_rejected_conns.get(),
        );

        // -- compile phases ------------------------------------------
        w.family(
            "systec_compile_phase_max_ns",
            "gauge",
            "Longest recorded span of each compile phase, in nanoseconds.",
        );
        for phase in telemetry::PHASES {
            w.sample(
                "systec_compile_phase_max_ns",
                &[("phase", phase.name())],
                m.phase(phase).max_ns(),
            );
        }
        w.family(
            "systec_compile_phase_ns_total",
            "counter",
            "Total nanoseconds spent in each compile phase.",
        );
        for phase in telemetry::PHASES {
            w.sample(
                "systec_compile_phase_ns_total",
                &[("phase", phase.name())],
                m.phase(phase).total_ns(),
            );
        }
        w.family("systec_compile_phase_total", "counter", "Spans recorded for each compile phase.");
        for phase in telemetry::PHASES {
            w.sample(
                "systec_compile_phase_total",
                &[("phase", phase.name())],
                m.phase(phase).count(),
            );
        }

        // -- standalone counters -------------------------------------
        w.family(
            "systec_fallback_serial_total",
            "counter",
            "Prepare responses that degraded a parallel request to serial.",
        );
        w.sample("systec_fallback_serial_total", &[], m.fallback_serial.get());
        w.family(
            "systec_faults_injected_total",
            "counter",
            "Faults injected by the installed fault plan, by site (all zero in production).",
        );
        for site in crate::fault::FAULT_SITES {
            w.sample(
                "systec_faults_injected_total",
                &[("site", site.name())],
                self.fault_plan.as_ref().map_or(0, |p| p.injected(site)),
            );
        }
        w.family(
            "systec_fused_dispatch_total",
            "counter",
            "VM vector-loop dispatches by fused-body kind.",
        );
        for kind in telemetry::BODY_KINDS {
            w.sample("systec_fused_dispatch_total", &[("kind", kind.name())], m.fused(kind).get());
        }
        w.family(
            "systec_journal_bytes_total",
            "counter",
            "Bytes appended to the durability write-ahead journal.",
        );
        w.sample("systec_journal_bytes_total", &[], self.serve.journal_bytes.get());
        w.family(
            "systec_journal_fsyncs_total",
            "counter",
            "fsyncs issued by the journal/snapshot writer.",
        );
        w.sample("systec_journal_fsyncs_total", &[], self.serve.journal_fsyncs.get());
        w.family(
            "systec_journal_records_total",
            "counter",
            "Records appended to the durability write-ahead journal.",
        );
        w.sample("systec_journal_records_total", &[], self.serve.journal_records.get());

        // -- per-kernel ----------------------------------------------
        let kernels = self.kernels.read().unwrap_or_else(PoisonError::into_inner);
        w.family(
            "systec_kernel_latency_ns",
            "histogram",
            "Pooled main-program run latency per kernel handle, in nanoseconds.",
        );
        for (k, entry) in kernels.iter().enumerate() {
            let label = k.to_string();
            w.histogram(
                "systec_kernel_latency_ns",
                &[("kernel", &label)],
                &entry.latency.snapshot(),
            );
        }
        w.family("systec_kernel_runs_total", "counter", "Completed runs per kernel handle.");
        for (k, entry) in kernels.iter().enumerate() {
            let label = k.to_string();
            w.sample(
                "systec_kernel_runs_total",
                &[("kernel", &label)],
                entry.runs.load(Ordering::Relaxed),
            );
        }
        w.family(
            "systec_kernel_slow_total",
            "counter",
            "Runs over the slow threshold per kernel handle.",
        );
        for (k, entry) in kernels.iter().enumerate() {
            let label = k.to_string();
            w.sample(
                "systec_kernel_slow_total",
                &[("kernel", &label)],
                entry.slow.load(Ordering::Relaxed),
            );
        }
        drop(kernels);

        // -- fault tolerance -----------------------------------------
        w.family(
            "systec_panics_caught_total",
            "counter",
            "Executor panics caught and answered with internal_error.",
        );
        w.sample("systec_panics_caught_total", &[], self.serve.panics_caught.get());

        // -- plan cache ----------------------------------------------
        w.family("systec_plan_cache_builds_total", "counter", "Plan builds actually executed.");
        w.sample("systec_plan_cache_builds_total", &[], cache.builds);
        w.family("systec_plan_cache_entries", "gauge", "Plans currently cached.");
        w.sample("systec_plan_cache_entries", &[], cache.entries as u64);
        w.family(
            "systec_plan_cache_evictions_total",
            "counter",
            "Plans evicted by the LRU policy.",
        );
        w.sample("systec_plan_cache_evictions_total", &[], cache.evictions);
        w.family(
            "systec_plan_cache_hits_total",
            "counter",
            "Plan-cache lookups served from cache.",
        );
        w.sample("systec_plan_cache_hits_total", &[], cache.hits);
        w.family("systec_plan_cache_misses_total", "counter", "Plan-cache lookups that missed.");
        w.sample("systec_plan_cache_misses_total", &[], cache.misses);
        w.family(
            "systec_plan_cache_waits_total",
            "counter",
            "Single-flight lookups that blocked on another thread's build.",
        );
        w.sample("systec_plan_cache_waits_total", &[], cache.waits);

        // -- worker pool ---------------------------------------------
        w.family("systec_pool_executed_total", "counter", "Tasks executed by pool worker threads.");
        w.sample("systec_pool_executed_total", &[], pool.tasks_executed as u64);
        w.family(
            "systec_pool_helped_total",
            "counter",
            "Tasks drained by the submitting thread (chunk-imbalance signal).",
        );
        w.sample("systec_pool_helped_total", &[], pool.tasks_helped as u64);
        w.family("systec_pool_parks_total", "counter", "Times a worker parked waiting for work.");
        w.sample("systec_pool_parks_total", &[], pool.parks as u64);
        w.family("systec_pool_submitted_total", "counter", "Tasks handed to the worker pool.");
        w.sample("systec_pool_submitted_total", &[], pool.tasks_submitted as u64);
        w.family("systec_pool_wakeups_total", "counter", "Times a parked worker was woken.");
        w.sample("systec_pool_wakeups_total", &[], pool.wakeups as u64);
        w.family("systec_pool_workers", "gauge", "Worker threads spawned so far.");
        w.sample("systec_pool_workers", &[], pool.workers_spawned as u64);

        // -- quarantine + recovery -----------------------------------
        w.family(
            "systec_quarantined_kernels",
            "gauge",
            "Kernel handles quarantined after a caught panic.",
        );
        w.sample("systec_quarantined_kernels", &[], self.serve.quarantined_kernels.get());
        w.family(
            "systec_recovery_replayed_total",
            "counter",
            "Durable records replayed at startup recovery.",
        );
        w.sample("systec_recovery_replayed_total", &[], self.serve.recovery_replayed.get());
        w.family(
            "systec_recovery_truncated_total",
            "counter",
            "Torn-tail bytes truncated from the journal at recovery.",
        );
        w.sample("systec_recovery_truncated_total", &[], self.serve.recovery_truncated.get());

        // -- tensor registry -----------------------------------------
        w.family("systec_registry_bytes", "gauge", "Estimated bytes of live registered tensors.");
        w.sample("systec_registry_bytes", &[], self.serve.registry_bytes.get());
        w.family(
            "systec_registry_evictions_total",
            "counter",
            "Tensors LRU-evicted to admit new registrations.",
        );
        w.sample("systec_registry_evictions_total", &[], self.serve.registry_evictions.get());
        w.family("systec_registry_tensors", "gauge", "Tensors currently registered.");
        w.sample("systec_registry_tensors", &[], self.serve.registry_tensors.get());

        // -- requests ------------------------------------------------
        w.family(
            "systec_requests_total",
            "counter",
            "Requests handled by verb; the metrics verb itself is excluded \
             so idle scrapes are byte-stable.",
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "errors")],
            self.counts.errors.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "ping")],
            self.counts.ping.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "prepare")],
            self.counts.prepare.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "register_tensor")],
            self.counts.register_tensor.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "run")],
            self.counts.run.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "stats")],
            self.counts.stats.load(Ordering::Relaxed),
        );
        w.sample(
            "systec_requests_total",
            &[("verb", "unregister")],
            self.counts.unregister.load(Ordering::Relaxed),
        );

        // -- serving -------------------------------------------------
        w.family(
            "systec_serve_batch_dispatches_total",
            "counter",
            "Coalesced pool dispatches (each covers one or more runs).",
        );
        w.sample("systec_serve_batch_dispatches_total", &[], self.serve.batch_dispatches.get());
        w.family(
            "systec_serve_batch_runs_total",
            "counter",
            "Run requests served through coalesced dispatches.",
        );
        w.sample("systec_serve_batch_runs_total", &[], self.serve.batched_runs.get());
        w.family("systec_serve_batch_size", "histogram", "Runs coalesced per dispatch.");
        w.histogram("systec_serve_batch_size", &[], &self.serve.batch_size.snapshot());
        w.family(
            "systec_serve_offloaded_replications_total",
            "counter",
            "Large batch responses encoded and fanned out on the replicator thread.",
        );
        w.sample(
            "systec_serve_offloaded_replications_total",
            &[],
            self.serve.offloaded_replications.get(),
        );
        w.family("systec_serve_queue_depth", "gauge", "Requests waiting in the scheduler queue.");
        w.sample("systec_serve_queue_depth", &[], self.serve.queue_depth.get());
        w.family(
            "systec_serve_stale_runs_total",
            "counter",
            "Runs refused because a pinned tensor was re-registered.",
        );
        w.sample("systec_serve_stale_runs_total", &[], self.serve.stale_runs.get());

        // -- VM ------------------------------------------------------
        w.family("systec_vm_run_ns_total", "counter", "Total wall nanoseconds inside VM execute.");
        w.sample("systec_vm_run_ns_total", &[], m.vm_run_ns.get());
        w.family("systec_vm_runs_total", "counter", "VM execute entries.");
        w.sample("systec_vm_runs_total", &[], m.vm_runs.get());

        w.finish()
    }

    /// The execution-context pool (observability for tests).
    pub fn context_pool(&self) -> &ContextPool {
        &self.contexts
    }
}

/// Converts a histogram quantile (nanoseconds) to microseconds for the
/// stats payload; `None` before the first recorded run.
fn quantile_us(snapshot: &Snapshot, q: f64) -> Option<f64> {
    snapshot.quantile(q).map(|ns| ns as f64 / 1_000.0)
}

/// The structured serial-fallback warning for a degraded prepare, also
/// bumping the `fallback_serial` counter when one is issued.
/// Maps a splittable plan's per-output classification onto wire merge
/// rules for a `"sharded":true` prepare, sorted by output name. `None`
/// when the plan is not splittable — or reduces with an op that has no
/// identity (overwrite), which no fixed-order fold can merge exactly.
fn split_payload(prepared: &Prepared) -> Option<Vec<(String, MergeRule)>> {
    let mut split: Vec<(String, MergeRule)> = Vec::new();
    for (name, kind) in prepared.split_outputs()? {
        let rule = match kind {
            MergeKind::Rows => MergeRule::Rows,
            MergeKind::Reduce(AssignOp::Add) => MergeRule::Add,
            MergeKind::Reduce(AssignOp::Min) => MergeRule::Min,
            MergeKind::Reduce(AssignOp::Max) => MergeRule::Max,
            MergeKind::Reduce(AssignOp::Overwrite) => return None,
        };
        split.push((name, rule));
    }
    split.sort_by(|a, b| a.0.cmp(&b.0));
    Some(split)
}

fn shard_overflow(value: u64) -> EngineError {
    EngineError::new(
        ErrorCode::InvalidKernel,
        format!("shard value {value} does not fit this platform's usize"),
    )
}

fn fallback_warning(parallelism: Parallelism, splittable: bool) -> Option<Warning> {
    serial_fallback_note(parallelism, splittable).map(|message| {
        telemetry::global().fallback_serial.inc();
        Warning { kind: WarningKind::SerialFallback, message }
    })
}

/// Builds the deterministic run response: outputs and read counters in
/// sorted name order.
fn ran_response(outputs: &HashMap<String, DenseTensor>, counters: &Counters) -> Response {
    let mut out: Vec<OutputPayload> = outputs
        .iter()
        .map(|(name, t)| OutputPayload {
            name: name.clone(),
            dims: t.dims().to_vec(),
            values: t.as_slice().to_vec(),
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    let mut reads: Vec<(String, u64)> =
        counters.reads.iter().map(|(name, n)| (name.clone(), *n)).collect();
    reads.sort();
    Response::Ran {
        outputs: out,
        counters: CounterPayload {
            flops: counters.flops,
            writes: counters.writes,
            iterations: counters.iterations,
            reads,
        },
    }
}

/// Serializes a direct `Prepared` execution exactly like the server
/// serializes a `run` response — the e2e oracle: a byte-identical
/// response line proves the served execution equals the direct one.
pub fn oracle_response(outputs: &HashMap<String, DenseTensor>, counters: &Counters) -> Response {
    ran_response(outputs, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Placement;

    fn register(engine: &Engine, name: &str, dims: &[usize], entries: &[(Vec<usize>, f64)]) {
        let resp = engine.handle(&Request::RegisterTensor {
            name: name.into(),
            dims: dims.to_vec(),
            payload: TensorPayload::Coo(entries.to_vec()),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }

    fn register_dense(engine: &Engine, name: &str, dims: &[usize], values: &[f64]) {
        let resp = engine.handle(&Request::RegisterTensor {
            name: name.into(),
            dims: dims.to_vec(),
            payload: TensorPayload::Dense(values.to_vec()),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
    }

    fn ssymv_inputs(engine: &Engine) {
        register(
            engine,
            "A",
            &[4, 4],
            &[
                (vec![0, 1], 2.0),
                (vec![1, 0], 2.0),
                (vec![2, 3], 1.5),
                (vec![3, 2], 1.5),
                (vec![1, 1], 0.5),
            ],
        );
        register_dense(engine, "x", &[4], &[1.0, 2.0, 3.0, 4.0]);
    }

    fn ssymv_engine() -> Engine {
        let engine = Engine::new();
        ssymv_inputs(&engine);
        engine
    }

    fn prepare(engine: &Engine) -> u64 {
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        match resp {
            Response::Prepared { kernel, .. } => kernel,
            other => panic!("prepare failed: {other:?}"),
        }
    }

    #[test]
    fn register_prepare_run_produces_the_reference_result() {
        let engine = ssymv_engine();
        let kernel = prepare(&engine);
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        let Response::Ran { outputs, counters } = resp else {
            panic!("run failed");
        };
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].name, "y");
        // y = A x with the symmetric A above.
        let expect = [2.0 * 2.0, 2.0 * 1.0 + 0.5 * 2.0, 1.5 * 4.0, 1.5 * 3.0];
        for (got, want) in outputs[0].values.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{:?}", outputs[0].values);
        }
        assert!(counters.flops > 0);
    }

    #[test]
    fn repeated_prepares_share_a_handle_and_runs_are_byte_deterministic() {
        let engine = ssymv_engine();
        let k1 = prepare(&engine);
        let k2 = prepare(&engine);
        assert_eq!(k1, k2, "identical prepares dedupe to one handle");
        let r1 = engine.handle(&Request::Run { kernel: k1, full: false, shard: None }).encode();
        let r2 = engine.handle(&Request::Run { kernel: k1, full: false, shard: None }).encode();
        assert_eq!(r1, r2, "repeated runs must serialize byte-identically");
    }

    #[test]
    fn unknown_names_and_handles_error() {
        let engine = ssymv_engine();
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec![],
            inputs: vec![("A".into(), "missing".into())],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        assert!(matches!(resp, Response::Error { code: ErrorCode::UnknownTensor, .. }), "{resp:?}");
        let resp = engine.handle(&Request::Run { kernel: 99, full: false, shard: None });
        assert!(matches!(resp, Response::Error { code: ErrorCode::UnknownKernel, .. }), "{resp:?}");
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i j y += nonsense".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        assert!(matches!(resp, Response::Error { code: ErrorCode::InvalidKernel, .. }), "{resp:?}");
        // Errors are visible in stats.
        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed");
        };
        assert_eq!(requests.errors, 3);
        assert_eq!(requests.prepare, 2);
    }

    #[test]
    fn explicit_threads_one_forces_serial_on_a_parallel_engine() {
        // A server started with --threads N must still honor a client
        // that pins threads=1 for serial execution (the wire encodes an
        // explicit 1; absence inherits the default).
        let engine = Engine::with_parallelism(Parallelism::threads(4));
        register(&engine, "A", &[4, 4], &[(vec![0, 1], 2.0), (vec![1, 0], 2.0), (vec![2, 2], 1.0)]);
        register_dense(&engine, "x", &[4], &[1.0, 2.0, 3.0, 4.0]);
        let prep = |threads: Option<usize>| {
            let resp = engine.handle(&Request::Prepare {
                einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
                sym: vec!["A".into()],
                inputs: vec![],
                variant: Variant::Systec,
                threads,
                sharded: false,
            });
            match resp {
                Response::Prepared { kernel, splittable, .. } => {
                    assert!(splittable);
                    kernel
                }
                other => panic!("prepare failed: {other:?}"),
            }
        };
        let serial = prep(Some(1));
        let inherit = prep(None);
        assert_ne!(serial, inherit, "distinct parallelism → distinct handles");
        // The pinned-serial kernel never touches the worker pool...
        let spawned_before = rayon::pool_workers_spawned();
        for _ in 0..3 {
            drop(engine.execute(serial).unwrap());
        }
        assert_eq!(
            rayon::pool_workers_spawned(),
            spawned_before,
            "threads=1 must not dispatch pool workers"
        );
        // ...while the default-inheriting one dispatches Threads(4).
        drop(engine.execute(inherit).unwrap());
        assert!(
            rayon::pool_workers_spawned() > spawned_before,
            "the engine default (threads 4) dispatches the pool"
        );
        // Results agree bit-for-bit either way (PR 2's determinism).
        let a = engine.execute(serial).unwrap().outputs()["y"].clone();
        let b = engine.execute(inherit).unwrap().outputs()["y"].clone();
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_parallel_prepare_carries_a_structured_warning() {
        let engine = Engine::new();
        register(&engine, "A", &[4, 4], &[(vec![0, 1], 2.0), (vec![1, 0], 2.0)]);
        let fallbacks_before = telemetry::global().fallback_serial.get();
        // A transpose's scattered overwrites keep the plan serial, so
        // asking for threads must be called out (kernels has the same
        // fixture for `serial_fallback_note`).
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: C[j, i] = A[i, j]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Naive,
            threads: Some(4),
            sharded: false,
        });
        let Response::Prepared { splittable, warning, .. } = resp else { panic!("{resp:?}") };
        assert!(!splittable, "transpose must not be splittable");
        let warning = warning.expect("threads on a non-splittable plan must warn");
        assert_eq!(warning.kind, WarningKind::SerialFallback);
        assert!(warning.message.contains("--threads 4"), "{}", warning.message);
        assert!(
            telemetry::global().fallback_serial.get() > fallbacks_before,
            "the fallback counter must record the degradation"
        );
        // A satisfiable request stays quiet.
        register_dense(&engine, "x", &[4], &[1.0, 2.0, 3.0, 4.0]);
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        let Response::Prepared { warning, .. } = resp else { panic!("{resp:?}") };
        assert!(warning.is_none(), "{warning:?}");
    }

    #[test]
    fn stats_report_latency_quantiles_from_the_histogram() {
        let engine = ssymv_engine();
        let kernel = prepare(&engine);
        let Response::Stats { kernels, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        assert_eq!(kernels[0].runs, 0);
        assert!(kernels[0].median_us.is_none(), "no samples before the first run");
        assert!(kernels[0].max_us.is_none());
        for _ in 0..5 {
            drop(engine.execute(kernel).unwrap());
        }
        let Response::Stats { kernels, slow, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        let k = &kernels[0];
        assert_eq!(k.runs, 5);
        let (median, p90, p99, max) = (
            k.median_us.expect("median after runs"),
            k.p90_us.expect("p90 after runs"),
            k.p99_us.expect("p99 after runs"),
            k.max_us.expect("max after runs"),
        );
        assert!(median > 0.0 && median <= p90 && p90 <= p99, "{k:?}");
        // Quantiles are bucket upper bounds capped at the observed max.
        assert!(p99 <= max, "{k:?}");
        // A 12×12 tridiagonal SSYMV finishes far under the 10ms slow
        // threshold on any machine that can run the suite.
        assert_eq!(k.slow, 0, "{k:?}");
        assert!(slow.is_empty(), "{slow:?}");
    }

    #[test]
    fn slow_runs_enter_the_log_and_per_kernel_count() {
        let engine = ssymv_engine().with_slow_threshold(Duration::ZERO);
        let kernel = prepare(&engine);
        for _ in 0..3 {
            drop(engine.execute(kernel).unwrap());
        }
        let Response::Stats { kernels, slow, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        assert_eq!(kernels[0].slow, 3, "threshold 0 marks every run slow");
        assert_eq!(slow.len(), 3, "{slow:?}");
        assert!(slow.iter().all(|s| s.kernel == kernel), "{slow:?}");
    }

    #[test]
    fn metrics_exposition_carries_the_required_families() {
        let engine = ssymv_engine();
        let kernel = prepare(&engine);
        drop(engine.execute(kernel).unwrap());
        let Response::Metrics { text } = engine.handle(&Request::Metrics) else {
            panic!("metrics failed")
        };
        for family in [
            "systec_compile_phase_ns_total",
            "systec_compile_phase_total",
            "systec_fallback_serial_total",
            "systec_fused_dispatch_total",
            "systec_kernel_latency_ns_bucket",
            "systec_kernel_latency_ns_count",
            "systec_kernel_runs_total",
            "systec_plan_cache_hits_total",
            "systec_plan_cache_misses_total",
            "systec_pool_submitted_total",
            "systec_requests_total",
            "systec_vm_runs_total",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        assert!(
            text.contains("systec_kernel_latency_ns_count{kernel=\"0\"} 1\n"),
            "one pooled run must be in the kernel histogram:\n{text}"
        );
        assert!(
            text.contains("systec_kernel_latency_ns_bucket{kernel=\"0\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        // Families are emitted in sorted name order (scrape stability).
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split(' ').next())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted);
        // Engine-local families are byte-stable across idle scrapes
        // (global ones may move under concurrent tests in this
        // process; the CI smoke asserts whole-document stability
        // against a dedicated idle server).
        let Response::Metrics { text: again } = engine.handle(&Request::Metrics) else {
            panic!("metrics failed")
        };
        let local = |t: &str| -> Vec<String> {
            t.lines()
                .filter(|l| l.starts_with("systec_kernel_") || l.starts_with("systec_requests_"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(local(&text), local(&again), "metrics scrapes must not perturb themselves");
    }

    #[test]
    fn bad_tensor_payloads_are_rejected() {
        let engine = Engine::new();
        for (dims, payload) in [
            (vec![2], TensorPayload::Dense(vec![1.0, 2.0, 3.0])),
            (vec![2], TensorPayload::Dense(vec![f64::NAN, 0.0])),
            (vec![2, 2], TensorPayload::Coo(vec![(vec![5, 0], 1.0)])),
            (vec![0], TensorPayload::Dense(vec![])),
        ] {
            let resp = engine.handle(&Request::RegisterTensor {
                name: "T".into(),
                dims,
                payload,
                format: StorageFormat::Auto,
                placement: Placement::Hash,
            });
            assert!(matches!(resp, Response::Error { code: ErrorCode::BadTensor, .. }), "{resp:?}");
        }
    }

    #[test]
    fn full_runs_apply_replication() {
        let engine = Engine::new();
        register(&engine, "A", &[3, 3], &[(vec![0, 1], 1.0), (vec![1, 2], 2.0), (vec![0, 0], 3.0)]);
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j, k: C[i, j] += A[i, k] * A[j, k]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        let Response::Prepared { kernel, .. } = resp else { panic!("{resp:?}") };
        let Response::Ran { outputs: timed, .. } =
            engine.handle(&Request::Run { kernel, full: false, shard: None })
        else {
            panic!("run failed")
        };
        let Response::Ran { outputs: full, .. } =
            engine.handle(&Request::Run { kernel, full: true, shard: None })
        else {
            panic!("full run failed")
        };
        // SSYRK's timed region computes the upper triangle; `full`
        // replicates it below the diagonal.
        let c = |o: &[OutputPayload], i: usize, j: usize| o[0].values[i * 3 + j];
        assert_eq!(c(&full, 1, 0), c(&full, 0, 1));
        assert!(c(&timed, 1, 0) != c(&full, 1, 0) || c(&full, 0, 1) == 0.0);
    }

    fn slow_entry(k: u64) -> SlowRunPayload {
        SlowRunPayload { kernel: k, us: k }
    }

    #[test]
    fn slow_log_at_exact_capacity_is_unrotated_and_oldest_first() {
        let mut log = SlowLog::new();
        for k in 0..SLOW_LOG_CAPACITY as u64 {
            log.record(slow_entry(k));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), SLOW_LOG_CAPACITY);
        assert_eq!(snap.first().unwrap().kernel, 0, "nothing rotated out yet");
        assert_eq!(snap.last().unwrap().kernel, SLOW_LOG_CAPACITY as u64 - 1);
    }

    #[test]
    fn slow_log_one_past_capacity_rotates_out_exactly_the_oldest() {
        let mut log = SlowLog::new();
        for k in 0..=SLOW_LOG_CAPACITY as u64 {
            log.record(slow_entry(k));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), SLOW_LOG_CAPACITY, "capacity is a hard bound");
        assert_eq!(snap.first().unwrap().kernel, 1, "entry 0 rotated out");
        assert_eq!(snap.last().unwrap().kernel, SLOW_LOG_CAPACITY as u64);
        // Oldest-first across the wrap point.
        for pair in snap.windows(2) {
            assert!(pair[0].kernel < pair[1].kernel, "{snap:?}");
        }
    }

    #[test]
    fn slow_log_recorded_counter_saturates_instead_of_wrapping() {
        let mut log = SlowLog::new();
        for k in 0..SLOW_LOG_CAPACITY as u64 {
            log.record(slow_entry(k));
        }
        log.recorded = u64::MAX;
        log.record(slow_entry(99));
        assert_eq!(log.recorded, u64::MAX, "the all-time count must saturate");
        // Saturated counts still classify the ring as rotated.
        assert_eq!(log.snapshot().len(), SLOW_LOG_CAPACITY);
    }

    #[test]
    fn re_registration_staleness_regression() {
        // The PR 7 bug: `Prepared` clones its inputs at prepare time, so
        // a re-registered tensor was silently ignored by existing
        // kernels. Now the kernel must fail loudly until re-prepared.
        let engine = ssymv_engine();
        let kernel = prepare(&engine);
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(matches!(resp, Response::Ran { .. }), "{resp:?}");

        let resp = engine.handle(&Request::RegisterTensor {
            name: "x".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![4.0, 3.0, 2.0, 1.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        let Response::Registered { generation, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(generation, 1, "re-registration advances the generation");

        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::StaleTensor, .. }),
            "a run over a re-registered input must fail loudly: {resp:?}"
        );

        // Re-preparing mints a fresh handle pinned to the new data.
        let fresh = prepare(&engine);
        assert_ne!(fresh, kernel, "new generations must not dedup onto the stale handle");
        let Response::Ran { outputs, .. } =
            engine.handle(&Request::Run { kernel: fresh, full: false, shard: None })
        else {
            panic!("fresh kernel must run")
        };
        // y = A x with x re-registered as [4, 3, 2, 1].
        let expect = [2.0 * 3.0, 2.0 * 4.0 + 0.5 * 3.0, 1.5 * 1.0, 1.5 * 2.0];
        for (got, want) in outputs[0].values.iter().zip(expect) {
            assert!((got - want).abs() < 1e-12, "{:?}", outputs[0].values);
        }

        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        assert_eq!(serve.stale_runs, 1);
    }

    #[test]
    fn unregister_keeps_pinned_kernels_serving_and_is_idempotent() {
        let engine = ssymv_engine();
        let kernel = prepare(&engine);
        let before = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();

        let resp = engine.handle(&Request::Unregister { name: "x".into() });
        assert!(matches!(resp, Response::Unregistered { existed: true, .. }), "{resp:?}");
        // The kernel holds its own snapshot: runs keep working,
        // byte-identically — removal is not re-registration.
        assert_eq!(
            engine.handle(&Request::Run { kernel, full: false, shard: None }).encode(),
            before
        );

        let resp = engine.handle(&Request::Unregister { name: "x".into() });
        assert!(matches!(resp, Response::Unregistered { existed: false, .. }), "{resp:?}");

        // A new (non-deduped) prepare binding x now fails: the data is
        // gone for future kernels.
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Naive,
            threads: Some(1),
            sharded: false,
        });
        assert!(matches!(resp, Response::Error { code: ErrorCode::UnknownTensor, .. }), "{resp:?}");

        // Re-registering after unregister still advances the
        // generation: the name cannot be reborn at a pinned generation.
        let resp = engine.handle(&Request::RegisterTensor {
            name: "x".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![1.0, 2.0, 3.0, 4.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        let Response::Registered { generation, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(generation, 1, "generations survive unregister (no ABA)");

        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else {
            panic!("stats failed")
        };
        assert_eq!(requests.unregister, 2);
    }

    #[test]
    fn byte_cap_evicts_lru_unpinned_and_rejects_without_side_effects() {
        let engine = Engine::new().with_max_registered_bytes(100);
        // Each dense [4] vector is 32 estimated bytes.
        for name in ["a", "b", "c"] {
            register_dense(&engine, name, &[4], &[1.0, 2.0, 3.0, 4.0]);
        }
        // 96/100 held; a fourth 32-byte tensor evicts the LRU ("a").
        register_dense(&engine, "d", &[4], &[1.0, 2.0, 3.0, 4.0]);
        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 3);
        assert_eq!(serve.registry_bytes, 96);
        assert_eq!(serve.registry_evictions, 1);
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i: y[i] = a[i]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Naive,
            threads: Some(1),
            sharded: false,
        });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::UnknownTensor, .. }),
            "the LRU tensor must be gone: {resp:?}"
        );

        // Pin "b" via a prepared kernel: eviction must now skip it.
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i: y[i] = b[i]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Naive,
            threads: Some(1),
            sharded: false,
        });
        let Response::Prepared { kernel, .. } = resp else { panic!("{resp:?}") };
        // A 64-byte tensor forces out both unpinned entries ("c", "d")
        // while pinned "b" survives.
        register_dense(&engine, "e", &[8], &[1.0; 8]);
        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 2, "b (pinned) + e");
        assert_eq!(serve.registry_bytes, 96);
        assert_eq!(serve.registry_evictions, 3);
        assert_eq!(serve.pinned, 1);
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(matches!(resp, Response::Ran { .. }), "the pinned kernel keeps serving: {resp:?}");

        // A tensor that cannot fit even after evicting everything
        // unpinned is refused — and refusal evicts nothing.
        let resp = engine.handle(&Request::RegisterTensor {
            name: "f".into(),
            dims: vec![16],
            payload: TensorPayload::Dense(vec![1.0; 16]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::AdmissionRejected, .. }),
            "{resp:?}"
        );
        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 2, "a refused registration must not evict");
        assert_eq!(serve.rejected_bytes, 1);
        assert_eq!(serve.registry_evictions, 3);

        // Re-registering the evicted "a" resumes its generation
        // sequence: eviction does not reset history either.
        let resp = engine.handle(&Request::RegisterTensor {
            name: "a".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![9.0, 9.0, 9.0, 9.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        let Response::Registered { generation, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(generation, 1, "generations survive eviction");
    }

    #[test]
    fn panicking_run_quarantines_the_handle_until_a_reprepare() {
        let oracle = {
            let clean = ssymv_engine();
            let k = prepare(&clean);
            clean.handle(&Request::Run { kernel: k, full: false, shard: None }).encode()
        };
        let plan = Arc::new(FaultPlan::seeded(5).nth(FaultSite::ExecPanic, 1));
        let engine = Engine::new().with_fault_plan(Arc::clone(&plan));
        ssymv_inputs(&engine);
        let kernel = prepare(&engine);
        // The injected panic surfaces as a structured internal_error,
        // not an abort.
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        assert_eq!(plan.injected(FaultSite::ExecPanic), 1);
        // The handle is now quarantined: refused structurally, not
        // retried into the same poisoned state.
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::KernelQuarantined, .. }),
            "{resp:?}"
        );
        assert_eq!(engine.serve_metrics().panics_caught.get(), 1);
        assert_eq!(engine.serve_metrics().quarantined_kernels.get(), 1);
        // Re-preparing the identical spec mints a fresh handle — the
        // quarantined one is invisible to dedup — and the fresh handle
        // serves byte-identically to a never-faulted engine.
        let fresh = prepare(&engine);
        assert_ne!(fresh, kernel, "quarantined handles must not satisfy prepare dedup");
        let resp =
            engine.handle(&Request::Run { kernel: fresh, full: false, shard: None }).encode();
        assert_eq!(resp, oracle);
        // Exactly one injection: the fresh handle ran clean.
        assert_eq!(plan.injected(FaultSite::ExecPanic), 1);
    }

    #[test]
    fn full_run_panic_takes_the_same_quarantine_path() {
        let plan = Arc::new(FaultPlan::seeded(9).nth(FaultSite::ExecPanic, 1));
        let engine = Engine::new().with_fault_plan(plan);
        ssymv_inputs(&engine);
        let kernel = prepare(&engine);
        let resp = engine.handle(&Request::Run { kernel, full: true, shard: None });
        assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        let resp = engine.handle(&Request::Run { kernel, full: true, shard: None });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::KernelQuarantined, .. }),
            "{resp:?}"
        );
        assert_eq!(engine.serve_metrics().panics_caught.get(), 1);
    }

    #[test]
    fn panic_budget_circuit_breaks_the_spec_after_consecutive_panics() {
        // Every run of this spec panics. Without a budget, a client
        // bounces forever: prepare → panic → quarantine → fresh
        // prepare → panic. After `DEFAULT_PANIC_BUDGET` strikes the
        // *spec* is refused at prepare time, not just the handle.
        let plan = Arc::new(FaultPlan::seeded(3).rate(FaultSite::ExecPanic, 1_000_000));
        let engine = Engine::new().with_fault_plan(plan);
        ssymv_inputs(&engine);
        let mut handles = Vec::new();
        for _ in 0..DEFAULT_PANIC_BUDGET {
            let kernel = prepare(&engine);
            assert!(!handles.contains(&kernel), "quarantined handles must not satisfy dedup");
            handles.push(kernel);
            let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
            assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        }
        // Strike three: the bounce is broken before another doomed
        // compile, with a structured (retryable=false) refusal.
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        let Response::Error { code, message, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(code, ErrorCode::KernelQuarantined);
        assert!(message.contains("circuit-broken"), "{message}");
        // Re-registering an input bumps its pinned generation, which
        // re-keys the spec and re-opens the breaker.
        register_dense(&engine, "x", &[4], &[1.0, 2.0, 3.0, 4.0]);
        let kernel = prepare(&engine);
        assert!(!handles.contains(&kernel));
    }

    #[test]
    fn a_clean_run_resets_the_panic_streak() {
        let plan = Arc::new(FaultPlan::seeded(4).nth(FaultSite::ExecPanic, 1));
        let engine = Engine::new().with_fault_plan(plan).with_panic_budget(2);
        ssymv_inputs(&engine);
        let first = prepare(&engine);
        let resp = engine.handle(&Request::Run { kernel: first, full: false, shard: None });
        assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        // One strike is below the budget, so the spec re-prepares...
        let second = prepare(&engine);
        assert_ne!(second, first);
        // ...and a clean run wipes the streak — the budget counts
        // *consecutive* panics, not lifetime panics.
        let resp = engine.handle(&Request::Run { kernel: second, full: false, shard: None });
        assert!(matches!(resp, Response::Ran { .. }), "{resp:?}");
        let counts = relock(&engine.panic_counts);
        assert!(
            counts.values().all(|c| c.load(Ordering::Acquire) == 0),
            "a successful run must zero the spec's streak"
        );
    }

    #[test]
    fn a_zero_panic_budget_clamps_to_one_strike() {
        let plan = Arc::new(FaultPlan::seeded(6).nth(FaultSite::ExecPanic, 1));
        let engine = Engine::new().with_fault_plan(plan).with_panic_budget(0);
        ssymv_inputs(&engine);
        let kernel = prepare(&engine);
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::KernelQuarantined, .. }),
            "{resp:?}"
        );
    }

    /// Prepare the ssymv spec with `sharded: true`, returning the
    /// handle and the advertised merge schedule.
    fn prepare_sharded(engine: &Engine) -> (u64, Vec<(String, MergeRule)>) {
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: true,
        });
        match resp {
            Response::Prepared { kernel, split, .. } => {
                (kernel, split.expect("ssymv must advertise a merge schedule"))
            }
            other => panic!("prepare failed: {other:?}"),
        }
    }

    #[test]
    fn sharded_prepare_advertises_the_merge_schedule() {
        let engine = ssymv_engine();
        let (kernel, split) = prepare_sharded(&engine);
        // The symmetric ssymv scatters y[j] updates outside the owned
        // row, so shard partials must be folded with `+`, not
        // concatenated.
        assert_eq!(split, vec![("y".to_string(), MergeRule::Add)]);
        // `sharded` is advisory — the same spec dedupes to the same
        // handle as a plain prepare, and the plain response carries no
        // split payload, keeping non-sharded bytes unchanged.
        let plain = prepare(&engine);
        assert_eq!(kernel, plain, "`sharded` must not fork the dedup key");
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        let Response::Prepared { split, .. } = resp else { panic!("{resp:?}") };
        assert!(split.is_none(), "plain prepares must not grow a split payload");
    }

    #[test]
    fn shard_runs_merge_to_the_full_result_with_exact_counters() {
        let engine = ssymv_engine();
        let (kernel, split) = prepare_sharded(&engine);
        assert_eq!(split[0].1, MergeRule::Add);
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: None });
        let Response::Ran { outputs: full, counters: serial } = resp else { panic!("{resp:?}") };
        // Run both halves and fold them the way the router does:
        // partial 0 first, later shards applied in fixed shard order.
        let mut partials = Vec::new();
        let mut summed = CounterPayload::default();
        for k in 0..2 {
            let resp = engine.handle(&Request::Run { kernel, full: false, shard: Some((k, 2)) });
            let Response::Ran { outputs, counters } = resp else { panic!("{resp:?}") };
            assert_eq!(outputs.len(), 1);
            assert_eq!(outputs[0].dims, full[0].dims, "shard partials keep the full shape");
            summed.flops += counters.flops;
            summed.writes += counters.writes;
            summed.iterations += counters.iterations;
            for (name, n) in counters.reads {
                match summed.reads.iter_mut().find(|(have, _)| *have == name) {
                    Some((_, total)) => *total += n,
                    None => summed.reads.push((name, n)),
                }
            }
            partials.push(outputs.into_iter().next().unwrap().values);
        }
        let merged: Vec<u64> =
            partials[0].iter().zip(&partials[1]).map(|(a, b)| (a + b).to_bits()).collect();
        let want: Vec<u64> = full[0].values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(merged, want, "folded shard partials must be bit-identical to the full run");
        // Counters are integers, so the shard sum is exact — the
        // cluster's merged counters must equal a single process's.
        summed.reads.sort();
        let mut serial_reads = serial.reads.clone();
        serial_reads.sort();
        assert_eq!(summed.flops, serial.flops);
        assert_eq!(summed.writes, serial.writes);
        assert_eq!(summed.iterations, serial.iterations);
        assert_eq!(summed.reads, serial_reads);
    }

    #[test]
    fn shard_requests_are_validated_structurally() {
        let engine = ssymv_engine();
        let (kernel, _) = prepare_sharded(&engine);
        // `shard` + `full` is contradictory: output replication wants
        // the complete result, a shard computes one row range.
        let resp = engine.handle(&Request::Run { kernel, full: true, shard: Some((0, 2)) });
        assert!(matches!(resp, Response::Error { code: ErrorCode::InvalidKernel, .. }), "{resp:?}");
        // A non-splittable plan has no row ranges to shard, and its
        // sharded prepare advertises no merge schedule.
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: C[j, i] = A[i, j]".into(),
            sym: vec![],
            inputs: vec![],
            variant: Variant::Naive,
            threads: None,
            sharded: true,
        });
        let Response::Prepared { kernel: transpose, splittable, split, .. } = resp else {
            panic!("{resp:?}")
        };
        assert!(!splittable);
        assert!(split.is_none(), "non-splittable plans must not advertise a merge schedule");
        let resp =
            engine.handle(&Request::Run { kernel: transpose, full: false, shard: Some((0, 2)) });
        assert!(matches!(resp, Response::Error { code: ErrorCode::InvalidKernel, .. }), "{resp:?}");
        // The refusals are structural, not stateful: a legal shard run
        // on the splittable kernel still serves afterwards.
        let resp = engine.handle(&Request::Run { kernel, full: false, shard: Some((1, 2)) });
        assert!(matches!(resp, Response::Ran { .. }), "{resp:?}");
    }

    #[test]
    fn journal_write_failure_refuses_mutations_without_side_effects() {
        let dir = std::env::temp_dir().join(format!("systec-engine-jfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = Arc::new(FaultPlan::seeded(2).nth(FaultSite::JournalWrite, 2));
        let engine = Engine::new()
            .with_fault_plan(Arc::clone(&plan))
            .with_data_dir(&dir)
            .expect("open data dir");
        // First registration journals cleanly.
        register_dense(&engine, "a", &[4], &[1.0, 2.0, 3.0, 4.0]);
        // The second append is the injected failure: the registration
        // must be refused and the registry left exactly as before.
        let resp = engine.handle(&Request::RegisterTensor {
            name: "b".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![9.0; 4]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 1, "a refused registration must not apply");
        assert_eq!(plan.injected(FaultSite::JournalWrite), 1);
        // The journal on disk holds exactly the applied mutation: a
        // restart recovers "a" and nothing else.
        drop(engine);
        let recovered = Engine::new().with_data_dir(&dir).expect("reopen data dir");
        let Response::Stats { serve, .. } = recovered.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 1);
        assert_eq!(serve.recovery_replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_registry_survives_reopen_with_generations() {
        let dir = std::env::temp_dir().join(format!("systec-engine-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let oracle = {
            let engine = Engine::new().with_data_dir(&dir).expect("open data dir");
            ssymv_inputs(&engine);
            // Bump x so the recovered generation counter is nontrivial.
            register_dense(&engine, "x", &[4], &[1.0, 2.0, 3.0, 4.0]);
            let k = prepare(&engine);
            engine.handle(&Request::Run { kernel: k, full: false, shard: None }).encode()
        };
        let engine = Engine::new().with_data_dir(&dir).expect("reopen data dir");
        let Response::Stats { serve, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(serve.registry_tensors, 2);
        assert!(serve.recovery_replayed >= 2, "{}", serve.recovery_replayed);
        // Generations resume, not reset: the next x supersedes gen 1.
        let resp = engine.handle(&Request::RegisterTensor {
            name: "x".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![1.0, 2.0, 3.0, 4.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        let Response::Registered { generation, .. } = resp else { panic!("{resp:?}") };
        assert_eq!(generation, 2, "generation counters must survive restart");
        // And the recovered tensors serve byte-identically.
        let k = prepare(&engine);
        assert_eq!(
            engine.handle(&Request::Run { kernel: k, full: false, shard: None }).encode(),
            oracle
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
