//! The wire protocol: line-delimited JSON requests and responses.
//!
//! One request per line, one response line per request, in order. Every
//! request is a JSON object with an `"op"` field; every response is an
//! object with an `"ok"` boolean — `true` plus a `"reply"` tag naming
//! the payload shape, or `false` plus `"code"`/`"error"`. A malformed
//! line produces an [`Response::Error`] with code [`ErrorCode::Parse`];
//! the connection stays open (fault isolation is a test tier).
//!
//! | verb | request fields | response fields |
//! |---|---|---|
//! | `register_tensor` | `name`, `dims`, `dense` *or* `coo` \[, `format`, `placement`\] | `reply:"registered"`, `name`, `nnz`, `generation` |
//! | `unregister` | `name` | `reply:"unregistered"`, `name`, `existed` |
//! | `prepare` | `einsum` \[, `sym`, `inputs`, `variant`, `threads`, `sharded`\] | `reply:"prepared"`, `kernel`, `splittable` \[, `split`, `warning`\] |
//! | `run` | `kernel` \[, `full`, `shard`\] | `reply:"run"`, `outputs`, `counters` |
//! | `stats` | — | `reply:"stats"`, `cache`, `requests`, `pool`, `serve`, `kernels`, `slow` |
//! | `metrics` | — | `reply:"metrics"`, `text` (Prometheus exposition) |
//! | `ping` | — | `reply:"pong"` |
//! | `shutdown` | — | `reply:"shutting_down"` |
//!
//! Sharded serving adds three optional request fields and one reply. A
//! `register_tensor` `placement` of `"replicate"` asks a router to copy
//! the tensor to every shard instead of hashing it to one owner (a
//! single worker accepts and ignores it). A `prepare` with
//! `"sharded":true` asks for the cross-process merge classification:
//! when the plan is splittable the reply carries `split`, an object
//! mapping each output name to its merge rule — `"rows"` (each shard
//! owns a disjoint row range; concatenate in shard order) or
//! `"add"`/`"min"`/`"max"` (fold per-shard partials elementwise in
//! fixed shard order). A `run` with `"shard":[k, n]` executes only the
//! k-th of n top-level row ranges (0-based, `k < n`), reporting that
//! sub-range's outputs and exact counters; it is rejected with
//! `invalid_kernel` when combined with `full` or when the plan is not
//! splittable. A router answering for a dead worker uses the retryable
//! code `shard_unavailable`, and its `stats` verb answers with
//! `reply:"cluster_stats"` (`router` counters + a `shards` array)
//! instead of a worker's `reply:"stats"`.
//!
//! The `prepare` `warning` field, when present, is an object with a
//! stable machine-readable `kind` (currently only `"serial_fallback"`)
//! and a human-readable `message`. The `stats` reply extends the
//! original schema with per-kernel latency quantiles (`median_us`,
//! `p90_us`, `p99_us`, `max_us` — derived from a log-bucketed
//! histogram, absent before the first run), a `slow` count and log of
//! over-threshold runs, a `pool` section mirroring the worker-pool
//! counters, and a cache `waits` count (single-flight lookups that
//! blocked on another thread's build). The `metrics` reply carries the
//! same data as Prometheus text exposition format 0.0.4 in `text`.
//!
//! Determinism: run responses contain **no timing** (latency lives in
//! `stats` medians), output/counter maps are serialized in sorted name
//! order, and values use shortest-round-trip `f64` printing — so equal
//! executions produce byte-identical response lines, which the e2e tier
//! asserts against a direct-execution oracle.

use std::fmt;

use crate::json::Json;

/// Kind of a protocol failure, echoed in error responses as a stable
/// machine-readable string.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request line was not valid JSON or not a valid request shape.
    Parse,
    /// A named tensor is not in the registry.
    UnknownTensor,
    /// A kernel handle does not exist.
    UnknownKernel,
    /// The einsum or symmetry spec was rejected by the compiler.
    InvalidKernel,
    /// Registered tensor data failed validation (dims, bounds, finiteness).
    BadTensor,
    /// The request line exceeded the server's size cap. The connection
    /// receives this reply and is then closed after the reply drains.
    LineTooLong,
    /// The request sat in the scheduler past the server's per-request
    /// deadline and was answered without being executed.
    DeadlineExceeded,
    /// Admission control refused the work: the connection cap or the
    /// registered-bytes cap was reached.
    AdmissionRejected,
    /// A tensor pinned by this prepared kernel was re-registered since
    /// `prepare`; the kernel's snapshot is stale. Re-`prepare` to bind
    /// the new generation.
    StaleTensor,
    /// The executor hit an unexpected failure (including a caught panic)
    /// while serving this request. The request was not executed — or its
    /// output was discarded — and may be retried after the offending
    /// kernel is re-prepared.
    Internal,
    /// The kernel handle was quarantined after a panic during a previous
    /// run. The handle never serves again; `prepare` the same spec again
    /// to mint a fresh handle.
    KernelQuarantined,
    /// The shard that owns the requested key is down. Emitted by a
    /// router, never by a worker; retryable — the shard supervisor
    /// restarts dead workers and recovered tensors rejoin the ring.
    ShardUnavailable,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::UnknownTensor => "unknown_tensor",
            ErrorCode::UnknownKernel => "unknown_kernel",
            ErrorCode::InvalidKernel => "invalid_kernel",
            ErrorCode::BadTensor => "bad_tensor",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::AdmissionRejected => "admission_rejected",
            ErrorCode::StaleTensor => "stale_tensor",
            ErrorCode::Internal => "internal_error",
            ErrorCode::KernelQuarantined => "kernel_quarantined",
            ErrorCode::ShardUnavailable => "shard_unavailable",
        }
    }

    fn from_str(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "parse" => ErrorCode::Parse,
            "unknown_tensor" => ErrorCode::UnknownTensor,
            "unknown_kernel" => ErrorCode::UnknownKernel,
            "invalid_kernel" => ErrorCode::InvalidKernel,
            "bad_tensor" => ErrorCode::BadTensor,
            "line_too_long" => ErrorCode::LineTooLong,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "admission_rejected" => ErrorCode::AdmissionRejected,
            "stale_tensor" => ErrorCode::StaleTensor,
            "internal_error" => ErrorCode::Internal,
            "kernel_quarantined" => ErrorCode::KernelQuarantined,
            "shard_unavailable" => ErrorCode::ShardUnavailable,
            _ => return None,
        })
    }

    /// Whether a client may transparently retry the same request after a
    /// backoff. Transient conditions (queueing past the deadline,
    /// admission pressure, an executor fault that quarantined a kernel
    /// mid-flight, a shard that the supervisor will restart) are
    /// retryable; `kernel_quarantined` is not — the handle is dead
    /// until the client re-`prepare`s.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::DeadlineExceeded
                | ErrorCode::AdmissionRejected
                | ErrorCode::Internal
                | ErrorCode::ShardUnavailable
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A malformed request or response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Human-readable description.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> ProtoError {
        ProtoError { message: message.into() }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Tensor data carried by `register_tensor`.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorPayload {
    /// Row-major dense values (`dense` field).
    Dense(Vec<f64>),
    /// Coordinate entries `[c0, …, ck, value]` (`coo` field).
    Coo(Vec<(Vec<usize>, f64)>),
}

/// Requested storage for a registered tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StorageFormat {
    /// Pick from the payload: dense values stay dense, coordinates pack
    /// to CSF.
    #[default]
    Auto,
    /// Force dense storage.
    Dense,
    /// Force compressed (CSF) storage.
    Csf,
}

/// Where a router places a registered tensor. A single worker accepts
/// the field and ignores it (placement is a routing concern).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Consistent-hash the name to one owning shard (default).
    #[default]
    Hash,
    /// Copy the tensor to every shard, as sharded kernels require for
    /// their inputs.
    Replicate,
}

/// How a router combines one output's per-shard results into the
/// single-process answer, as reported by a `"sharded":true` prepare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeRule {
    /// Each shard owns a disjoint top-level row range: take shard k's
    /// rows `[k·E/n, (k+1)·E/n)` and concatenate in shard order.
    Rows,
    /// Fold per-shard partials elementwise with `+` in fixed shard
    /// order.
    Add,
    /// Fold per-shard partials elementwise with `min` in fixed shard
    /// order.
    Min,
    /// Fold per-shard partials elementwise with `max` in fixed shard
    /// order.
    Max,
}

impl MergeRule {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            MergeRule::Rows => "rows",
            MergeRule::Add => "add",
            MergeRule::Min => "min",
            MergeRule::Max => "max",
        }
    }

    fn from_str(s: &str) -> Option<MergeRule> {
        Some(match s {
            "rows" => MergeRule::Rows,
            "add" => MergeRule::Add,
            "min" => MergeRule::Min,
            "max" => MergeRule::Max,
            _ => return None,
        })
    }
}

/// Which compilation the `prepare` verb performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Variant {
    /// The symmetry-exploiting SySTeC compilation (default).
    #[default]
    Systec,
    /// The symmetry-oblivious naive kernel.
    Naive,
}

/// Kind of a structured warning attached to an otherwise-successful
/// response, echoed on the wire as a stable machine-readable string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarningKind {
    /// Worker threads were requested but the plan is not
    /// row-splittable; the kernel runs serially.
    SerialFallback,
}

impl WarningKind {
    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            WarningKind::SerialFallback => "serial_fallback",
        }
    }

    fn from_str(s: &str) -> Option<WarningKind> {
        match s {
            "serial_fallback" => Some(WarningKind::SerialFallback),
            _ => None,
        }
    }
}

/// A structured warning: a stable `kind` for machines plus a
/// human-readable `message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Machine-readable warning kind.
    pub kind: WarningKind,
    /// Human-readable description.
    pub message: String,
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Put a named tensor in the server's registry.
    RegisterTensor {
        /// Registry name.
        name: String,
        /// Tensor shape.
        dims: Vec<usize>,
        /// The data.
        payload: TensorPayload,
        /// Storage selection.
        format: StorageFormat,
        /// Routing placement (router-interpreted; workers ignore it).
        placement: Placement,
    },
    /// Remove a named tensor from the registry. Prepared kernels keep
    /// their pinned snapshot and continue to serve; only future
    /// `prepare`s stop resolving the name.
    Unregister {
        /// Registry name to remove.
        name: String,
    },
    /// Compile (or fetch from the plan cache) a kernel and bind it to
    /// registered tensors; yields a kernel handle.
    Prepare {
        /// The einsum, in the CLI's `for …: out[…] op expr` syntax.
        einsum: String,
        /// Symmetry declarations (`"A"` or `"A:0-1,2"`).
        sym: Vec<String>,
        /// Einsum tensor name → registry name. Unmapped tensors default
        /// to their own name.
        inputs: Vec<(String, String)>,
        /// Which compilation to run.
        variant: Variant,
        /// Worker threads per execution: `None` inherits the server's
        /// default parallelism; `Some(1)` forces serial, `Some(0)` all
        /// cores, `Some(n)` n workers.
        threads: Option<usize>,
        /// Ask for the cross-process merge classification: the reply
        /// carries `split` when the plan is splittable.
        sharded: bool,
    },
    /// Execute a prepared kernel.
    Run {
        /// The handle from `prepare`.
        kernel: u64,
        /// Also apply output replication (`run_full` semantics). Off the
        /// pooled zero-allocation path.
        full: bool,
        /// Execute only the k-th of n top-level row ranges (`(k, n)`,
        /// 0-based). Requires a splittable plan and `full: false`.
        shard: Option<(u64, u64)>,
    },
    /// Server statistics.
    Stats,
    /// Prometheus text exposition of the server's metrics.
    Metrics,
    /// Liveness check.
    Ping,
    /// Stop the server.
    Shutdown,
}

/// One output tensor in a run response.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputPayload {
    /// Output name.
    pub name: String,
    /// Shape.
    pub dims: Vec<usize>,
    /// Row-major values.
    pub values: Vec<f64>,
}

/// Work counters in a run response (sorted by tensor name).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CounterPayload {
    /// Semiring operations.
    pub flops: u64,
    /// Output element stores.
    pub writes: u64,
    /// Innermost loop-body executions.
    pub iterations: u64,
    /// Element loads per tensor, sorted by name.
    pub reads: Vec<(String, u64)>,
}

/// Plan-cache statistics in a stats response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CachePayload {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Build closures actually executed (single-flight: one per
    /// concurrently requested key).
    pub builds: u64,
    /// Plans evicted by the LRU policy.
    pub evictions: u64,
    /// Single-flight lookups that blocked on another thread's build.
    pub waits: u64,
    /// Plans currently cached.
    pub entries: u64,
}

/// Worker-pool statistics in a stats response (process-wide counters
/// from the vendored pool; all monotonic except `workers`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PoolPayload {
    /// Worker threads spawned so far.
    pub workers: u64,
    /// Tasks handed to the pool.
    pub submitted: u64,
    /// Tasks executed by worker threads.
    pub executed: u64,
    /// Tasks drained by the submitting thread while it waited (a
    /// chunk-imbalance signal: helpers pick up leftover work).
    pub helped: u64,
    /// Times a worker parked waiting for work.
    pub parks: u64,
    /// Times a parked worker was woken.
    pub wakeups: u64,
}

/// One over-threshold run in a stats response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowRunPayload {
    /// The kernel handle.
    pub kernel: u64,
    /// The run's latency in microseconds.
    pub us: u64,
}

/// Request counts in a stats response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RequestCountsPayload {
    /// `register_tensor` requests handled.
    pub register_tensor: u64,
    /// `prepare` requests handled.
    pub prepare: u64,
    /// `run` requests handled.
    pub run: u64,
    /// `stats` requests handled.
    pub stats: u64,
    /// `metrics` requests handled.
    pub metrics: u64,
    /// `ping` requests handled.
    pub ping: u64,
    /// `unregister` requests handled.
    pub unregister: u64,
    /// Requests answered with an error (including parse failures).
    pub errors: u64,
}

/// Serving-engine statistics in a stats response: registry lifecycle,
/// run-batch coalescing, and admission control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ServePayload {
    /// Tensors currently registered.
    pub registry_tensors: u64,
    /// Estimated bytes currently held by the registry.
    pub registry_bytes: u64,
    /// Unpinned tensors evicted by the LRU policy (monotonic).
    pub registry_evictions: u64,
    /// Live (name, generation) pins held by prepared kernels.
    pub pinned: u64,
    /// Worker-pool dispatches issued by the run scheduler (each may
    /// carry several coalesced runs).
    pub batch_dispatches: u64,
    /// Run requests served through batched dispatches.
    pub batched_runs: u64,
    /// Batch responses large enough to be encoded and fanned out on
    /// the dedicated replicator thread instead of the executor.
    pub offloaded_replications: u64,
    /// Requests currently queued in the scheduler.
    pub queued: u64,
    /// Connections refused at accept (`max-conns`).
    pub rejected_conns: u64,
    /// Registrations refused by the bytes cap (`max-bytes`).
    pub rejected_bytes: u64,
    /// Requests answered with `deadline_exceeded` before execution.
    pub deadline_exceeded: u64,
    /// Runs refused with `stale_tensor` (pinned data re-registered).
    pub stale_runs: u64,
    /// Executor panics caught and converted into `internal_error`
    /// replies (monotonic). The process never aborts on these.
    pub panics_caught: u64,
    /// Kernel handles quarantined after a caught panic. Quarantined
    /// handles answer `kernel_quarantined` until re-`prepare`d.
    pub quarantined_kernels: u64,
    /// Records appended to the write-ahead journal (monotonic; zero
    /// when the server runs without `--data-dir`).
    pub journal_records: u64,
    /// Bytes appended to the write-ahead journal (monotonic).
    pub journal_bytes: u64,
    /// fsync calls issued by the journal/snapshot writer (monotonic).
    pub journal_fsyncs: u64,
    /// Durable records replayed at the last startup recovery.
    pub recovery_replayed: u64,
    /// Torn-tail bytes truncated from the journal at the last recovery.
    pub recovery_truncated: u64,
}

/// Per-kernel statistics in a stats response.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStatPayload {
    /// The kernel handle.
    pub kernel: u64,
    /// The kernel's spec string (einsum + variant + symmetry).
    pub spec: String,
    /// Completed runs.
    pub runs: u64,
    /// Median run latency in microseconds, from the kernel's latency
    /// histogram (`None` before the first run).
    pub median_us: Option<f64>,
    /// 90th-percentile run latency in microseconds.
    pub p90_us: Option<f64>,
    /// 99th-percentile run latency in microseconds.
    pub p99_us: Option<f64>,
    /// Maximum observed run latency in microseconds.
    pub max_us: Option<f64>,
    /// Runs that exceeded the server's slow-run threshold.
    pub slow: u64,
}

/// Router-level request counts in a cluster-stats response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct RouterCountsPayload {
    /// `register_tensor` requests routed.
    pub register_tensor: u64,
    /// `prepare` requests routed.
    pub prepare: u64,
    /// `run` requests routed.
    pub run: u64,
    /// Runs that fanned out as per-shard sub-ranges and were merged.
    pub sharded_runs: u64,
    /// Requests broadcast to every shard (replicated registrations and
    /// sharded prepares).
    pub fanouts: u64,
    /// Tensor registrations replicated to every shard.
    pub replicated: u64,
    /// Requests answered with an error (including `shard_unavailable`).
    pub errors: u64,
}

/// One shard's row in a cluster-stats response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStatPayload {
    /// Shard ordinal (fixed merge order).
    pub shard: u64,
    /// The worker's listen address.
    pub addr: String,
    /// Whether the router currently holds a live connection.
    pub healthy: bool,
    /// Virtual nodes this shard occupies on the hash ring.
    pub vnodes: u64,
    /// Hash-placed tensors currently owned by this shard.
    pub keys: u64,
    /// Requests forwarded to this shard.
    pub forwarded: u64,
    /// Forwarded requests that failed at the transport (connection
    /// refused, reset, or timed out).
    pub errors: u64,
}

/// A server response.
///
/// `Stats` is much larger than the hot variants (`Ran`, `Error`), but
/// responses are built transiently — encoded to a line and dropped, one
/// per request, never collected — so the size skew costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `register_tensor` succeeded.
    Registered {
        /// The registered name.
        name: String,
        /// Stored nonzeros (dense: the element count).
        nnz: u64,
        /// The name's registration generation (0 for a first
        /// registration, +1 per re-registration — persists across
        /// unregister, so a kernel pinned to an old generation can
        /// always detect staleness).
        generation: u64,
    },
    /// `unregister` succeeded.
    Unregistered {
        /// The removed name.
        name: String,
        /// Whether the name was registered (`false` is still success:
        /// unregister is idempotent).
        existed: bool,
    },
    /// `prepare` succeeded.
    Prepared {
        /// The kernel handle for `run`.
        kernel: u64,
        /// Whether executions can dispatch worker threads.
        splittable: bool,
        /// Output name → cross-process merge rule, sorted by name.
        /// Present only for a `"sharded":true` prepare of a splittable
        /// plan.
        split: Option<Vec<(String, MergeRule)>>,
        /// A structured warning (currently only the serial fallback,
        /// when threads were requested on a non-splittable plan).
        warning: Option<Warning>,
    },
    /// `run` succeeded.
    Ran {
        /// Output tensors, sorted by name.
        outputs: Vec<OutputPayload>,
        /// Exact work counters.
        counters: CounterPayload,
    },
    /// `stats` payload.
    Stats {
        /// Plan-cache statistics.
        cache: CachePayload,
        /// Request counts.
        requests: RequestCountsPayload,
        /// Worker-pool statistics.
        pool: PoolPayload,
        /// Serving-engine statistics (registry, batching, admission).
        serve: ServePayload,
        /// Per-kernel statistics, sorted by handle.
        kernels: Vec<KernelStatPayload>,
        /// Most recent over-threshold runs, oldest first.
        slow: Vec<SlowRunPayload>,
    },
    /// `stats` payload from a router: cluster-wide health instead of a
    /// single worker's engine counters.
    ClusterStats {
        /// Router-level request counts.
        router: RouterCountsPayload,
        /// Per-shard health and traffic, sorted by shard ordinal.
        shards: Vec<ShardStatPayload>,
    },
    /// `metrics` payload.
    Metrics {
        /// Prometheus text exposition (format 0.0.4); multi-line, so
        /// it rides the wire as one JSON-escaped string.
        text: String,
    },
    /// `ping` reply.
    Pong,
    /// `shutdown` acknowledged; the server stops after this line.
    ShuttingDown,
    /// Any failure.
    Error {
        /// Machine-readable failure kind.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error { code, message: message.into() }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

pub(crate) fn dims_json(dims: &[usize]) -> Json {
    Json::Arr(dims.iter().map(|&d| Json::num_usize(d)).collect())
}

/// Encodes one tensor value. JSON has no non-finite numbers, but served
/// outputs legitimately contain them (`min=` kernels report the
/// never-updated identity `inf`), so those encode as the strings
/// `"inf"`, `"-inf"`, `"nan"` and decode back exactly (all NaNs decode
/// to the canonical `f64::NAN`).
pub(crate) fn value_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

pub(crate) fn value_from_json(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Str(s) => match s.as_str() {
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            "nan" => Some(f64::NAN),
            _ => None,
        },
        _ => None,
    }
}

pub(crate) fn values_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| value_json(v)).collect())
}

impl Request {
    /// Serializes to one line (no trailing newline).
    pub fn encode(&self) -> String {
        let json = match self {
            Request::RegisterTensor { name, dims, payload, format, placement } => {
                let mut pairs = vec![
                    ("op", Json::Str("register_tensor".into())),
                    ("name", Json::Str(name.clone())),
                    ("dims", dims_json(dims)),
                ];
                match payload {
                    TensorPayload::Dense(values) => pairs.push(("dense", values_json(values))),
                    TensorPayload::Coo(entries) => pairs.push((
                        "coo",
                        Json::Arr(
                            entries
                                .iter()
                                .map(|(coords, v)| {
                                    let mut item: Vec<Json> =
                                        coords.iter().map(|&c| Json::num_usize(c)).collect();
                                    item.push(value_json(*v));
                                    Json::Arr(item)
                                })
                                .collect(),
                        ),
                    )),
                }
                match format {
                    StorageFormat::Auto => {}
                    StorageFormat::Dense => pairs.push(("format", Json::Str("dense".into()))),
                    StorageFormat::Csf => pairs.push(("format", Json::Str("csf".into()))),
                }
                if *placement == Placement::Replicate {
                    pairs.push(("placement", Json::Str("replicate".into())));
                }
                Json::obj(pairs)
            }
            Request::Unregister { name } => Json::obj([
                ("op", Json::Str("unregister".into())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Prepare { einsum, sym, inputs, variant, threads, sharded } => {
                let mut pairs = vec![
                    ("op", Json::Str("prepare".into())),
                    ("einsum", Json::Str(einsum.clone())),
                ];
                if !sym.is_empty() {
                    pairs.push((
                        "sym",
                        Json::Arr(sym.iter().map(|s| Json::Str(s.clone())).collect()),
                    ));
                }
                if !inputs.is_empty() {
                    pairs.push((
                        "inputs",
                        Json::Obj(
                            inputs.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
                        ),
                    ));
                }
                if *variant == Variant::Naive {
                    pairs.push(("variant", Json::Str("naive".into())));
                }
                if let Some(threads) = threads {
                    pairs.push(("threads", Json::num_usize(*threads)));
                }
                if *sharded {
                    pairs.push(("sharded", Json::Bool(true)));
                }
                Json::obj(pairs)
            }
            Request::Run { kernel, full, shard } => {
                let mut pairs =
                    vec![("op", Json::Str("run".into())), ("kernel", Json::num_u64(*kernel))];
                if *full {
                    pairs.push(("full", Json::Bool(true)));
                }
                if let Some((k, n)) = shard {
                    pairs.push(("shard", Json::Arr(vec![Json::num_u64(*k), Json::num_u64(*n)])));
                }
                Json::obj(pairs)
            }
            Request::Stats => Json::obj([("op", Json::Str("stats".into()))]),
            Request::Metrics => Json::obj([("op", Json::Str("metrics".into()))]),
            Request::Ping => Json::obj([("op", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj([("op", Json::Str("shutdown".into()))]),
        };
        json.to_string()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] describing the malformation; never
    /// panics, whatever the input.
    pub fn decode(line: &str) -> Result<Request, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::new(e.to_string()))?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("request object needs a string `op` field"))?;
        match op {
            "register_tensor" => {
                let name = require_str(&json, "name")?;
                let dims = usize_array(&json, "dims")?;
                let payload = match (json.get("dense"), json.get("coo")) {
                    (Some(d), None) => TensorPayload::Dense(f64_array(d, "dense")?),
                    (None, Some(c)) => {
                        let rank = dims.len();
                        let rows =
                            c.as_arr().ok_or_else(|| ProtoError::new("`coo` must be an array"))?;
                        let mut entries = Vec::with_capacity(rows.len());
                        for row in rows {
                            let cells = row.as_arr().filter(|cells| cells.len() == rank + 1);
                            let cells = cells.ok_or_else(|| {
                                ProtoError::new(format!(
                                    "each `coo` entry must be an array of {rank} coordinates + a value"
                                ))
                            })?;
                            let coords = cells[..rank]
                                .iter()
                                .map(|c| {
                                    c.as_usize().ok_or_else(|| {
                                        ProtoError::new(
                                            "`coo` coordinates must be non-negative integers",
                                        )
                                    })
                                })
                                .collect::<Result<Vec<usize>, ProtoError>>()?;
                            let v = value_from_json(&cells[rank])
                                .ok_or_else(|| ProtoError::new("`coo` values must be numbers"))?;
                            entries.push((coords, v));
                        }
                        TensorPayload::Coo(entries)
                    }
                    _ => {
                        return Err(ProtoError::new(
                            "register_tensor needs exactly one of `dense` or `coo`",
                        ))
                    }
                };
                let format = match json.get("format").map(|f| f.as_str()) {
                    None => StorageFormat::Auto,
                    Some(Some("dense")) => StorageFormat::Dense,
                    Some(Some("csf")) => StorageFormat::Csf,
                    Some(other) => {
                        return Err(ProtoError::new(format!(
                            "unknown `format` {other:?} (expected \"dense\" or \"csf\")"
                        )))
                    }
                };
                let placement = match json.get("placement").map(|p| p.as_str()) {
                    None | Some(Some("hash")) => Placement::Hash,
                    Some(Some("replicate")) => Placement::Replicate,
                    Some(other) => {
                        return Err(ProtoError::new(format!(
                            "unknown `placement` {other:?} (expected \"hash\" or \"replicate\")"
                        )))
                    }
                };
                Ok(Request::RegisterTensor { name, dims, payload, format, placement })
            }
            "unregister" => Ok(Request::Unregister { name: require_str(&json, "name")? }),
            "prepare" => {
                let einsum = require_str(&json, "einsum")?;
                let sym = match json.get("sym") {
                    None => Vec::new(),
                    Some(s) => s
                        .as_arr()
                        .ok_or_else(|| ProtoError::new("`sym` must be an array of strings"))?
                        .iter()
                        .map(|d| {
                            d.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| ProtoError::new("`sym` must be an array of strings"))
                        })
                        .collect::<Result<Vec<String>, ProtoError>>()?,
                };
                let inputs = match json.get("inputs") {
                    None => Vec::new(),
                    Some(m) => m
                        .as_obj()
                        .ok_or_else(|| ProtoError::new("`inputs` must be an object"))?
                        .iter()
                        .map(|(k, v)| {
                            v.as_str().map(|v| (k.clone(), v.to_string())).ok_or_else(|| {
                                ProtoError::new("`inputs` values must be registry names")
                            })
                        })
                        .collect::<Result<Vec<(String, String)>, ProtoError>>()?,
                };
                let variant = match json.get("variant").map(|v| v.as_str()) {
                    None | Some(Some("systec")) => Variant::Systec,
                    Some(Some("naive")) => Variant::Naive,
                    Some(other) => {
                        return Err(ProtoError::new(format!(
                            "unknown `variant` {other:?} (expected \"systec\" or \"naive\")"
                        )))
                    }
                };
                let threads = match json.get("threads") {
                    None => None,
                    Some(t) => Some(t.as_usize().ok_or_else(|| {
                        ProtoError::new("`threads` must be a non-negative integer")
                    })?),
                };
                let sharded = match json.get("sharded") {
                    None => false,
                    Some(s) => {
                        s.as_bool().ok_or_else(|| ProtoError::new("`sharded` must be a boolean"))?
                    }
                };
                Ok(Request::Prepare { einsum, sym, inputs, variant, threads, sharded })
            }
            "run" => {
                let kernel = json
                    .get("kernel")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::new("run needs an integer `kernel` handle"))?;
                let full = match json.get("full") {
                    None => false,
                    Some(f) => {
                        f.as_bool().ok_or_else(|| ProtoError::new("`full` must be a boolean"))?
                    }
                };
                let shard = match json.get("shard") {
                    None => None,
                    Some(s) => {
                        let pair = s
                            .as_arr()
                            .filter(|pair| pair.len() == 2)
                            .and_then(|pair| Some((pair[0].as_u64()?, pair[1].as_u64()?)))
                            .ok_or_else(|| {
                                ProtoError::new("`shard` must be a `[k, n]` pair of integers")
                            })?;
                        if pair.1 == 0 || pair.0 >= pair.1 {
                            return Err(ProtoError::new(format!(
                                "`shard` ordinal {} of {} is out of range",
                                pair.0, pair.1
                            )));
                        }
                        Some(pair)
                    }
                };
                Ok(Request::Run { kernel, full, shard })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::new(format!("unknown op `{other}`"))),
        }
    }
}

fn require_str(json: &Json, field: &str) -> Result<String, ProtoError> {
    json.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::new(format!("missing string field `{field}`")))
}

fn optional_f64(json: &Json, field: &str) -> Result<Option<f64>, ProtoError> {
    match json.get(field) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ProtoError::new(format!("`{field}` must be a number"))),
    }
}

pub(crate) fn usize_array(json: &Json, field: &str) -> Result<Vec<usize>, ProtoError> {
    json.get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| ProtoError::new(format!("missing array field `{field}`")))?
        .iter()
        .map(|d| {
            d.as_usize().ok_or_else(|| {
                ProtoError::new(format!("`{field}` must hold non-negative integers"))
            })
        })
        .collect()
}

pub(crate) fn f64_array(v: &Json, field: &str) -> Result<Vec<f64>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| ProtoError::new(format!("`{field}` must be an array of numbers")))?
        .iter()
        .map(|x| {
            value_from_json(x)
                .ok_or_else(|| ProtoError::new(format!("`{field}` must hold numeric values")))
        })
        .collect()
}

impl Response {
    /// Serializes to one line (no trailing newline). Field order is
    /// fixed and maps are pre-sorted by the engine, so equal payloads
    /// encode byte-identically.
    pub fn encode(&self) -> String {
        let json = match self {
            Response::Registered { name, nnz, generation } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("registered".into())),
                ("name", Json::Str(name.clone())),
                ("nnz", Json::num_u64(*nnz)),
                ("generation", Json::num_u64(*generation)),
            ]),
            Response::Unregistered { name, existed } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("unregistered".into())),
                ("name", Json::Str(name.clone())),
                ("existed", Json::Bool(*existed)),
            ]),
            Response::Prepared { kernel, splittable, split, warning } => {
                let mut pairs = vec![
                    ("ok", Json::Bool(true)),
                    ("reply", Json::Str("prepared".into())),
                    ("kernel", Json::num_u64(*kernel)),
                    ("splittable", Json::Bool(*splittable)),
                ];
                if let Some(split) = split {
                    pairs.push((
                        "split",
                        Json::Obj(
                            split
                                .iter()
                                .map(|(name, rule)| (name.clone(), Json::Str(rule.as_str().into())))
                                .collect(),
                        ),
                    ));
                }
                if let Some(warning) = warning {
                    pairs.push((
                        "warning",
                        Json::obj([
                            ("kind", Json::Str(warning.kind.as_str().into())),
                            ("message", Json::Str(warning.message.clone())),
                        ]),
                    ));
                }
                Json::obj(pairs)
            }
            Response::Ran { outputs, counters } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("run".into())),
                (
                    "outputs",
                    Json::Obj(
                        outputs
                            .iter()
                            .map(|o| {
                                (
                                    o.name.clone(),
                                    Json::obj([
                                        ("dims", dims_json(&o.dims)),
                                        ("values", values_json(&o.values)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "counters",
                    Json::obj([
                        ("flops", Json::num_u64(counters.flops)),
                        ("writes", Json::num_u64(counters.writes)),
                        ("iterations", Json::num_u64(counters.iterations)),
                        (
                            "reads",
                            Json::Obj(
                                counters
                                    .reads
                                    .iter()
                                    .map(|(name, n)| (name.clone(), Json::num_u64(*n)))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            ]),
            Response::Stats { cache, requests, pool, serve, kernels, slow } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("stats".into())),
                (
                    "cache",
                    Json::obj([
                        ("hits", Json::num_u64(cache.hits)),
                        ("misses", Json::num_u64(cache.misses)),
                        ("builds", Json::num_u64(cache.builds)),
                        ("evictions", Json::num_u64(cache.evictions)),
                        ("waits", Json::num_u64(cache.waits)),
                        ("entries", Json::num_u64(cache.entries)),
                    ]),
                ),
                (
                    "requests",
                    Json::obj([
                        ("register_tensor", Json::num_u64(requests.register_tensor)),
                        ("prepare", Json::num_u64(requests.prepare)),
                        ("run", Json::num_u64(requests.run)),
                        ("stats", Json::num_u64(requests.stats)),
                        ("metrics", Json::num_u64(requests.metrics)),
                        ("ping", Json::num_u64(requests.ping)),
                        ("unregister", Json::num_u64(requests.unregister)),
                        ("errors", Json::num_u64(requests.errors)),
                    ]),
                ),
                (
                    "pool",
                    Json::obj([
                        ("workers", Json::num_u64(pool.workers)),
                        ("submitted", Json::num_u64(pool.submitted)),
                        ("executed", Json::num_u64(pool.executed)),
                        ("helped", Json::num_u64(pool.helped)),
                        ("parks", Json::num_u64(pool.parks)),
                        ("wakeups", Json::num_u64(pool.wakeups)),
                    ]),
                ),
                (
                    "serve",
                    Json::obj([
                        ("registry_tensors", Json::num_u64(serve.registry_tensors)),
                        ("registry_bytes", Json::num_u64(serve.registry_bytes)),
                        ("registry_evictions", Json::num_u64(serve.registry_evictions)),
                        ("pinned", Json::num_u64(serve.pinned)),
                        ("batch_dispatches", Json::num_u64(serve.batch_dispatches)),
                        ("batched_runs", Json::num_u64(serve.batched_runs)),
                        ("offloaded_replications", Json::num_u64(serve.offloaded_replications)),
                        ("queued", Json::num_u64(serve.queued)),
                        ("rejected_conns", Json::num_u64(serve.rejected_conns)),
                        ("rejected_bytes", Json::num_u64(serve.rejected_bytes)),
                        ("deadline_exceeded", Json::num_u64(serve.deadline_exceeded)),
                        ("stale_runs", Json::num_u64(serve.stale_runs)),
                        ("panics_caught", Json::num_u64(serve.panics_caught)),
                        ("quarantined_kernels", Json::num_u64(serve.quarantined_kernels)),
                        ("journal_records", Json::num_u64(serve.journal_records)),
                        ("journal_bytes", Json::num_u64(serve.journal_bytes)),
                        ("journal_fsyncs", Json::num_u64(serve.journal_fsyncs)),
                        ("recovery_replayed", Json::num_u64(serve.recovery_replayed)),
                        ("recovery_truncated", Json::num_u64(serve.recovery_truncated)),
                    ]),
                ),
                (
                    "kernels",
                    Json::Arr(
                        kernels
                            .iter()
                            .map(|k| {
                                let mut pairs = vec![
                                    ("kernel", Json::num_u64(k.kernel)),
                                    ("spec", Json::Str(k.spec.clone())),
                                    ("runs", Json::num_u64(k.runs)),
                                ];
                                if let Some(m) = k.median_us {
                                    pairs.push(("median_us", Json::Num(m)));
                                }
                                if let Some(m) = k.p90_us {
                                    pairs.push(("p90_us", Json::Num(m)));
                                }
                                if let Some(m) = k.p99_us {
                                    pairs.push(("p99_us", Json::Num(m)));
                                }
                                if let Some(m) = k.max_us {
                                    pairs.push(("max_us", Json::Num(m)));
                                }
                                pairs.push(("slow", Json::num_u64(k.slow)));
                                Json::obj(pairs)
                            })
                            .collect(),
                    ),
                ),
                (
                    "slow",
                    Json::Arr(
                        slow.iter()
                            .map(|s| {
                                Json::obj([
                                    ("kernel", Json::num_u64(s.kernel)),
                                    ("us", Json::num_u64(s.us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::ClusterStats { router, shards } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("cluster_stats".into())),
                (
                    "router",
                    Json::obj([
                        ("register_tensor", Json::num_u64(router.register_tensor)),
                        ("prepare", Json::num_u64(router.prepare)),
                        ("run", Json::num_u64(router.run)),
                        ("sharded_runs", Json::num_u64(router.sharded_runs)),
                        ("fanouts", Json::num_u64(router.fanouts)),
                        ("replicated", Json::num_u64(router.replicated)),
                        ("errors", Json::num_u64(router.errors)),
                    ]),
                ),
                (
                    "shards",
                    Json::Arr(
                        shards
                            .iter()
                            .map(|s| {
                                Json::obj([
                                    ("shard", Json::num_u64(s.shard)),
                                    ("addr", Json::Str(s.addr.clone())),
                                    ("healthy", Json::Bool(s.healthy)),
                                    ("vnodes", Json::num_u64(s.vnodes)),
                                    ("keys", Json::num_u64(s.keys)),
                                    ("forwarded", Json::num_u64(s.forwarded)),
                                    ("errors", Json::num_u64(s.errors)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Metrics { text } => Json::obj([
                ("ok", Json::Bool(true)),
                ("reply", Json::Str("metrics".into())),
                ("text", Json::Str(text.clone())),
            ]),
            Response::Pong => {
                Json::obj([("ok", Json::Bool(true)), ("reply", Json::Str("pong".into()))])
            }
            Response::ShuttingDown => {
                Json::obj([("ok", Json::Bool(true)), ("reply", Json::Str("shutting_down".into()))])
            }
            Response::Error { code, message } => Json::obj([
                ("ok", Json::Bool(false)),
                ("code", Json::Str(code.as_str().into())),
                ("error", Json::Str(message.clone())),
            ]),
        };
        json.to_string()
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] describing the malformation; never
    /// panics, whatever the input.
    pub fn decode(line: &str) -> Result<Response, ProtoError> {
        let json = Json::parse(line).map_err(|e| ProtoError::new(e.to_string()))?;
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| ProtoError::new("response object needs a boolean `ok` field"))?;
        if !ok {
            let code = json
                .get("code")
                .and_then(Json::as_str)
                .and_then(ErrorCode::from_str)
                .ok_or_else(|| ProtoError::new("error response needs a known `code`"))?;
            let message = require_str(&json, "error")?;
            return Ok(Response::Error { code, message });
        }
        let reply = json
            .get("reply")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("ok response needs a `reply` tag"))?;
        match reply {
            "registered" => Ok(Response::Registered {
                name: require_str(&json, "name")?,
                nnz: json
                    .get("nnz")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::new("registered reply needs integer `nnz`"))?,
                generation: json.get("generation").and_then(Json::as_u64).ok_or_else(|| {
                    ProtoError::new("registered reply needs integer `generation`")
                })?,
            }),
            "unregistered" => Ok(Response::Unregistered {
                name: require_str(&json, "name")?,
                existed: json
                    .get("existed")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ProtoError::new("unregistered reply needs boolean `existed`"))?,
            }),
            "prepared" => Ok(Response::Prepared {
                kernel: json
                    .get("kernel")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ProtoError::new("prepared reply needs integer `kernel`"))?,
                splittable: json
                    .get("splittable")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| ProtoError::new("prepared reply needs boolean `splittable`"))?,
                split: match json.get("split") {
                    None => None,
                    Some(s) => Some(
                        s.as_obj()
                            .ok_or_else(|| ProtoError::new("`split` must be an object"))?
                            .iter()
                            .map(|(name, rule)| {
                                rule.as_str()
                                    .and_then(MergeRule::from_str)
                                    .map(|rule| (name.clone(), rule))
                                    .ok_or_else(|| {
                                        ProtoError::new("`split` values must be known merge rules")
                                    })
                            })
                            .collect::<Result<Vec<(String, MergeRule)>, ProtoError>>()?,
                    ),
                },
                warning: match json.get("warning") {
                    None => None,
                    Some(w) => {
                        let kind = w
                            .get("kind")
                            .and_then(Json::as_str)
                            .and_then(WarningKind::from_str)
                            .ok_or_else(|| ProtoError::new("`warning` needs a known `kind`"))?;
                        Some(Warning { kind, message: require_str(w, "message")? })
                    }
                },
            }),
            "run" => {
                let outputs = json
                    .get("outputs")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| ProtoError::new("run reply needs an `outputs` object"))?
                    .iter()
                    .map(|(name, o)| {
                        Ok(OutputPayload {
                            name: name.clone(),
                            dims: usize_array(o, "dims")?,
                            values: o
                                .get("values")
                                .map(|v| f64_array(v, "values"))
                                .transpose()?
                                .ok_or_else(|| ProtoError::new("output needs `values`"))?,
                        })
                    })
                    .collect::<Result<Vec<OutputPayload>, ProtoError>>()?;
                let c = json
                    .get("counters")
                    .ok_or_else(|| ProtoError::new("run reply needs `counters`"))?;
                let counter_u64 = |field: &str| {
                    c.get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("counters need integer `{field}`")))
                };
                let counters = CounterPayload {
                    flops: counter_u64("flops")?,
                    writes: counter_u64("writes")?,
                    iterations: counter_u64("iterations")?,
                    reads: c
                        .get("reads")
                        .and_then(Json::as_obj)
                        .ok_or_else(|| ProtoError::new("counters need a `reads` object"))?
                        .iter()
                        .map(|(name, n)| {
                            n.as_u64()
                                .map(|n| (name.clone(), n))
                                .ok_or_else(|| ProtoError::new("`reads` values must be integers"))
                        })
                        .collect::<Result<Vec<(String, u64)>, ProtoError>>()?,
                };
                Ok(Response::Ran { outputs, counters })
            }
            "stats" => {
                let cache_json = json
                    .get("cache")
                    .ok_or_else(|| ProtoError::new("stats reply needs `cache`"))?;
                let g = |field: &str| {
                    cache_json
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("cache needs integer `{field}`")))
                };
                let cache = CachePayload {
                    hits: g("hits")?,
                    misses: g("misses")?,
                    builds: g("builds")?,
                    evictions: g("evictions")?,
                    waits: g("waits")?,
                    entries: g("entries")?,
                };
                let req_json = json
                    .get("requests")
                    .ok_or_else(|| ProtoError::new("stats reply needs `requests`"))?;
                let r = |field: &str| {
                    req_json
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("requests need integer `{field}`")))
                };
                let requests = RequestCountsPayload {
                    register_tensor: r("register_tensor")?,
                    prepare: r("prepare")?,
                    run: r("run")?,
                    stats: r("stats")?,
                    metrics: r("metrics")?,
                    ping: r("ping")?,
                    unregister: r("unregister")?,
                    errors: r("errors")?,
                };
                let pool_json =
                    json.get("pool").ok_or_else(|| ProtoError::new("stats reply needs `pool`"))?;
                let p = |field: &str| {
                    pool_json
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("pool needs integer `{field}`")))
                };
                let pool = PoolPayload {
                    workers: p("workers")?,
                    submitted: p("submitted")?,
                    executed: p("executed")?,
                    helped: p("helped")?,
                    parks: p("parks")?,
                    wakeups: p("wakeups")?,
                };
                let serve_json = json
                    .get("serve")
                    .ok_or_else(|| ProtoError::new("stats reply needs `serve`"))?;
                let sv = |field: &str| {
                    serve_json
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("serve needs integer `{field}`")))
                };
                let serve = ServePayload {
                    registry_tensors: sv("registry_tensors")?,
                    registry_bytes: sv("registry_bytes")?,
                    registry_evictions: sv("registry_evictions")?,
                    pinned: sv("pinned")?,
                    batch_dispatches: sv("batch_dispatches")?,
                    batched_runs: sv("batched_runs")?,
                    offloaded_replications: sv("offloaded_replications")?,
                    queued: sv("queued")?,
                    rejected_conns: sv("rejected_conns")?,
                    rejected_bytes: sv("rejected_bytes")?,
                    deadline_exceeded: sv("deadline_exceeded")?,
                    stale_runs: sv("stale_runs")?,
                    panics_caught: sv("panics_caught")?,
                    quarantined_kernels: sv("quarantined_kernels")?,
                    journal_records: sv("journal_records")?,
                    journal_bytes: sv("journal_bytes")?,
                    journal_fsyncs: sv("journal_fsyncs")?,
                    recovery_replayed: sv("recovery_replayed")?,
                    recovery_truncated: sv("recovery_truncated")?,
                };
                let kernels = json
                    .get("kernels")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("stats reply needs a `kernels` array"))?
                    .iter()
                    .map(|k| {
                        Ok(KernelStatPayload {
                            kernel: k
                                .get("kernel")
                                .and_then(Json::as_u64)
                                .ok_or_else(|| ProtoError::new("kernel stat needs `kernel`"))?,
                            spec: require_str(k, "spec")?,
                            runs: k
                                .get("runs")
                                .and_then(Json::as_u64)
                                .ok_or_else(|| ProtoError::new("kernel stat needs `runs`"))?,
                            median_us: optional_f64(k, "median_us")?,
                            p90_us: optional_f64(k, "p90_us")?,
                            p99_us: optional_f64(k, "p99_us")?,
                            max_us: optional_f64(k, "max_us")?,
                            slow: k
                                .get("slow")
                                .and_then(Json::as_u64)
                                .ok_or_else(|| ProtoError::new("kernel stat needs `slow`"))?,
                        })
                    })
                    .collect::<Result<Vec<KernelStatPayload>, ProtoError>>()?;
                let slow = json
                    .get("slow")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("stats reply needs a `slow` array"))?
                    .iter()
                    .map(|s| {
                        let f = |field: &str| {
                            s.get(field).and_then(Json::as_u64).ok_or_else(|| {
                                ProtoError::new(format!("slow entry needs integer `{field}`"))
                            })
                        };
                        Ok(SlowRunPayload { kernel: f("kernel")?, us: f("us")? })
                    })
                    .collect::<Result<Vec<SlowRunPayload>, ProtoError>>()?;
                Ok(Response::Stats { cache, requests, pool, serve, kernels, slow })
            }
            "cluster_stats" => {
                let router_json = json
                    .get("router")
                    .ok_or_else(|| ProtoError::new("cluster_stats reply needs `router`"))?;
                let rc = |field: &str| {
                    router_json
                        .get(field)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new(format!("router needs integer `{field}`")))
                };
                let router = RouterCountsPayload {
                    register_tensor: rc("register_tensor")?,
                    prepare: rc("prepare")?,
                    run: rc("run")?,
                    sharded_runs: rc("sharded_runs")?,
                    fanouts: rc("fanouts")?,
                    replicated: rc("replicated")?,
                    errors: rc("errors")?,
                };
                let shards = json
                    .get("shards")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("cluster_stats reply needs a `shards` array"))?
                    .iter()
                    .map(|s| {
                        let f = |field: &str| {
                            s.get(field).and_then(Json::as_u64).ok_or_else(|| {
                                ProtoError::new(format!("shard entry needs integer `{field}`"))
                            })
                        };
                        Ok(ShardStatPayload {
                            shard: f("shard")?,
                            addr: require_str(s, "addr")?,
                            healthy: s.get("healthy").and_then(Json::as_bool).ok_or_else(|| {
                                ProtoError::new("shard entry needs boolean `healthy`")
                            })?,
                            vnodes: f("vnodes")?,
                            keys: f("keys")?,
                            forwarded: f("forwarded")?,
                            errors: f("errors")?,
                        })
                    })
                    .collect::<Result<Vec<ShardStatPayload>, ProtoError>>()?;
                Ok(Response::ClusterStats { router, shards })
            }
            "metrics" => Ok(Response::Metrics { text: require_str(&json, "text")? }),
            "pong" => Ok(Response::Pong),
            "shutting_down" => Ok(Response::ShuttingDown),
            other => Err(ProtoError::new(format!("unknown reply tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encodings_roundtrip() {
        let reqs = [
            Request::RegisterTensor {
                name: "A".into(),
                dims: vec![4, 4],
                payload: TensorPayload::Coo(vec![(vec![0, 1], 2.5), (vec![1, 0], 2.5)]),
                format: StorageFormat::Auto,
                placement: Placement::Hash,
            },
            Request::RegisterTensor {
                name: "weird \"name\"\n".into(),
                dims: vec![3],
                payload: TensorPayload::Dense(vec![1.0, -0.5, 3.25]),
                format: StorageFormat::Csf,
                placement: Placement::Replicate,
            },
            Request::Prepare {
                einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
                sym: vec!["A".into()],
                inputs: vec![("A".into(), "big".into()), ("x".into(), "vec".into())],
                variant: Variant::Naive,
                threads: Some(4),
                sharded: false,
            },
            Request::Prepare {
                einsum: "for i: y[i] = x[i]".into(),
                sym: vec![],
                inputs: vec![],
                variant: Variant::Systec,
                threads: None,
                sharded: true,
            },
            Request::Prepare {
                einsum: "for i: y[i] = x[i]".into(),
                sym: vec![],
                inputs: vec![],
                variant: Variant::Systec,
                // An explicit 1 is encoded (it FORCES serial; absence
                // inherits the server default).
                threads: Some(1),
                sharded: false,
            },
            Request::Unregister { name: "big_matrix".into() },
            Request::Unregister { name: "weird \"name\"\n".into() },
            Request::Run { kernel: 3, full: true, shard: None },
            Request::Run { kernel: 0, full: false, shard: None },
            Request::Run { kernel: 5, full: false, shard: Some((0, 3)) },
            Request::Run { kernel: 5, full: false, shard: Some((2, 3)) },
            Request::Stats,
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.encode();
            assert!(!line.contains('\n'), "one request per line: {line}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn response_encodings_roundtrip() {
        let resps = [
            Response::Registered { name: "A".into(), nnz: 12, generation: 0 },
            Response::Registered { name: "A".into(), nnz: 9, generation: 3 },
            Response::Unregistered { name: "A".into(), existed: true },
            Response::Unregistered { name: "gone".into(), existed: false },
            Response::Prepared { kernel: 7, splittable: true, split: None, warning: None },
            Response::Prepared {
                kernel: 0,
                splittable: false,
                split: None,
                warning: Some(Warning {
                    kind: WarningKind::SerialFallback,
                    message: "running serially".into(),
                }),
            },
            Response::Prepared {
                kernel: 2,
                splittable: true,
                split: Some(vec![
                    ("s".into(), MergeRule::Add),
                    ("y".into(), MergeRule::Rows),
                    ("z".into(), MergeRule::Min),
                ]),
                warning: None,
            },
            Response::Ran {
                outputs: vec![OutputPayload {
                    name: "y".into(),
                    dims: vec![2],
                    values: vec![1.5, -0.25],
                }],
                counters: CounterPayload {
                    flops: 10,
                    writes: 2,
                    iterations: 5,
                    reads: vec![("A".into(), 4), ("x".into(), 4)],
                },
            },
            Response::Stats {
                cache: CachePayload {
                    hits: 1,
                    misses: 2,
                    builds: 2,
                    evictions: 0,
                    waits: 1,
                    entries: 2,
                },
                requests: RequestCountsPayload {
                    register_tensor: 1,
                    prepare: 2,
                    run: 30,
                    stats: 1,
                    metrics: 2,
                    ping: 0,
                    unregister: 1,
                    errors: 3,
                },
                pool: PoolPayload {
                    workers: 4,
                    submitted: 128,
                    executed: 120,
                    helped: 8,
                    parks: 17,
                    wakeups: 17,
                },
                serve: ServePayload {
                    registry_tensors: 2,
                    registry_bytes: 4096,
                    registry_evictions: 1,
                    pinned: 3,
                    batch_dispatches: 12,
                    batched_runs: 30,
                    offloaded_replications: 2,
                    queued: 0,
                    rejected_conns: 2,
                    rejected_bytes: 1,
                    deadline_exceeded: 4,
                    stale_runs: 1,
                    panics_caught: 1,
                    quarantined_kernels: 1,
                    journal_records: 9,
                    journal_bytes: 2048,
                    journal_fsyncs: 10,
                    recovery_replayed: 5,
                    recovery_truncated: 13,
                },
                kernels: vec![
                    KernelStatPayload {
                        kernel: 0,
                        spec: "systec::for i: y[i] = x[i]".into(),
                        runs: 30,
                        median_us: Some(12.5),
                        p90_us: Some(15.75),
                        p99_us: Some(31.0),
                        max_us: Some(40.25),
                        slow: 1,
                    },
                    KernelStatPayload {
                        kernel: 1,
                        spec: "naive::for i: y[i] = x[i]".into(),
                        runs: 0,
                        median_us: None,
                        p90_us: None,
                        p99_us: None,
                        max_us: None,
                        slow: 0,
                    },
                ],
                slow: vec![SlowRunPayload { kernel: 0, us: 40 }],
            },
            Response::ClusterStats {
                router: RouterCountsPayload {
                    register_tensor: 6,
                    prepare: 2,
                    run: 40,
                    sharded_runs: 10,
                    fanouts: 4,
                    replicated: 2,
                    errors: 1,
                },
                shards: vec![
                    ShardStatPayload {
                        shard: 0,
                        addr: "127.0.0.1:4101".into(),
                        healthy: true,
                        vnodes: 64,
                        keys: 3,
                        forwarded: 25,
                        errors: 0,
                    },
                    ShardStatPayload {
                        shard: 1,
                        addr: "127.0.0.1:4102".into(),
                        healthy: false,
                        vnodes: 64,
                        keys: 1,
                        forwarded: 21,
                        errors: 1,
                    },
                ],
            },
            Response::Metrics {
                text: "# HELP systec_runs_total Completed runs.\n\
                       # TYPE systec_runs_total counter\n\
                       systec_runs_total 30\n"
                    .into(),
            },
            Response::Pong,
            Response::ShuttingDown,
            Response::error(ErrorCode::Parse, "broken"),
        ];
        for resp in resps {
            let line = resp.encode();
            assert!(!line.contains('\n'), "one response per line: {line}");
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn non_finite_output_values_roundtrip() {
        // min= kernels legitimately report the identity `inf` for rows
        // the data never touches.
        let resp = Response::Ran {
            outputs: vec![OutputPayload {
                name: "y".into(),
                dims: vec![3],
                values: vec![f64::INFINITY, -1.5, f64::NEG_INFINITY],
            }],
            counters: CounterPayload::default(),
        };
        let line = resp.encode();
        assert!(line.contains(r#""inf""#), "{line}");
        assert_eq!(Response::decode(&line).unwrap(), resp);
        // NaN decodes to the canonical NaN (NaN != NaN, so compare bits).
        let resp = Response::Ran {
            outputs: vec![OutputPayload {
                name: "y".into(),
                dims: vec![1],
                values: vec![f64::NAN],
            }],
            counters: CounterPayload::default(),
        };
        let Response::Ran { outputs, .. } = Response::decode(&resp.encode()).unwrap() else {
            panic!("run reply expected")
        };
        assert_eq!(outputs[0].values[0].to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn malformed_requests_error_without_panicking() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"run"}"#,
            r#"{"op":"run","kernel":-1}"#,
            r#"{"op":"run","kernel":1.5}"#,
            r#"{"op":"register_tensor","name":"A","dims":[2]}"#,
            r#"{"op":"register_tensor","name":"A","dims":[2],"dense":[1],"coo":[]}"#,
            r#"{"op":"register_tensor","name":"A","dims":[2,2],"coo":[[0,1]]}"#,
            r#"{"op":"register_tensor","name":"A","dims":[2],"dense":["x"]}"#,
            r#"{"op":"unregister"}"#,
            r#"{"op":"unregister","name":7}"#,
            r#"{"op":"prepare"}"#,
            r#"{"op":"prepare","einsum":"e","sym":"A"}"#,
            r#"{"op":"prepare","einsum":"e","variant":"fast"}"#,
            r#"{"op":"prepare","einsum":"e","threads":-2}"#,
            r#"{"op":"prepare","einsum":"e","sharded":"yes"}"#,
            r#"{"op":"register_tensor","name":"A","dims":[2],"dense":[1,2],"placement":"mirror"}"#,
            r#"{"op":"run","kernel":1,"shard":[0]}"#,
            r#"{"op":"run","kernel":1,"shard":[0,1,2]}"#,
            r#"{"op":"run","kernel":1,"shard":[2,2]}"#,
            r#"{"op":"run","kernel":1,"shard":[0,0]}"#,
            r#"{"op":"run","kernel":1,"shard":[-1,2]}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "`{bad}` must not decode");
        }
    }

    #[test]
    fn error_codes_are_stable_strings() {
        for code in [
            ErrorCode::Parse,
            ErrorCode::UnknownTensor,
            ErrorCode::UnknownKernel,
            ErrorCode::InvalidKernel,
            ErrorCode::BadTensor,
            ErrorCode::LineTooLong,
            ErrorCode::DeadlineExceeded,
            ErrorCode::AdmissionRejected,
            ErrorCode::StaleTensor,
            ErrorCode::Internal,
            ErrorCode::KernelQuarantined,
            ErrorCode::ShardUnavailable,
        ] {
            assert_eq!(ErrorCode::from_str(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_str("nope"), None);
        assert_eq!(ErrorCode::from_str("internal"), None, "renamed wire code");
    }

    #[test]
    fn merge_rules_are_stable_strings() {
        for rule in [MergeRule::Rows, MergeRule::Add, MergeRule::Min, MergeRule::Max] {
            assert_eq!(MergeRule::from_str(rule.as_str()), Some(rule));
        }
        assert_eq!(MergeRule::from_str("concat"), None);
        assert_eq!(MergeRule::from_str("overwrite"), None, "not a mergeable reduction");
    }

    #[test]
    fn retryable_codes_match_the_documented_policy() {
        for (code, retry) in [
            (ErrorCode::DeadlineExceeded, true),
            (ErrorCode::AdmissionRejected, true),
            (ErrorCode::Internal, true),
            (ErrorCode::ShardUnavailable, true),
            (ErrorCode::KernelQuarantined, false),
            (ErrorCode::Parse, false),
            (ErrorCode::StaleTensor, false),
            (ErrorCode::UnknownKernel, false),
        ] {
            assert_eq!(code.retryable(), retry, "{code}");
        }
    }
}
