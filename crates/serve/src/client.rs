//! A small blocking client for the line protocol — used by the `systec
//! client` subcommand and the test tiers.
//!
//! [`RetryPolicy`] adds fault tolerance on top of [`Client`]: capped
//! exponential backoff with deterministic jitter on connect failures,
//! dropped connections, and the retryable error codes
//! ([`crate::protocol::ErrorCode::retryable`] — `deadline_exceeded`,
//! `admission_rejected`, `internal_error`). `kernel_quarantined` is
//! deliberately *not* retried: the handle is dead until re-`prepare`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{ErrorCode, ProtoError, Request, Response};

/// A connected client. Requests are answered in order on the same
/// connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble (including the server closing the connection).
    Io(std::io::Error),
    /// The server's response line did not decode.
    Protocol(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one raw line and returns the raw response line (without the
    /// trailing newline). The building block for scripted exchanges —
    /// the line is sent verbatim, malformed or not.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a closed connection surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with(['\n', '\r']) {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and decodes the typed response.
    ///
    /// # Errors
    ///
    /// Transport errors and undecodable response lines.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = self.send_raw(&request.encode())?;
        Response::decode(&line).map_err(ClientError::Protocol)
    }

    /// Connects with capped exponential backoff: up to `policy.attempts`
    /// tries, sleeping `policy.delay(attempt)` between failures.
    ///
    /// # Errors
    ///
    /// The last connect error once every attempt is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: &RetryPolicy,
    ) -> std::io::Result<Client> {
        let attempts = policy.attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(policy.delay(attempt));
            }
        }
        Err(last.expect("at least one connect attempt was made"))
    }
}

/// Retry schedule for connects and retryable requests: capped
/// exponential backoff plus deterministic jitter.
///
/// The delay before retry `attempt` (0-based) is
/// `min(cap, base << attempt) + jitter`, where jitter is drawn from a
/// seeded xorshift stream over `[0, base)` — deterministic for a given
/// `(seed, attempt)`, so test tiers replay identical schedules while
/// independent clients (different seeds) still decorrelate.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries). Clamped to ≥ 1.
    pub attempts: u32,
    /// Base delay; doubled each retry.
    pub base: Duration,
    /// Ceiling on the exponential component.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5353_5445_4331_2e30, // "SSTEC1.0"
        }
    }
}

impl RetryPolicy {
    /// A policy making `attempts` total tries with the default backoff.
    #[must_use]
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy { attempts, ..RetryPolicy::default() }
    }

    /// Whether a decoded error response should be retried under this
    /// policy (delegates to [`ErrorCode::retryable`]).
    #[must_use]
    pub fn should_retry(&self, code: ErrorCode) -> bool {
        code.retryable()
    }

    /// The delay before retry `attempt` (0-based):
    /// `min(cap, base * 2^attempt) + jitter(seed, attempt)` with jitter
    /// in `[0, base)`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let base_ms = self.base.as_millis().min(u128::from(u64::MAX)) as u64;
        let cap_ms = self.cap.as_millis().min(u128::from(u64::MAX)) as u64;
        let exp = base_ms.checked_shl(attempt.min(32)).unwrap_or(u64::MAX).min(cap_ms);
        let jitter = if base_ms == 0 {
            0
        } else {
            // One splitmix64 step keyed by (seed, attempt): stateless, so
            // delay(n) is a pure function and replays identically.
            let mut z =
                self.seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            z % base_ms
        };
        Duration::from_millis(exp.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        for attempt in 0..8 {
            let d = p.delay(attempt).as_millis() as u64;
            let exp = (10u64 << attempt).min(100);
            assert!(
                d >= exp && d < exp + 10,
                "attempt {attempt}: delay {d}ms outside [{exp}, {})",
                exp + 10
            );
        }
        // Deterministic: same (seed, attempt) → same delay.
        assert_eq!(p.delay(3), p.delay(3));
        // Different seeds decorrelate at least one attempt.
        let q = RetryPolicy { seed: 8, ..p.clone() };
        assert!((0..8).any(|a| p.delay(a) != q.delay(a)));
    }

    #[test]
    fn zero_base_never_divides_by_zero() {
        let p = RetryPolicy {
            attempts: 2,
            base: Duration::ZERO,
            cap: Duration::from_millis(5),
            seed: 1,
        };
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(63), Duration::ZERO);
    }

    #[test]
    fn retryable_codes_follow_protocol_policy() {
        let p = RetryPolicy::default();
        assert!(p.should_retry(ErrorCode::Internal));
        assert!(p.should_retry(ErrorCode::DeadlineExceeded));
        assert!(p.should_retry(ErrorCode::AdmissionRejected));
        assert!(!p.should_retry(ErrorCode::KernelQuarantined));
        assert!(!p.should_retry(ErrorCode::UnknownKernel));
    }

    #[test]
    fn connect_with_retry_surfaces_the_last_error() {
        // Port 1 on localhost is essentially never listening; keep the
        // schedule instant so the test doesn't sleep.
        let p = RetryPolicy { attempts: 2, base: Duration::ZERO, cap: Duration::ZERO, seed: 1 };
        let err = Client::connect_with_retry("127.0.0.1:1", &p);
        assert!(err.is_err());
    }
}
