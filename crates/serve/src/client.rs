//! A small blocking client for the line protocol — used by the `systec
//! client` subcommand and the test tiers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{ProtoError, Request, Response};

/// A connected client. Requests are answered in order on the same
/// connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble (including the server closing the connection).
    Io(std::io::Error),
    /// The server's response line did not decode.
    Protocol(ProtoError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one raw line and returns the raw response line (without the
    /// trailing newline). The building block for scripted exchanges —
    /// the line is sent verbatim, malformed or not.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a closed connection surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with(['\n', '\r']) {
            response.pop();
        }
        Ok(response)
    }

    /// Sends a typed request and decodes the typed response.
    ///
    /// # Errors
    ///
    /// Transport errors and undecodable response lines.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = self.send_raw(&request.encode())?;
        Response::decode(&line).map_err(ClientError::Protocol)
    }
}
