//! The durable registry: a write-ahead journal plus periodic snapshots.
//!
//! When the server runs with `--data-dir`, every registry mutation
//! (`register_tensor`, `unregister`, LRU eviction) is appended to a
//! journal **before** it is applied in memory, and the journal is
//! folded into a snapshot every [`DEFAULT_SNAPSHOT_EVERY`] records. On
//! restart the engine replays snapshot + journal; per-name generation
//! counters are part of the records, so stale-pin semantics
//! (`stale_tensor` on a run over re-registered data) survive a crash.
//!
//! ## On-disk format
//!
//! Both files are a sequence of framed records:
//!
//! ```text
//! [payload length: u32 LE][CRC-32 of payload: u32 LE][payload]
//! ```
//!
//! The payload is one JSON object rendered by the same hardened codec
//! as the wire protocol ([`crate::json`]), so escaping-hostile tensor
//! names and non-finite values round-trip exactly like they do on the
//! wire. Recovery reads the longest valid prefix: a short header, an
//! over-long length, a CRC mismatch, or an undecodable payload all
//! mark a torn tail, which is truncated (and counted in
//! `systec_recovery_truncated_total`) so the journal can be appended
//! to again. A torn tail can only lose the *last* record — every
//! append is fsynced before the mutation is applied in memory.
//!
//! Snapshots are written to a temp file, fsynced, and renamed over the
//! old snapshot before the journal is reset, so a crash at any point
//! leaves either the old snapshot + full journal or the new snapshot.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::protocol::{dims_json, f64_array, value_from_json, value_json, TensorPayload};

/// Records between automatic snapshot folds (overridable for tests via
/// [`crate::Engine::with_snapshot_every`]).
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// Journal file name inside the data dir.
pub const JOURNAL_FILE: &str = "journal.dat";
/// Snapshot file name inside the data dir.
pub const SNAPSHOT_FILE: &str = "snapshot.dat";

/// Cap on a single record's payload, mirroring the wire's request-line
/// cap: a length prefix beyond this is corruption, not a record.
const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

/// One durable registry mutation (or snapshot row).
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// A tensor (re-)registration: the stored data and the generation
    /// it was assigned.
    Register {
        /// Registered name.
        name: String,
        /// Tensor dimensions.
        dims: Vec<usize>,
        /// Generation assigned to this registration.
        generation: u64,
        /// The stored data: dense values or sparse COO entries.
        payload: TensorPayload,
    },
    /// A tensor removal (explicit `unregister` or LRU eviction).
    Unregister {
        /// The removed name.
        name: String,
    },
    /// Snapshot header: the full per-name generation history, including
    /// names whose tensors are gone. Required for anti-ABA semantics —
    /// a name must never be reborn at a generation a stale kernel still
    /// pins, even across restarts.
    Generations {
        /// `(name, highest generation ever assigned)` pairs.
        generations: Vec<(String, u64)>,
    },
}

impl Record {
    /// Renders the JSON payload (no framing).
    pub fn encode(&self) -> String {
        match self {
            Record::Register { name, dims, generation, payload } => {
                let data = match payload {
                    TensorPayload::Dense(values) => {
                        ("dense", Json::Arr(values.iter().map(|&v| value_json(v)).collect()))
                    }
                    TensorPayload::Coo(entries) => (
                        "coo",
                        Json::Arr(
                            entries
                                .iter()
                                .map(|(coords, v)| {
                                    let mut row: Vec<Json> =
                                        coords.iter().map(|&c| Json::num_usize(c)).collect();
                                    row.push(value_json(*v));
                                    Json::Arr(row)
                                })
                                .collect(),
                        ),
                    ),
                };
                Json::obj([
                    ("rec", Json::Str("register".into())),
                    ("name", Json::Str(name.clone())),
                    ("dims", dims_json(dims)),
                    ("generation", Json::num_u64(*generation)),
                    data,
                ])
                .to_string()
            }
            Record::Unregister { name } => Json::obj([
                ("rec", Json::Str("unregister".into())),
                ("name", Json::Str(name.clone())),
            ])
            .to_string(),
            Record::Generations { generations } => Json::obj([
                ("rec", Json::Str("generations".into())),
                (
                    "generations",
                    Json::Arr(
                        generations
                            .iter()
                            .map(|(name, g)| {
                                Json::Arr(vec![Json::Str(name.clone()), Json::num_u64(*g)])
                            })
                            .collect(),
                    ),
                ),
            ])
            .to_string(),
        }
    }

    /// Parses a record payload; `None` for anything malformed (the
    /// caller treats it as a torn tail).
    pub fn decode(text: &str) -> Option<Record> {
        let json = Json::parse(text).ok()?;
        match json.get("rec")?.as_str()? {
            "register" => {
                let name = json.get("name")?.as_str()?.to_string();
                let dims: Vec<usize> = json
                    .get("dims")?
                    .as_arr()?
                    .iter()
                    .map(Json::as_usize)
                    .collect::<Option<_>>()?;
                let generation = json.get("generation")?.as_u64()?;
                let payload = if let Some(dense) = json.get("dense") {
                    TensorPayload::Dense(f64_array(dense, "dense").ok()?)
                } else {
                    let rows = json.get("coo")?.as_arr()?;
                    let mut entries = Vec::with_capacity(rows.len());
                    for row in rows {
                        let cells = row.as_arr()?;
                        if cells.len() != dims.len() + 1 {
                            return None;
                        }
                        let coords: Vec<usize> = cells[..dims.len()]
                            .iter()
                            .map(Json::as_usize)
                            .collect::<Option<_>>()?;
                        entries.push((coords, value_from_json(&cells[dims.len()])?));
                    }
                    TensorPayload::Coo(entries)
                };
                Some(Record::Register { name, dims, generation, payload })
            }
            "unregister" => {
                Some(Record::Unregister { name: json.get("name")?.as_str()?.to_string() })
            }
            "generations" => {
                let pairs = json.get("generations")?.as_arr()?;
                let mut generations = Vec::with_capacity(pairs.len());
                for pair in pairs {
                    let cells = pair.as_arr()?;
                    if cells.len() != 2 {
                        return None;
                    }
                    generations.push((cells[0].as_str()?.to_string(), cells[1].as_u64()?));
                }
                Some(Record::Generations { generations })
            }
            _ => None,
        }
    }

    /// Frames the record for disk: length + CRC-32 + payload.
    pub fn frame(&self) -> Vec<u8> {
        let payload = self.encode().into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(
            &u32::try_from(payload.len()).expect("record under 4 GiB").to_le_bytes(),
        );
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), bitwise —
/// recovery-path speed is irrelevant next to the fsyncs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Result of decoding a framed byte stream: the longest valid prefix.
#[derive(Debug)]
pub struct DecodedStream {
    /// Records of the valid prefix, in order.
    pub records: Vec<Record>,
    /// Bytes consumed by the valid prefix.
    pub valid_len: usize,
    /// Bytes beyond the valid prefix (the torn tail).
    pub truncated: u64,
}

/// Decodes framed records until the bytes stop cooperating. Never
/// panics: any malformed suffix — short header, absurd length, CRC
/// mismatch, invalid UTF-8 or JSON — ends the valid prefix.
pub fn decode_stream(bytes: &[u8]) -> DecodedStream {
    let mut records = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= 8 {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN || bytes.len() - off - 8 < len {
            break;
        }
        let payload = &bytes[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        let Some(record) = Record::decode(text) else { break };
        records.push(record);
        off += 8 + len;
    }
    DecodedStream { records, valid_len: off, truncated: (bytes.len() - off) as u64 }
}

/// What startup recovery found in a data dir.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Snapshot records followed by journal records, in replay order.
    pub records: Vec<Record>,
    /// Torn-tail bytes truncated (snapshot + journal).
    pub truncated: u64,
}

/// An open data dir: the journal file handle plus snapshot bookkeeping.
#[derive(Debug)]
pub struct Durability {
    root: PathBuf,
    journal: File,
    /// Journal records since the last snapshot fold.
    since_snapshot: u64,
    /// Fold the journal into a snapshot after this many records.
    snapshot_every: u64,
}

impl Durability {
    /// Opens (creating if needed) a data dir, recovering the valid
    /// prefix of snapshot + journal and truncating any torn journal
    /// tail so the journal is appendable again.
    pub fn open(root: &Path, snapshot_every: u64) -> io::Result<(Durability, Recovery)> {
        fs::create_dir_all(root)?;
        let mut recovery = Recovery::default();
        let snap = read_if_exists(&root.join(SNAPSHOT_FILE))?;
        let snap_decoded = decode_stream(&snap);
        recovery.truncated += snap_decoded.truncated;
        recovery.records = snap_decoded.records;

        let journal_path = root.join(JOURNAL_FILE);
        let bytes = read_if_exists(&journal_path)?;
        let decoded = decode_stream(&bytes);
        recovery.truncated += decoded.truncated;
        let replayed_journal = decoded.records.len() as u64;
        recovery.records.extend(decoded.records);

        let journal = OpenOptions::new().create(true).append(true).open(&journal_path)?;
        if decoded.truncated > 0 {
            journal.set_len(decoded.valid_len as u64)?;
            journal.sync_all()?;
        }
        Ok((
            Durability {
                root: root.to_path_buf(),
                journal,
                since_snapshot: replayed_journal,
                snapshot_every: snapshot_every.max(1),
            },
            recovery,
        ))
    }

    /// Appends one record and fsyncs it. Returns the framed bytes
    /// written. The caller applies the mutation in memory only after
    /// this returns `Ok` — write-ahead, not write-behind.
    pub fn append(&mut self, record: &Record) -> io::Result<u64> {
        let frame = record.frame();
        self.journal.write_all(&frame)?;
        self.journal.sync_data()?;
        self.since_snapshot += 1;
        Ok(frame.len() as u64)
    }

    /// Flushes the journal to disk (a formality — every append syncs).
    pub fn sync(&mut self) -> io::Result<()> {
        self.journal.sync_data()
    }

    /// Whether enough records accumulated to fold into a snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.since_snapshot >= self.snapshot_every
    }

    /// Writes `records` as the new snapshot (temp file + fsync +
    /// rename), then resets the journal. Returns bytes written and the
    /// fsyncs issued. On error the old snapshot and the journal are
    /// still intact — the journal stays the source of truth.
    pub fn write_snapshot(&mut self, records: &[Record]) -> io::Result<(u64, u64)> {
        let tmp = self.root.join("snapshot.tmp");
        let mut bytes = 0u64;
        {
            let mut file = File::create(&tmp)?;
            for record in records {
                let frame = record.frame();
                file.write_all(&frame)?;
                bytes += frame.len() as u64;
            }
            file.sync_all()?;
        }
        fs::rename(&tmp, self.root.join(SNAPSHOT_FILE))?;
        // Reset the journal only after the snapshot is durable.
        self.journal.set_len(0)?;
        self.journal.sync_all()?;
        self.since_snapshot = 0;
        Ok((bytes, 2))
    }
}

fn read_if_exists(path: &Path) -> io::Result<Vec<u8>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            Ok(bytes)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Register {
                name: "a\"\\\u{1}".into(),
                dims: vec![2, 2],
                generation: 3,
                payload: TensorPayload::Dense(vec![1.0, 0.0, -2.5, f64::NAN]),
            },
            Record::Register {
                name: "s".into(),
                dims: vec![3, 3],
                generation: 0,
                payload: TensorPayload::Coo(vec![(vec![0, 1], 2.0), (vec![2, 2], f64::INFINITY)]),
            },
            Record::Unregister { name: "gone".into() },
            Record::Generations { generations: vec![("a".into(), 7), ("weird\nname".into(), 0)] },
        ]
    }

    /// NaN-tolerant record equality (PartialEq on f64 rejects NaN).
    fn same(a: &Record, b: &Record) -> bool {
        format!("{a:?}") == format!("{b:?}")
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        for record in sample_records() {
            let decoded = Record::decode(&record.encode()).expect("decodes");
            assert!(same(&record, &decoded), "{record:?} vs {decoded:?}");
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn decode_stream_recovers_the_valid_prefix_at_every_truncation() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.frame());
        }
        for cut in 0..=bytes.len() {
            let decoded = decode_stream(&bytes[..cut]);
            assert!(decoded.records.len() <= records.len());
            for (got, want) in decoded.records.iter().zip(&records) {
                assert!(same(got, want));
            }
            assert_eq!(decoded.valid_len + decoded.truncated as usize, cut);
        }
        let whole = decode_stream(&bytes);
        assert_eq!(whole.records.len(), records.len());
        assert_eq!(whole.truncated, 0);
    }

    #[test]
    fn corrupt_crc_ends_the_prefix() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.frame());
        }
        // Flip one payload byte of the second record.
        let first_len = records[0].frame().len();
        bytes[first_len + 10] ^= 0x40;
        let decoded = decode_stream(&bytes);
        assert_eq!(decoded.records.len(), 1);
        assert!(decoded.truncated > 0);
    }

    #[test]
    fn journal_survives_reopen_and_truncates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("systec-dur-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let records = sample_records();
        {
            let (mut dur, recovery) = Durability::open(&dir, 1024).unwrap();
            assert!(recovery.records.is_empty());
            for r in &records {
                dur.append(r).unwrap();
            }
        }
        // Torn tail: append garbage that looks like a half-written frame.
        {
            let mut f = OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        }
        let (mut dur, recovery) = Durability::open(&dir, 2).unwrap();
        assert_eq!(recovery.records.len(), records.len());
        assert_eq!(recovery.truncated, 6);
        // The torn tail was physically truncated: appending now yields
        // a clean journal.
        assert!(dur.wants_snapshot());
        dur.write_snapshot(&records).unwrap();
        assert!(!dur.wants_snapshot());
        drop(dur);
        let (_, recovery) = Durability::open(&dir, 1024).unwrap();
        assert_eq!(recovery.records.len(), records.len(), "snapshot replays");
        assert_eq!(recovery.truncated, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
