//! The request scheduler: a small executor pool that **coalesces
//! concurrent `run` requests for the same prepared kernel** into one
//! engine dispatch.
//!
//! The transport ([`crate::server`]) never blocks on the engine: it
//! submits decoded requests here tagged with a connection id and gets
//! the encoded response line back through a completion callback. Run
//! requests are keyed by `(kernel, full)`; when an executor picks a key
//! it drains up to `max_batch` queued requests and serves them with a
//! **single** [`Engine::run_batch`] execution — one pool dispatch, one
//! wakeup round, one response encoding — then replicates the shared
//! line to every requester. Responses stay byte-deterministic because
//! identical runs of a prepared kernel are byte-deterministic (PR 2),
//! so serving N requests one execution is indistinguishable on the
//! wire from serving them N executions.
//!
//! Deadlines are enforced at dequeue: a request that waited longer than
//! the configured per-request deadline is answered with a structured
//! `deadline_exceeded` error instead of being dispatched. With no
//! deadline configured nothing ever expires.
//!
//! Very large batch responses do not monopolize the executor: when a
//! coalesced run's output crosses [`LARGE_OUTPUT_ELEMS`] elements, the
//! executor hands the un-encoded response and the requester list to a
//! dedicated replicator thread, which encodes the line once and fans
//! it out. The executor is immediately free to dispatch the next
//! batch; small responses (the overwhelmingly common case) are encoded
//! inline to keep their latency minimal.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
#[cfg(test)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::fault::FaultSite;
use crate::protocol::{ErrorCode, Request, Response};
use crate::relock;

/// Called with `(connection id, encoded response line)` when a
/// submitted request completes. The line has no trailing newline; the
/// transport appends it on write. Batched requests share one `Arc`.
pub type Completion = Arc<dyn Fn(u64, Arc<String>) + Send + Sync>;

/// Output element count past which a batch response is encoded and
/// replicated on the dedicated replicator thread instead of the
/// executor (64K f64s ≈ a 1.5MB response line: encoding it inline
/// would stall every batch queued behind it).
const LARGE_OUTPUT_ELEMS: usize = 64 * 1024;

/// A large batch response in flight to the replicator thread: the
/// un-encoded response plus every requester awaiting the shared line.
struct ReplicateJob {
    response: Response,
    conns: Vec<u64>,
}

/// Total output elements of a response (0 for non-run responses).
fn response_elems(response: &Response) -> usize {
    match response {
        Response::Ran { outputs, .. } => outputs.iter().map(|o| o.values.len()).sum(),
        _ => 0,
    }
}

/// One queued request.
struct Task {
    conn: u64,
    request: Request,
    enqueued: Instant,
}

#[derive(Default)]
struct SchedState {
    /// Non-run requests, strictly FIFO.
    general: VecDeque<Task>,
    /// Run requests bucketed by [`RunKey`].
    run_queues: HashMap<RunKey, VecDeque<Task>>,
    /// Round-robin order over the non-empty run buckets, so one hot
    /// kernel cannot starve another.
    run_order: VecDeque<RunKey>,
    /// Total queued tasks (mirrors the `queue_depth` gauge).
    depth: usize,
    /// While `true`, executors leave the queues alone (tests use this
    /// to build a deterministic batch before releasing it).
    paused: bool,
    shutdown: bool,
}

struct Shared {
    engine: Arc<Engine>,
    state: Mutex<SchedState>,
    work: Condvar,
    max_batch: usize,
    deadline: Option<Duration>,
    complete: Completion,
    /// Sender half of the replicator channel; `None` once shutdown has
    /// hung up (late large responses then fall back to inline encoding).
    large: Mutex<Option<mpsc::Sender<ReplicateJob>>>,
}

/// The coalescing key: `(kernel, full, shard)`. Only byte-identical
/// run requests share a bucket — a sharded sub-range run never
/// coalesces with a different range or the unsharded whole.
type RunKey = (u64, bool, Option<(u64, u64)>);

/// What an executor pulled out of the queues in one lock acquisition.
enum Work {
    One(Task),
    Batch(RunKey, Vec<Task>),
}

/// The coalescing request scheduler. Owns its executor threads; they
/// drain outstanding work and exit on [`Scheduler::shutdown`] (or
/// drop).
pub struct Scheduler {
    shared: Arc<Shared>,
    executors: Vec<JoinHandle<()>>,
    replicator: Option<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts `executors` executor threads over `engine`. Run requests
    /// for the same `(kernel, full)` key coalesce up to `max_batch` per
    /// dispatch; `deadline`, when set, bounds how long any request may
    /// wait in queue before it is refused.
    pub fn new(
        engine: Arc<Engine>,
        executors: usize,
        max_batch: usize,
        deadline: Option<Duration>,
        complete: Completion,
    ) -> Scheduler {
        let (tx, rx) = mpsc::channel::<ReplicateJob>();
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            max_batch: max_batch.max(1),
            deadline,
            complete,
            large: Mutex::new(Some(tx)),
        });
        let replicator = {
            let complete = Arc::clone(&shared.complete);
            std::thread::Builder::new()
                .name("systec-serve-replicate".to_string())
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let line = Arc::new(job.response.encode());
                        for conn in job.conns {
                            (complete)(conn, Arc::clone(&line));
                        }
                    }
                })
                .expect("spawn scheduler replicator")
        };
        let executors = (0..executors.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("systec-serve-exec-{i}"))
                    .spawn(move || executor(&shared))
                    .expect("spawn scheduler executor")
            })
            .collect();
        Scheduler { shared, executors, replicator: Some(replicator) }
    }

    /// Enqueues one decoded request from connection `conn`. The
    /// response arrives through the completion callback, possibly on
    /// another thread, possibly before this returns.
    pub fn submit(&self, conn: u64, request: Request) {
        let mut st = relock(&self.shared.state);
        let task = Task { conn, request, enqueued: Instant::now() };
        match task.request {
            Request::Run { kernel, full, shard } => {
                let key = (kernel, full, shard);
                if st.run_queues.entry(key).or_default().is_empty() {
                    st.run_order.push_back(key);
                }
                st.run_queues.get_mut(&key).expect("just inserted").push_back(task);
            }
            _ => st.general.push_back(task),
        }
        st.depth += 1;
        self.shared.engine.serve_metrics().queue_depth.set(st.depth as u64);
        drop(st);
        self.shared.work.notify_one();
    }

    /// Stops executors from dequeuing, letting submissions pile up into
    /// deterministic batches (test hook; admission keeps running).
    pub fn pause(&self) {
        relock(&self.shared.state).paused = true;
    }

    /// Releases a [`Scheduler::pause`].
    pub fn resume(&self) {
        relock(&self.shared.state).paused = false;
        self.shared.work.notify_all();
    }

    /// Drains outstanding work, stops the executors and the replicator,
    /// and joins them (in-flight large responses are fully fanned out
    /// before the replicator exits).
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        self.join_replicator();
    }

    /// Hangs up the replicator channel (executors are already joined,
    /// so no new jobs can arrive) and joins the thread.
    fn join_replicator(&mut self) {
        relock(&self.shared.large).take();
        if let Some(handle) = self.replicator.take() {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut st = relock(&self.shared.state);
        st.shutdown = true;
        // Shutdown overrides pause: a paused scheduler must still
        // drain and exit rather than hang its joiner.
        st.paused = false;
        drop(st);
        self.shared.work.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        self.join_replicator();
    }
}

fn executor(shared: &Shared) {
    loop {
        let mut st = relock(&shared.state);
        let work = loop {
            if !st.paused {
                if let Some(task) = st.general.pop_front() {
                    st.depth -= 1;
                    shared.engine.serve_metrics().queue_depth.set(st.depth as u64);
                    break Work::One(task);
                }
                if let Some(key) = st.run_order.pop_front() {
                    let queue = st.run_queues.get_mut(&key).expect("ordered key has a queue");
                    let take = queue.len().min(shared.max_batch);
                    let batch: Vec<Task> = queue.drain(..take).collect();
                    if queue.is_empty() {
                        st.run_queues.remove(&key);
                    } else {
                        // Leftovers keep their place in the rotation.
                        st.run_order.push_back(key);
                    }
                    st.depth -= batch.len();
                    shared.engine.serve_metrics().queue_depth.set(st.depth as u64);
                    break Work::Batch(key, batch);
                }
            }
            if st.shutdown {
                return;
            }
            st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
        };
        drop(st);
        // Every dequeued task is answered exactly once, even when the
        // work panics out from under it: a panic reaching this frame
        // would otherwise kill the executor thread and silently drop
        // the completions, wedging every victim connection's
        // one-in-flight gate forever.
        match work {
            Work::One(task) => {
                let line = catch_unwind(AssertUnwindSafe(|| one_reply(shared, &task)))
                    .unwrap_or_else(|_panic| {
                        shared.engine.serve_metrics().panics_caught.inc_always();
                        shared.engine.count_error();
                        internal_reply()
                    });
                (shared.complete)(task.conn, line);
            }
            Work::Batch(key, batch) => {
                let mut live = Vec::with_capacity(batch.len());
                for task in batch {
                    if expired(shared, &task) {
                        let line = deadline_reply(shared, &task);
                        (shared.complete)(task.conn, line);
                    } else {
                        live.push(task);
                    }
                }
                if live.is_empty() {
                    continue;
                }
                // `dispatch_batch` removes tasks from `live` as it
                // answers them; whatever a panic leaves behind gets a
                // structured internal_error so no requester ever hangs.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| dispatch_batch(shared, key, &mut live)));
                if outcome.is_err() {
                    shared.engine.serve_metrics().panics_caught.inc_always();
                    let line = internal_reply();
                    for task in live.drain(..) {
                        shared.engine.count_error();
                        (shared.complete)(task.conn, Arc::clone(&line));
                    }
                }
            }
        }
    }
}

/// Serves one non-coalesced task and returns its encoded reply.
fn one_reply(shared: &Shared, task: &Task) -> Arc<String> {
    if expired(shared, task) {
        deadline_reply(shared, task)
    } else {
        Arc::new(shared.engine.handle(&task.request).encode())
    }
}

/// The reply for a request orphaned by an executor panic. The code is
/// retryable: the panic quarantined whatever caused it, so a retried
/// request either succeeds or gets a precise `kernel_quarantined`.
fn internal_reply() -> Arc<String> {
    Arc::new(
        Response::error(
            ErrorCode::Internal,
            "executor panicked while serving this request; it was not completed",
        )
        .encode(),
    )
}

/// Dispatches one coalesced batch, answering and removing every task in
/// `live`. Split out of [`executor`] so its caller can catch a panic
/// and account for exactly the tasks left unanswered.
fn dispatch_batch(shared: &Shared, (kernel, full, shard): RunKey, live: &mut Vec<Task>) {
    if let Some(plan) = shared.engine.fault_plan() {
        if plan.fire(FaultSite::DispatchDelay) {
            std::thread::sleep(plan.delay());
        }
        if plan.fire(FaultSite::ExecutorPanic) {
            panic!("injected executor panic");
        }
    }
    // Deadline re-check immediately *before* dispatch: the check at
    // dequeue happened an arbitrary scheduling delay ago (the executor
    // may have stalled on the previous batch), and a batch assembled
    // just under the wire must not run arbitrarily late.
    let mut i = 0;
    while i < live.len() {
        if expired(shared, &live[i]) {
            let task = live.remove(i);
            let line = deadline_reply(shared, &task);
            (shared.complete)(task.conn, line);
        } else {
            i += 1;
        }
    }
    if live.is_empty() {
        return;
    }
    let n = live.len() as u64;
    let m = shared.engine.serve_metrics();
    m.batch_dispatches.inc_always();
    m.batched_runs.add_always(n);
    m.batch_size.record(n);
    let response = shared.engine.run_batch(kernel, full, shard, n);
    let response = if response_elems(&response) >= LARGE_OUTPUT_ELEMS {
        // Hand the body off: encoding a multi-megabyte line
        // and fanning it out would stall this executor.
        let job = ReplicateJob { response, conns: live.iter().map(|t| t.conn).collect() };
        let sent = match relock(&shared.large).as_ref() {
            Some(tx) => tx.send(job).map_err(|mpsc::SendError(j)| j),
            None => Err(job),
        };
        match sent {
            Ok(()) => {
                m.offloaded_replications.inc_always();
                live.clear();
                return;
            }
            // Channel already hung up (shutdown race):
            // encode inline after all.
            Err(job) => job.response,
        }
    } else {
        response
    };
    let line = Arc::new(response.encode());
    for task in live.drain(..) {
        (shared.complete)(task.conn, Arc::clone(&line));
    }
}

fn expired(shared: &Shared, task: &Task) -> bool {
    shared.deadline.is_some_and(|limit| task.enqueued.elapsed() >= limit)
}

fn deadline_reply(shared: &Shared, task: &Task) -> Arc<String> {
    let limit = shared.deadline.expect("only expired tasks get here");
    shared.engine.count_error();
    shared.engine.serve_metrics().deadline_exceeded.inc_always();
    Arc::new(
        Response::error(
            ErrorCode::DeadlineExceeded,
            format!(
                "request waited {}ms in queue, over the {}ms deadline",
                task.enqueued.elapsed().as_millis(),
                limit.as_millis()
            ),
        )
        .encode(),
    )
}

/// A completion sink for tests: collects `(conn, line)` pairs and
/// counts them, so callers can wait for a known number of completions
/// without sleeping blind.
#[cfg(test)]
pub(crate) struct CompletionLog {
    entries: Mutex<Vec<(u64, Arc<String>)>>,
    count: AtomicU64,
}

#[cfg(test)]
impl CompletionLog {
    pub(crate) fn new() -> Arc<CompletionLog> {
        Arc::new(CompletionLog { entries: Mutex::new(Vec::new()), count: AtomicU64::new(0) })
    }

    pub(crate) fn sink(self: &Arc<Self>) -> Completion {
        let log = Arc::clone(self);
        Arc::new(move |conn, line| {
            relock(&log.entries).push((conn, line));
            log.count.fetch_add(1, Ordering::Release);
        })
    }

    /// Blocks (politely) until `n` completions arrived or ~5s passed.
    pub(crate) fn wait_for(&self, n: u64) -> Vec<(u64, Arc<String>)> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.count.load(Ordering::Acquire) < n && Instant::now() < deadline {
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(200));
        }
        relock(&self.entries).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Placement, StorageFormat, TensorPayload, Variant};

    fn warmed_engine() -> (Arc<Engine>, u64) {
        warm(Arc::new(Engine::new()))
    }

    /// Registers the SSYMV fixture and prepares its kernel on `engine`.
    fn warm(engine: Arc<Engine>) -> (Arc<Engine>, u64) {
        let resp = engine.handle(&Request::RegisterTensor {
            name: "A".into(),
            dims: vec![4, 4],
            payload: TensorPayload::Coo(vec![
                (vec![0, 1], 2.0),
                (vec![1, 0], 2.0),
                (vec![2, 3], 1.5),
                (vec![3, 2], 1.5),
            ]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let resp = engine.handle(&Request::RegisterTensor {
            name: "x".into(),
            dims: vec![4],
            payload: TensorPayload::Dense(vec![1.0, 2.0, 3.0, 4.0]),
            format: StorageFormat::Auto,
            placement: Placement::Hash,
        });
        assert!(matches!(resp, Response::Registered { .. }), "{resp:?}");
        let resp = engine.handle(&Request::Prepare {
            einsum: "for i, j: y[i] += A[i, j] * x[j]".into(),
            sym: vec!["A".into()],
            inputs: vec![],
            variant: Variant::Systec,
            threads: Some(1),
            sharded: false,
        });
        let Response::Prepared { kernel, .. } = resp else { panic!("{resp:?}") };
        (engine, kernel)
    }

    #[test]
    fn paused_submissions_coalesce_into_one_byte_identical_dispatch() {
        let (engine, kernel) = warmed_engine();
        let oracle = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();
        let dispatches_before = engine.serve_metrics().batch_dispatches.get();

        let log = CompletionLog::new();
        let scheduler = Scheduler::new(Arc::clone(&engine), 1, 32, None, log.sink());
        scheduler.pause();
        for conn in 0..5 {
            scheduler.submit(conn, Request::Run { kernel, full: false, shard: None });
        }
        assert_eq!(engine.serve_metrics().queue_depth.get(), 5);
        scheduler.resume();
        let completions = log.wait_for(5);
        assert_eq!(completions.len(), 5, "every requester must be answered");
        for (_, line) in &completions {
            assert_eq!(**line, oracle, "coalesced responses must match the serial oracle");
        }
        let m = engine.serve_metrics();
        assert_eq!(m.batch_dispatches.get() - dispatches_before, 1, "5 runs, one dispatch");
        assert_eq!(m.batched_runs.get(), 5);
        assert_eq!(m.queue_depth.get(), 0, "queue drained");
        scheduler.shutdown();
        // Request accounting is indistinguishable from serial serving:
        // the oracle run plus the 5 coalesced ones.
        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(requests.run, 6);
    }

    #[test]
    fn distinct_keys_do_not_coalesce_together() {
        let (engine, kernel) = warmed_engine();
        let log = CompletionLog::new();
        let scheduler = Scheduler::new(Arc::clone(&engine), 1, 32, None, log.sink());
        scheduler.pause();
        // Same kernel, but `full` differs: two keys, two dispatches.
        scheduler.submit(0, Request::Run { kernel, full: false, shard: None });
        scheduler.submit(1, Request::Run { kernel, full: true, shard: None });
        scheduler.submit(2, Request::Run { kernel, full: false, shard: None });
        // A general request rides alongside without joining any batch.
        scheduler.submit(3, Request::Ping);
        scheduler.resume();
        let completions = log.wait_for(4);
        assert_eq!(completions.len(), 4);
        let pong = completions.iter().find(|(conn, _)| *conn == 3).expect("ping answered");
        assert_eq!(Response::decode(&pong.1).unwrap(), Response::Pong);
        let m = engine.serve_metrics();
        assert_eq!(m.batch_dispatches.get(), 2, "one per (kernel, full) key");
        assert_eq!(m.batched_runs.get(), 3);
        scheduler.shutdown();
    }

    #[test]
    fn executor_panic_answers_every_victim_and_keeps_serving() {
        use crate::fault::{FaultPlan, FaultSite};
        let engine = Arc::new(
            Engine::new()
                .with_fault_plan(Arc::new(FaultPlan::seeded(11).nth(FaultSite::ExecutorPanic, 1))),
        );
        let (engine, kernel) = warm(engine);
        let oracle = engine.handle(&Request::Run { kernel, full: false, shard: None }).encode();

        let log = CompletionLog::new();
        let scheduler = Scheduler::new(Arc::clone(&engine), 1, 32, None, log.sink());
        scheduler.pause();
        for conn in 0..3 {
            scheduler.submit(conn, Request::Run { kernel, full: false, shard: None });
        }
        scheduler.resume();
        // Regression: before the catch, the injected panic killed the
        // sole executor thread and these three completions never came —
        // the victims' one-in-flight gates stayed wedged forever.
        let completions = log.wait_for(3);
        assert_eq!(completions.len(), 3, "every victim of the panic is answered");
        for (_, line) in &completions {
            let resp = Response::decode(line).unwrap();
            assert!(matches!(resp, Response::Error { code: ErrorCode::Internal, .. }), "{resp:?}");
        }
        assert_eq!(engine.serve_metrics().panics_caught.get(), 1);
        // The same executor thread keeps serving byte-identically.
        scheduler.submit(7, Request::Run { kernel, full: false, shard: None });
        let completions = log.wait_for(4);
        let after = completions.iter().find(|(conn, _)| *conn == 7).expect("served after panic");
        assert_eq!(**after.1, *oracle);
        scheduler.shutdown();
        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(requests.errors, 3, "one error per orphaned victim");
    }

    #[test]
    fn deadline_is_rechecked_immediately_before_dispatch() {
        use crate::fault::{FaultPlan, FaultSite};
        // The dequeue-time check passes (the task just arrived), then an
        // injected stall pushes the batch past the deadline: the
        // pre-dispatch re-check must refuse it instead of running late.
        let plan = FaultPlan::seeded(3)
            .nth(FaultSite::DispatchDelay, 1)
            .delay_for(Duration::from_millis(80));
        let engine = Arc::new(Engine::new().with_fault_plan(Arc::new(plan)));
        let (engine, kernel) = warm(engine);
        let log = CompletionLog::new();
        let scheduler =
            Scheduler::new(Arc::clone(&engine), 1, 32, Some(Duration::from_millis(20)), log.sink());
        scheduler.submit(0, Request::Run { kernel, full: false, shard: None });
        let completions = log.wait_for(1);
        assert_eq!(completions.len(), 1);
        let resp = Response::decode(&completions[0].1).unwrap();
        assert!(
            matches!(resp, Response::Error { code: ErrorCode::DeadlineExceeded, .. }),
            "{resp:?}"
        );
        let m = engine.serve_metrics();
        assert_eq!(m.deadline_exceeded.get(), 1);
        assert_eq!(m.batch_dispatches.get(), 0, "refused before the dispatch was counted");
        scheduler.shutdown();
        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(requests.run, 0, "the refused run never reached the engine");
    }

    #[test]
    fn zero_deadline_refuses_every_queued_run_structurally() {
        let (engine, kernel) = warmed_engine();
        let log = CompletionLog::new();
        let scheduler =
            Scheduler::new(Arc::clone(&engine), 1, 32, Some(Duration::ZERO), log.sink());
        for conn in 0..3 {
            scheduler.submit(conn, Request::Run { kernel, full: false, shard: None });
        }
        let completions = log.wait_for(3);
        assert_eq!(completions.len(), 3);
        for (_, line) in &completions {
            let resp = Response::decode(line).unwrap();
            assert!(
                matches!(resp, Response::Error { code: ErrorCode::DeadlineExceeded, .. }),
                "{resp:?}"
            );
        }
        let m = engine.serve_metrics();
        assert_eq!(m.deadline_exceeded.get(), 3);
        assert_eq!(m.batch_dispatches.get(), 0, "nothing was dispatched");
        scheduler.shutdown();
        let Response::Stats { requests, .. } = engine.handle(&Request::Stats) else { panic!() };
        assert_eq!(requests.errors, 3, "deadline refusals count as errors");
        assert_eq!(requests.run, 0, "refused runs never reached the engine");
    }
}
