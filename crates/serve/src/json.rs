//! A minimal JSON value: parse and serialize, no external dependencies
//! (offline-shim policy — the container cannot fetch `serde`).
//!
//! Scope is exactly what the wire protocol needs:
//!
//! * Objects keep **insertion order** (a `Vec` of pairs), so a response
//!   built in a fixed field order serializes byte-identically run after
//!   run — the e2e tier asserts byte-determinism on whole response
//!   lines.
//! * Numbers are `f64`. Serialization uses Rust's shortest round-trip
//!   `Display`, which never produces exponents and re-parses to the
//!   identical bits, so tensor values survive a response/request cycle
//!   bit-for-bit. Non-finite numbers serialize as `null` (JSON has no
//!   representation for them; the protocol layer rejects them earlier).
//! * Parsing is hardened against adversarial input: truncated or
//!   malformed text returns [`JsonError`] (never panics), trailing
//!   garbage after the top-level value is an error, and nesting deeper
//!   than [`MAX_DEPTH`] is rejected instead of overflowing the stack.

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any real
/// request; shallow enough that a hostile `[[[[…` line cannot blow the
/// parse stack.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value spanning the whole input (surrounding
    /// whitespace allowed, trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed, truncated, or
    /// too-deeply-nested input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(v)
    }

    /// Field lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (rejects
    /// fractions, negatives, and magnitudes above 2^53 where `f64`
    /// stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pair list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => write!(f, "{n}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uDC00-\uDFFF.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a whole UTF-8 character (the input is a &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads 4 hex digits (after `\u`), leaving `pos` past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }
}

/// Convenience constructors used by the protocol layer.
impl Json {
    /// A number from a `u64` (exact up to 2^53; the protocol's counters
    /// and handles stay far below that).
    pub fn num_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// A number from a `usize`.
    pub fn num_usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("serialized JSON reparses")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(1.5),
            Json::Num(-2.25e-3),
            Json::Num(9_007_199_254_740_992.0),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ \u{1f600} \u{8}\u{c}\u{1}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
        // -0.0 keeps its sign bit through the round trip.
        let z = roundtrip(&Json::Num(-0.0)).as_f64().unwrap();
        assert!(z == 0.0 && z.is_sign_negative());
    }

    #[test]
    fn f64_display_is_bit_exact() {
        // The serving e2e tier depends on shortest-round-trip printing.
        for bits in
            [0x3ff0000000000001u64, 0x0000000000000001, 0x7fefffffffffffff, 0x4330000000000000]
        {
            let v = f64::from_bits(bits);
            let reparsed = roundtrip(&Json::Num(v)).as_f64().unwrap();
            assert_eq!(reparsed.to_bits(), bits, "{v}");
        }
    }

    #[test]
    fn containers_roundtrip_preserving_order() {
        let v = Json::obj([
            ("z", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x".into())])),
            ("a", Json::obj([("nested", Json::Bool(false))])),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(v.to_string(), r#"{"z":[1,null,"x"],"a":{"nested":false}}"#);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 3, "s": "hi", "b": true, "a": [1,2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None, "fractions are not integers");
        assert_eq!(Json::Num(-1.0).as_u64(), None, "negatives are not u64");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "nul",
            "tru",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12",
            "\"\\ud800\"",
            "\"\\ud800\\u0041\"",
            "1e999",
            "-",
            "1 2",
            "{} extra",
            "\u{1}",
            "\"\u{1}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn every_proper_prefix_of_an_object_is_invalid() {
        let line = r#"{"op":"run","kernel":3,"xs":[1.5,-2,true,"s\n"]}"#;
        assert!(Json::parse(line).is_ok());
        for cut in 0..line.len() {
            if line.is_char_boundary(cut) {
                assert!(Json::parse(&line[..cut]).is_err(), "prefix of length {cut} parsed");
            }
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
        // Depth at the limit still parses.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }
}
