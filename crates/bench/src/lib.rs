//! # systec-bench
//!
//! Shared harness code for the figure-regeneration binaries
//! (`src/bin/fig*.rs`) and the Criterion benches.
//!
//! Each binary regenerates one figure of the paper's evaluation (§5.2):
//! it builds the workload, prepares every method outside the timed
//! region (packing, transposition, diagonal splitting — excluded from
//! timings exactly as in the paper), measures the minimum over repeated
//! runs, prints a table normalized to naive Finch (the paper's red line
//! at 1.0), and writes a JSON file under `bench_results/`.
//!
//! ```sh
//! cargo run --release -p systec-bench --bin fig6_ssymv             # scaled suite
//! cargo run --release -p systec-bench --bin fig6_ssymv -- --full   # full Table 2 sizes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Command-line options shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Divide the paper's problem sizes by this factor (default 4; 1
    /// with `--full`).
    pub scale: usize,
    /// Per-case measurement budget in milliseconds.
    pub budget_ms: u64,
    /// Output JSON path (default `bench_results/<figure>.json`).
    pub out: Option<String>,
}

impl HarnessArgs {
    /// Parses `--full`, `--scale N`, `--budget-ms N`, `--out PATH` from
    /// `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_with_default_scale(4)
    }

    /// Like [`HarnessArgs::parse`] with a figure-specific default scale
    /// (the synthetic-tensor figures run at full size by default; only
    /// the Table 2 suite needs scaling to keep generation time sane).
    pub fn parse_with_default_scale(default_scale: usize) -> Self {
        let mut args = HarnessArgs { scale: default_scale, budget_ms: 300, out: None };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.scale = 1,
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a positive integer");
                }
                "--budget-ms" => {
                    args.budget_ms = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--budget-ms needs a positive integer");
                }
                "--out" => args.out = Some(it.next().expect("--out needs a path")),
                other => {
                    panic!("unknown argument {other} (expected --full/--scale/--budget-ms/--out)")
                }
            }
        }
        args
    }

    /// The measurement budget as a [`Duration`].
    pub fn budget(&self) -> Duration {
        Duration::from_millis(self.budget_ms)
    }
}

/// Measures the minimum wall time of `f` over repeated runs: at least
/// `min_runs`, stopping once `budget` is spent — the paper's
/// "minimum of 10,000 runs or 5s, whichever happens first" methodology
/// scaled to interpreter speeds.
pub fn time_min(budget: Duration, min_runs: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    let started = Instant::now();
    let mut runs = 0usize;
    while runs < min_runs || started.elapsed() < budget {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
        runs += 1;
        if runs >= 10_000 {
            break;
        }
    }
    best
}

/// One benchmark case: a label (matrix name / parameter point) and the
/// measured seconds per method.
#[derive(Clone, Debug)]
pub struct Case {
    /// Case label (e.g. the matrix name).
    pub label: String,
    /// Free-form metadata (`dim=…, nnz=…`).
    pub meta: String,
    /// `(method name, seconds)` pairs; must include `"naive"`.
    pub series: Vec<(String, f64)>,
}

impl Case {
    /// Speedup of `method` over the naive baseline (the paper's
    /// normalization).
    pub fn speedup(&self, method: &str) -> Option<f64> {
        let naive = self.series.iter().find(|(n, _)| n == "naive")?.1;
        let m = self.series.iter().find(|(n, _)| n == method)?.1;
        Some(naive / m)
    }
}

/// A figure's complete result set.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure id (`"fig6_ssymv"`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's expected speedup line (the purple line).
    pub expected_speedup: f64,
    /// All measured cases.
    pub cases: Vec<Case>,
}

impl Figure {
    /// Prints the normalized table the figure plots.
    pub fn print(&self) {
        println!("\n== {} ({}) ==", self.title, self.id);
        println!("(speedup over naive; paper's expected line at {:.2}x)\n", self.expected_speedup);
        let methods: Vec<&String> = self
            .cases
            .first()
            .map(|c| c.series.iter().map(|(n, _)| n).filter(|n| *n != "naive").collect())
            .unwrap_or_default();
        print!("{:<18}", "case");
        for m in &methods {
            print!("{:>14}", m);
        }
        println!("{:>26}", "meta");
        for case in &self.cases {
            print!("{:<18}", case.label);
            for m in &methods {
                match case.speedup(m) {
                    Some(s) => print!("{s:>13.2}x"),
                    None => print!("{:>14}", "-"),
                }
            }
            println!("{:>26}", case.meta);
        }
        // Geometric mean per method (the paper reports averages).
        print!("{:<18}", "geo-mean");
        for m in &methods {
            let mut product = 1.0f64;
            let mut count = 0usize;
            for case in &self.cases {
                if let Some(s) = case.speedup(m) {
                    product *= s;
                    count += 1;
                }
            }
            if count > 0 {
                print!("{:>13.2}x", product.powf(1.0 / count as f64));
            } else {
                print!("{:>14}", "-");
            }
        }
        println!();
    }

    /// Serializes to JSON (hand-rolled; values are labels and floats).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"id\": \"{}\",", self.id);
        let _ = writeln!(s, "  \"title\": \"{}\",", self.title);
        let _ = writeln!(s, "  \"expected_speedup\": {},", self.expected_speedup);
        let _ = writeln!(s, "  \"cases\": [");
        for (k, case) in self.cases.iter().enumerate() {
            let _ = writeln!(s, "    {{");
            let _ = writeln!(s, "      \"label\": \"{}\",", case.label);
            let _ = writeln!(s, "      \"meta\": \"{}\",", case.meta);
            let _ = writeln!(s, "      \"seconds\": {{");
            for (j, (name, secs)) in case.series.iter().enumerate() {
                let comma = if j + 1 < case.series.len() { "," } else { "" };
                let _ = writeln!(s, "        \"{name}\": {secs:e}{comma}");
            }
            let _ = writeln!(s, "      }}");
            let comma = if k + 1 < self.cases.len() { "," } else { "" };
            let _ = writeln!(s, "    }}{comma}");
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Writes the JSON next to the repo (`bench_results/<id>.json` by
    /// default, or the `--out` path).
    pub fn write(&self, args: &HarnessArgs) {
        let path = args.out.clone().unwrap_or_else(|| format!("bench_results/{}.json", self.id));
        if let Some(parent) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, self.to_json()).expect("write results JSON");
        println!("\nresults written to {path}");
    }
}

/// Generates the (scaled) Table 2 suite, symmetrized as `A + Aᵀ`
/// (§5.2: "the asymmetric matrices in the suite were symmetrized by
/// summing the transpose"). Prints progress, since full-scale
/// generation of the multi-million-nnz members takes a while.
pub fn suite_cases(
    scale: usize,
) -> Vec<(systec_tensor::suite::MatrixSpec, systec_tensor::CooTensor)> {
    systec_tensor::suite::table2()
        .into_iter()
        .map(|spec| {
            let scaled = if scale > 1 { spec.scaled_down(scale) } else { spec };
            eprintln!("generating {} (dim={}, nnz={})", scaled.name, scaled.dim, scaled.nnz);
            let sym = scaled.generate_symmetric();
            (scaled, sym)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_relative_to_naive() {
        let case = Case {
            label: "m".into(),
            meta: String::new(),
            series: vec![("naive".into(), 2.0), ("systec".into(), 1.0)],
        };
        assert_eq!(case.speedup("systec"), Some(2.0));
        assert_eq!(case.speedup("missing"), None);
    }

    #[test]
    fn json_shape() {
        let fig = Figure {
            id: "figX",
            title: "t",
            expected_speedup: 2.0,
            cases: vec![Case {
                label: "m".into(),
                meta: "nnz=1".into(),
                series: vec![("naive".into(), 2.0), ("systec".into(), 1.0)],
            }],
        };
        let json = fig.to_json();
        assert!(json.contains("\"id\": \"figX\""));
        assert!(json.contains("\"systec\": 1e0"));
    }

    #[test]
    fn time_min_respects_min_runs() {
        let mut count = 0;
        let _ = time_min(Duration::ZERO, 3, || count += 1);
        assert!(count >= 3);
    }
}
