//! Figure 9: SSYRK (sparse symmetric rank-k update) performance.
//!
//! `C[i,j] += A[i,k] * A[j,k]` — A is not symmetric; C is symmetric by
//! construction, so visible output symmetry halves compute and writes.
//! Paper result: 2.20x over naive Finch (compute-bound, so the full 2x
//! materializes, plus reuse at the triangle's point).
//!
//! SSYRK is quadratic in the dimension, so (like the paper's artifact,
//! which drops it entirely for time) this binary uses the smaller suite
//! members only.

use systec_bench::{time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, native, Prepared};

fn main() {
    let args = HarnessArgs::parse();
    let def = defs::ssyrk();
    let mut cases = Vec::new();
    let members: Vec<_> =
        systec_tensor::suite::table2().into_iter().filter(|s| s.dim <= 6_000).collect();
    for spec in members {
        let scaled = if args.scale > 1 { spec.scaled_down(args.scale) } else { spec };
        eprintln!("generating {} (dim={}, nnz={})", scaled.name, scaled.dim, scaled.nnz);
        // SSYRK uses the raw (asymmetric) matrix — C supplies the
        // symmetry.
        let a = scaled.generate();
        let nnz = a.nnz();
        let inputs = def.inputs([("A", a.into())]).expect("inputs pack");
        let systec = Prepared::compile(&def, &inputs).expect("prepare systec");
        let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
        let a_sparse = inputs["A"].as_sparse().expect("A is compressed");

        let budget = args.budget();
        let t_systec = time_min(budget, 2, || {
            let _ = systec.run_timed().expect("run");
        });
        let t_naive = time_min(budget, 2, || {
            let _ = naive.run_timed().expect("run");
        });
        let t_native = time_min(budget, 2, || {
            let _ = native::csr_ssyrk(a_sparse);
        });
        eprintln!("{:<12} systec {:>10.3?}  naive {:>10.3?}", scaled.name, t_systec, t_naive);
        cases.push(Case {
            label: scaled.name.to_string(),
            meta: format!("dim={} nnz={}", scaled.dim, nnz),
            series: vec![
                ("naive".into(), t_naive.as_secs_f64()),
                ("systec".into(), t_systec.as_secs_f64()),
                ("native_direct".into(), t_native.as_secs_f64()),
            ],
        });
    }
    let fig = Figure {
        id: "fig9_ssyrk",
        title: "Figure 9: SSYRK over the small Table 2 members",
        expected_speedup: 2.20,
        cases,
    };
    fig.print();
    fig.write(&args);
}
