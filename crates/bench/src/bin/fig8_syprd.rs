//! Figure 8: SYPRD (symmetric triple product) over the Table 2 suite.
//!
//! Invisible `{{i, j}}` output symmetry halves both reads *and*
//! computations (§5.2.3); paper result: 1.79x over naive Finch on
//! average, approaching 2x.

use systec_bench::{suite_cases, time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, native, Prepared};
use systec_tensor::generate::{random_dense, rng};

fn main() {
    let args = HarnessArgs::parse();
    let def = defs::syprd();
    let mut cases = Vec::new();
    for (spec, sym) in suite_cases(args.scale) {
        let mut r = rng(0xF188);
        let x = random_dense(vec![spec.dim], &mut r);
        let nnz = sym.nnz();
        let inputs = def.inputs([("A", sym.into()), ("x", x.clone().into())]).expect("inputs pack");
        let systec = Prepared::compile(&def, &inputs).expect("prepare systec");
        let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
        let a_sparse = inputs["A"].as_sparse().expect("A is compressed");

        let budget = args.budget();
        let t_systec = time_min(budget, 3, || {
            let _ = systec.run_timed().expect("run");
        });
        let t_naive = time_min(budget, 3, || {
            let _ = naive.run_timed().expect("run");
        });
        let t_native = time_min(budget, 3, || {
            let _ = native::csr_syprd(a_sparse, &x);
        });
        eprintln!("{:<12} systec {:>10.3?}  naive {:>10.3?}", spec.name, t_systec, t_naive);
        cases.push(Case {
            label: spec.name.to_string(),
            meta: format!("dim={} nnz={}", spec.dim, nnz),
            series: vec![
                ("naive".into(), t_naive.as_secs_f64()),
                ("systec".into(), t_systec.as_secs_f64()),
                ("native_direct".into(), t_native.as_secs_f64()),
            ],
        });
    }
    let fig = Figure {
        id: "fig8_syprd",
        title: "Figure 8: SYPRD over the Table 2 suite",
        expected_speedup: 1.79,
        cases,
    };
    fig.print();
    fig.write(&args);
}
