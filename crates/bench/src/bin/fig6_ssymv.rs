//! Figure 6: SSYMV performance over the Table 2 matrix suite.
//!
//! Methods: `systec` (the compiled symmetric kernel), `naive` (naive
//! Finch baseline, same executor), and two *native* comparators on a
//! separate performance tier — `native_taco` (plain CSR SpMV, what TACO
//! emits) and `native_mkl` (symmetric CSR SpMV, the `mkl_dcsrsymv`
//! slot). Paper result: SySTeC 1.45x over naive Finch on average,
//! bounded by 2x (bandwidth).

use systec_bench::{suite_cases, time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, native, Prepared};
use systec_tensor::generate::{random_dense, rng};

fn main() {
    let args = HarnessArgs::parse();
    let def = defs::ssymv();
    let mut cases = Vec::new();
    for (spec, sym) in suite_cases(args.scale) {
        let mut r = rng(0xF166);
        let x = random_dense(vec![spec.dim], &mut r);
        let nnz = sym.nnz();
        let inputs = def.inputs([("A", sym.into()), ("x", x.clone().into())]).expect("inputs pack");
        let systec = Prepared::compile(&def, &inputs).expect("prepare systec");
        let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
        let a_sparse = inputs["A"].as_sparse().expect("A is compressed");

        // The paper's SSYMV-class speedup is pure memory bandwidth; on
        // this executor the bandwidth proxy is the element-read ratio,
        // reported alongside the times.
        let (_, c_sym) = systec.run_timed().expect("counters");
        let (_, c_naive) = naive.run_timed().expect("counters");
        let read_ratio = c_naive.reads_of_family("A") as f64 / c_sym.reads_of_family("A") as f64;
        let budget = args.budget();
        let t_systec = time_min(budget, 3, || {
            let _ = systec.run_timed().expect("run");
        });
        let t_naive = time_min(budget, 3, || {
            let _ = naive.run_timed().expect("run");
        });
        let t_taco = time_min(budget, 3, || {
            let _ = native::csr_spmv(a_sparse, &x);
        });
        let t_mkl = time_min(budget, 3, || {
            let _ = native::symmetric_csr_spmv(a_sparse, &x);
        });
        eprintln!("{:<12} systec {:>10.3?}  naive {:>10.3?}", spec.name, t_systec, t_naive);
        cases.push(Case {
            label: spec.name.to_string(),
            meta: format!("dim={} nnz={} readsx={:.2}", spec.dim, nnz, read_ratio),
            series: vec![
                ("naive".into(), t_naive.as_secs_f64()),
                ("systec".into(), t_systec.as_secs_f64()),
                ("native_taco".into(), t_taco.as_secs_f64()),
                ("native_mkl".into(), t_mkl.as_secs_f64()),
            ],
        });
    }
    let fig = Figure {
        id: "fig6_ssymv",
        title: "Figure 6: SSYMV over the Table 2 suite",
        expected_speedup: 1.45,
        cases,
    };
    fig.print();
    fig.write(&args);
}
