//! Figure 7: Bellman-Ford update performance over the Table 2 suite.
//!
//! Identical to SSYMV from a performance perspective (§5.2.2) but over
//! the tropical `(min, +)` semiring — included, as in the paper, to show
//! the compiler symmetrizes operations beyond `+` and `*`.

use systec_bench::{suite_cases, time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, native, Prepared};
use systec_tensor::generate::{random_dense, rng};

fn main() {
    let args = HarnessArgs::parse();
    let def = defs::bellman_ford();
    let mut cases = Vec::new();
    for (spec, sym) in suite_cases(args.scale) {
        let mut r = rng(0xF177);
        let d = random_dense(vec![spec.dim], &mut r);
        let nnz = sym.nnz();
        let inputs = def.inputs([("A", sym.into()), ("d", d.clone().into())]).expect("inputs pack");
        let mut systec = Prepared::compile(&def, &inputs).expect("prepare systec");
        let mut naive = Prepared::naive(&def, &inputs).expect("prepare naive");
        systec.init_output("y", d.clone());
        naive.init_output("y", d.clone());
        let a_sparse = inputs["A"].as_sparse().expect("A is compressed");

        // The paper's SSYMV-class speedup is pure memory bandwidth; on
        // this executor the bandwidth proxy is the element-read ratio,
        // reported alongside the times.
        let (_, c_sym) = systec.run_timed().expect("counters");
        let (_, c_naive) = naive.run_timed().expect("counters");
        let read_ratio = c_naive.reads_of_family("A") as f64 / c_sym.reads_of_family("A") as f64;
        let budget = args.budget();
        let t_systec = time_min(budget, 3, || {
            let _ = systec.run_timed().expect("run");
        });
        let t_naive = time_min(budget, 3, || {
            let _ = naive.run_timed().expect("run");
        });
        let t_native = time_min(budget, 3, || {
            let _ = native::csr_bellman_ford(a_sparse, &d, &d);
        });
        eprintln!("{:<12} systec {:>10.3?}  naive {:>10.3?}", spec.name, t_systec, t_naive);
        cases.push(Case {
            label: spec.name.to_string(),
            meta: format!("dim={} nnz={} readsx={:.2}", spec.dim, nnz, read_ratio),
            series: vec![
                ("naive".into(), t_naive.as_secs_f64()),
                ("systec".into(), t_systec.as_secs_f64()),
                ("native_direct".into(), t_native.as_secs_f64()),
            ],
        });
    }
    let fig = Figure {
        id: "fig7_bellman_ford",
        title: "Figure 7: Bellman-Ford step over the Table 2 suite",
        expected_speedup: 1.45,
        cases,
    };
    fig.print();
    fig.write(&args);
}
