//! Figure 10: TTM (mode-1 tensor-times-matrix) over random symmetric
//! 3-tensors, sweeping sparsity and numerical rank.
//!
//! `C[i,j,l] += A[k,j,l] * B[k,i]` with fully symmetric `A`: the
//! optimized kernel reads 1/6 of `A` and halves compute via the
//! `{{j,l}}` visible output symmetry. Paper result: ~2x at high density
//! / low rank, *under*performing naive at high rank where initializing
//! the dense output dominates (§5.2.5) — the timed region includes
//! output initialization here, exactly as in the paper.

use systec_bench::{time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, Prepared};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

fn main() {
    let args = HarnessArgs::parse_with_default_scale(1);
    let def = defs::ttm();
    let n = (48 / args.scale).max(12);
    let sparsities = [2e-3, 1e-2, 5e-2];
    let ranks = [4usize, 16, 64, 256];
    let mut cases = Vec::new();
    for &p in &sparsities {
        let mut r = rng(0xF100);
        let a = symmetric_erdos_renyi(n, 3, p, &mut r);
        let nnz = a.nnz();
        eprintln!("tensor n={n} p={p}: nnz={nnz}");
        for &rank in &ranks {
            let b = random_dense(vec![n, rank], &mut r);
            let inputs =
                def.inputs([("A", a.clone().into()), ("B", b.into())]).expect("inputs pack");
            let systec = Prepared::compile(&def, &inputs).expect("prepare systec");
            let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
            let budget = args.budget();
            let t_systec = time_min(budget, 3, || {
                let _ = systec.run_timed().expect("run");
            });
            let t_naive = time_min(budget, 3, || {
                let _ = naive.run_timed().expect("run");
            });
            eprintln!("  rank={rank:<4} systec {t_systec:>10.3?}  naive {t_naive:>10.3?}");
            cases.push(Case {
                label: format!("p={p:.0e} r={rank}"),
                meta: format!("n={n} nnz={nnz}"),
                series: vec![
                    ("naive".into(), t_naive.as_secs_f64()),
                    ("systec".into(), t_systec.as_secs_f64()),
                ],
            });
        }
    }
    let fig = Figure {
        id: "fig10_ttm",
        title: "Figure 10: TTM over sparsity x rank",
        expected_speedup: 2.0,
        cases,
    };
    fig.print();
    fig.write(&args);
}
