//! Figure 11: 3-, 4- and 5-dimensional MTTKRP over varying sparsity and
//! numerical rank.
//!
//! The flagship result: the symmetric kernels read `1/d!` of `A` and
//! perform `1/(d-1)!` of the computations; the paper reports maximal
//! speedups of 3.38x / 7.35x / 29.8x for d = 3 / 4 / 5 over naive
//! Finch (expected 2x / 6x / 24x from op counts, exceeded thanks to
//! register reuse).

use systec_bench::{time_min, Case, Figure, HarnessArgs};
use systec_kernels::{defs, native, Prepared};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

fn main() {
    let args = HarnessArgs::parse_with_default_scale(1);
    let mut figures = Vec::new();
    let configs: [(usize, usize, [f64; 2], f64); 3] = [
        // (order, base n, sparsities, expected speedup)
        (3, 48, [2e-3, 2e-2], 2.0),
        (4, 22, [2e-4, 2e-3], 6.0),
        (5, 14, [2e-5, 2e-4], 24.0),
    ];
    for (order, base_n, sparsities, expected) in configs {
        let def = defs::mttkrp(order);
        let n = (base_n / args.scale).max(8);
        let mut cases = Vec::new();
        for &p in &sparsities {
            let mut r = rng(0xF110 + order as u64);
            let a = symmetric_erdos_renyi(n, order, p, &mut r);
            let nnz = a.nnz();
            eprintln!("order={order} n={n} p={p:.0e}: nnz={nnz}");
            for rank in [4usize, 16, 64] {
                let b = random_dense(vec![n, rank], &mut r);
                let inputs = def
                    .inputs([("A", a.clone().into()), ("B", b.clone().into())])
                    .expect("inputs pack");
                let systec = Prepared::compile(&def, &inputs).expect("prepare systec");
                let naive = Prepared::naive(&def, &inputs).expect("prepare naive");
                let budget = args.budget();
                let t_systec = time_min(budget, 3, || {
                    let _ = systec.run_timed().expect("run");
                });
                let t_naive = time_min(budget, 3, || {
                    let _ = naive.run_timed().expect("run");
                });
                let mut series = vec![
                    ("naive".into(), t_naive.as_secs_f64()),
                    ("systec".into(), t_systec.as_secs_f64()),
                ];
                if order == 3 {
                    let a_sparse = inputs["A"].as_sparse().expect("compressed");
                    let b_dense = inputs["B"].as_dense().expect("dense");
                    let t_splatt = time_min(budget, 3, || {
                        let _ = native::csf_mttkrp3(a_sparse, b_dense);
                    });
                    series.push(("native_splatt".into(), t_splatt.as_secs_f64()));
                }
                eprintln!("  rank={rank:<4} systec {t_systec:>10.3?}  naive {t_naive:>10.3?}");
                cases.push(Case {
                    label: format!("p={p:.0e} r={rank}"),
                    meta: format!("n={n} nnz={nnz}"),
                    series,
                });
            }
        }
        figures.push(Figure {
            id: match order {
                3 => "fig11_mttkrp3",
                4 => "fig11_mttkrp4",
                _ => "fig11_mttkrp5",
            },
            title: match order {
                3 => "Figure 11 (left): 3-d MTTKRP",
                4 => "Figure 11 (middle): 4-d MTTKRP",
                _ => "Figure 11 (right): 5-d MTTKRP",
            },
            expected_speedup: expected,
            cases,
        });
    }
    for fig in &figures {
        fig.print();
        fig.write(&args);
    }
}
