//! Scratch probe: lane vs scalar serial medians for the three
//! dense/RLE-dominated kernels across working-set sizes. Not part of
//! the checked-in bench surface; used to pick `benches/kernels.rs`
//! sizes where the fold chain (not memory bandwidth) is what the lanes
//! axis measures.

use std::collections::HashMap;
use std::time::Instant;

use systec_kernels::{defs, Backend, Counters, ExecContext, KernelDef, LaneMode, Prepared};
use systec_tensor::generate::{
    random_dense, rng, sprand, symmetric_block_plateau, symmetric_erdos_renyi,
};
use systec_tensor::{LevelFormat, SparseTensor, Tensor};

fn median_ns(f: &mut dyn FnMut()) -> f64 {
    // Warm up, then time enough reps to dominate timer noise.
    for _ in 0..3 {
        f();
    }
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let reps = 8;
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_nanos() as f64 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn probe(name: &str, def: &KernelDef, inputs: &HashMap<String, Tensor>) -> (f64, f64) {
    let prepared = Prepared::compile(def, inputs).expect("prepare");
    let mut out = HashMap::new();
    let mut counters = Counters::new();
    let lanes = {
        let runner = prepared.clone().with_backend(Backend::Compiled);
        let mut ctx = ExecContext::new();
        median_ns(&mut || {
            runner.run_timed_into(&mut out, &mut ctx, &mut counters).expect("run");
        })
    };
    let scalar = {
        let runner = prepared.clone().with_backend(Backend::Compiled);
        let mut ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
        median_ns(&mut || {
            runner.run_timed_into(&mut out, &mut ctx, &mut counters).expect("run");
        })
    };
    println!(
        "  {name:14} lanes {:>9.0}ns scalar {:>9.0}ns ratio {:.3}",
        lanes,
        scalar,
        scalar / lanes
    );
    (lanes, scalar)
}

fn main() {
    for (n, block, pb) in
        [(1000usize, 32usize, 0.08f64), (1600, 32, 0.05), (2000, 32, 0.035), (2500, 32, 0.025)]
    {
        let mut r = rng(1);
        let a2 = symmetric_block_plateau(n, block, pb, &mut r);
        let nnz = a2.entries().count();
        let x = random_dense(vec![n], &mut r);
        let a_rle = Tensor::Sparse(
            SparseTensor::from_coo(&a2, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap(),
        );
        println!("RLE n={n} block={block} pb={pb} (~{:.0} nnz/row)", nnz as f64 / n as f64);
        let mut ratios = Vec::new();
        let def = defs::ssymv();
        let inputs =
            HashMap::from([("A".to_string(), a_rle.clone()), ("x".to_string(), x.clone().into())]);
        let (l, s) = probe("ssymv", &def, &inputs);
        ratios.push(s / l);
        let def = defs::bellman_ford();
        let inputs =
            HashMap::from([("A".to_string(), a_rle.clone()), ("d".to_string(), x.clone().into())]);
        let (l, s) = probe("bellman_ford", &def, &inputs);
        ratios.push(s / l);
        let def = defs::syprd();
        let inputs = HashMap::from([("A".to_string(), a_rle), ("x".to_string(), x.into())]);
        let (l, s) = probe("syprd", &def, &inputs);
        ratios.push(s / l);
        let geo: f64 = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
        println!("  geomean {geo:.3}");
    }
    {
        // SSYRK (intersection-probe dominated): is the lane path a net
        // win at the bench's workload shape?
        let mut r = rng(1);
        let def = defs::ssyrk();
        let a = sprand(200, 200, 8_000, &mut r);
        let inputs = def.inputs([("A", a.into())]).unwrap();
        probe("ssyrk", &def, &inputs);
    }
    for (n, p) in [(400usize, 0.16f64), (2500, 0.024)] {
        let mut r = rng(1);
        let a2 = symmetric_erdos_renyi(n, 2, p, &mut r);
        let x = random_dense(vec![n], &mut r);
        println!("n={n} p={p} (~{:.0} nnz/row)", n as f64 * p);
        let mut ratios = Vec::new();
        let def = defs::ssymv();
        let inputs = def.inputs([("A", a2.clone().into()), ("x", x.clone().into())]).unwrap();
        let (l, s) = probe("ssymv", &def, &inputs);
        ratios.push(s / l);
        let def = defs::bellman_ford();
        let inputs = def.inputs([("A", a2.clone().into()), ("d", x.clone().into())]).unwrap();
        let (l, s) = probe("bellman_ford", &def, &inputs);
        ratios.push(s / l);
        let def = defs::syprd();
        let inputs = def.inputs([("A", a2.into()), ("x", x.into())]).unwrap();
        let (l, s) = probe("syprd", &def, &inputs);
        ratios.push(s / l);
        let geo: f64 = ratios.iter().product::<f64>().powf(1.0 / ratios.len() as f64);
        println!("  geomean {geo:.3}");
    }
}
