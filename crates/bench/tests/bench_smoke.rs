//! CI smoke for the perf path: drives every bench kernel once at tiny
//! sizes across the same axes as `benches/kernels.rs` — both variants
//! (symmetric / naive), both backends, a threads cell, the counter-off
//! mode, and the scalar lane-mode cell — so a panic on a hot path
//! fails the build instead of the next bench run. Output agreement
//! between backends rides along (byte-identical at these tiny sizes:
//! every fiber is below the lane kernels' short-fiber cutover, so even
//! the default lane mode folds in interpreter order).

use std::collections::HashMap;

use systec_kernels::{
    defs, Backend, CounterMode, Counters, ExecContext, KernelDef, LaneMode, Parallelism, Prepared,
};
use systec_tensor::generate::{
    random_dense, rng, sprand, symmetric_block_plateau, symmetric_erdos_renyi,
};
use systec_tensor::{LevelFormat, SparseTensor, Tensor};

fn drive(name: &str, def: &KernelDef, inputs: &HashMap<String, Tensor>) {
    for prepared in [
        Prepared::compile(def, inputs).expect("prepare systec"),
        Prepared::naive(def, inputs).expect("prepare naive"),
    ] {
        let mut reference: Option<HashMap<String, systec_tensor::DenseTensor>> = None;
        for backend in [Backend::Compiled, Backend::Interpreter] {
            let runner = prepared.clone().with_backend(backend);
            let mut outputs = HashMap::new();
            let mut ctx = ExecContext::new();
            let mut counters = Counters::new();
            runner.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("run");
            match &reference {
                None => reference = Some(outputs),
                Some(expected) => {
                    for (out_name, t) in expected {
                        assert_eq!(
                            &outputs[out_name], t,
                            "{name}: backend outputs diverge on {out_name}"
                        );
                    }
                }
            }
        }
        // Compiled extras: a threads cell (degrades to serial when the
        // plan is not splittable — still must not panic) and the
        // counter-off fused-runner mode.
        let threaded = prepared
            .clone()
            .with_backend(Backend::Compiled)
            .with_parallelism(Parallelism::threads(2));
        let mut outputs = HashMap::new();
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        threaded.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("threads run");

        let nocount = prepared.clone().with_backend(Backend::Compiled);
        let mut outputs = HashMap::new();
        let mut ctx = ExecContext::new().with_counter_mode(CounterMode::Off);
        let mut counters = Counters::new();
        nocount.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("nocount run");
        if let Some(expected) = &reference {
            for (out_name, t) in expected {
                assert_eq!(
                    &outputs[out_name], t,
                    "{name}: counter-off outputs diverge on {out_name}"
                );
            }
        }

        // The lanes axis: the serial compiled path with the explicit
        // lane runners pinned off, as in the `-scalar` bench cells.
        let scalar = prepared.clone().with_backend(Backend::Compiled);
        let mut outputs = HashMap::new();
        let mut ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
        let mut counters = Counters::new();
        scalar.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("scalar run");
        if let Some(expected) = &reference {
            for (out_name, t) in expected {
                assert_eq!(
                    &outputs[out_name], t,
                    "{name}: scalar lane-mode outputs diverge on {out_name}"
                );
            }
        }
    }
}

#[test]
fn every_bench_kernel_runs_at_tiny_size() {
    let mut r = rng(7);
    let a2 = symmetric_erdos_renyi(24, 2, 0.08, &mut r);
    let x = random_dense(vec![24], &mut r);

    let def = defs::ssymv();
    let inputs = def.inputs([("A", a2.clone().into()), ("x", x.clone().into())]).unwrap();
    drive("ssymv", &def, &inputs);

    let def = defs::bellman_ford();
    let inputs = def.inputs([("A", a2.clone().into()), ("d", x.clone().into())]).unwrap();
    drive("bellman_ford", &def, &inputs);

    let def = defs::syprd();
    let inputs = def.inputs([("A", a2.into()), ("x", x.into())]).unwrap();
    drive("syprd", &def, &inputs);

    // The benches feed these three kernels a run-length-packed plateau
    // matrix (the RLE dot / dot-axpy runners); mirror that storage here.
    // n stays below the lane cutover so every clamped window span folds
    // in interpreter order and the byte-equality asserts still hold.
    let mut r = rng(9);
    let plateau = symmetric_block_plateau(12, 4, 0.4, &mut r);
    let plateau = Tensor::Sparse(
        SparseTensor::from_coo(&plateau, &[LevelFormat::Dense, LevelFormat::RunLength])
            .expect("pack plateau matrix"),
    );
    let xs = random_dense(vec![12], &mut r);

    let def = defs::ssymv();
    let inputs =
        HashMap::from([("A".to_string(), plateau.clone()), ("x".to_string(), xs.clone().into())]);
    drive("ssymv-rle", &def, &inputs);

    let def = defs::bellman_ford();
    let inputs =
        HashMap::from([("A".to_string(), plateau.clone()), ("d".to_string(), xs.clone().into())]);
    drive("bellman_ford-rle", &def, &inputs);

    let def = defs::syprd();
    let inputs = HashMap::from([("A".to_string(), plateau), ("x".to_string(), xs.into())]);
    drive("syprd-rle", &def, &inputs);

    let def = defs::ssyrk();
    let a = sprand(12, 12, 30, &mut r);
    let inputs = def.inputs([("A", a.into())]).unwrap();
    drive("ssyrk", &def, &inputs);

    let def = defs::ttm();
    let a3 = symmetric_erdos_renyi(8, 3, 0.08, &mut r);
    let b = random_dense(vec![8, 4], &mut r);
    let inputs = def.inputs([("A", a3.clone().into()), ("B", b.clone().into())]).unwrap();
    drive("ttm", &def, &inputs);

    let def = defs::mttkrp(3);
    let inputs = def.inputs([("A", a3.into()), ("B", b.into())]).unwrap();
    drive("mttkrp3", &def, &inputs);

    let def = defs::mttkrp(4);
    let a4 = symmetric_erdos_renyi(7, 4, 0.05, &mut r);
    let b = random_dense(vec![7, 4], &mut r);
    let inputs = def.inputs([("A", a4.into()), ("B", b.clone().into())]).unwrap();
    drive("mttkrp4", &def, &inputs);

    let def = defs::mttkrp(5);
    let a5 = symmetric_erdos_renyi(6, 5, 0.02, &mut r);
    let b = random_dense(vec![6, 4], &mut r);
    let inputs = def.inputs([("A", a5.into()), ("B", b.into())]).unwrap();
    drive("mttkrp5", &def, &inputs);
}
