//! Ablation benches: each optimization pass of §4.2 toggled off
//! individually on the 3-d MTTKRP and SSYMV kernels, quantifying its
//! contribution to the end-to-end speedup (the design-choice analysis
//! DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use systec_core::CompileOptions;
use systec_kernels::{defs, Prepared};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

fn variants() -> Vec<(&'static str, CompileOptions)> {
    let all = CompileOptions::default();
    vec![
        ("full", all),
        ("no_cse", CompileOptions { cse: false, ..all }),
        ("no_distribute", CompileOptions { distribute: false, ..all }),
        ("no_diag_split", CompileOptions { diagonal_split: false, ..all }),
        ("no_workspace", CompileOptions { workspace: false, ..all }),
        ("no_consolidate", CompileOptions { consolidate: false, ..all }),
        ("no_visible_output", CompileOptions { visible_output: false, ..all }),
        ("with_lookup_tables", CompileOptions { lookup_tables: true, ..all }),
        ("symmetrize_only", CompileOptions::none()),
    ]
}

fn benches(c: &mut Criterion) {
    let mut r = rng(9);

    let def = defs::ssymv();
    let a = symmetric_erdos_renyi(2500, 2, 3e-3, &mut r);
    let x = random_dense(vec![2500], &mut r);
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
    let mut group = c.benchmark_group("ablation_ssymv");
    for (name, options) in variants() {
        let prepared = Prepared::compile_with(&def, &inputs, options).expect("prepare");
        group.bench_function(name, |b| b.iter(|| prepared.run_timed().expect("run")));
    }
    group.finish();

    let def = defs::mttkrp(3);
    let a = symmetric_erdos_renyi(40, 3, 1e-2, &mut r);
    let b_mat = random_dense(vec![40, 16], &mut r);
    let inputs = def.inputs([("A", a.into()), ("B", b_mat.into())]).unwrap();
    let mut group = c.benchmark_group("ablation_mttkrp3");
    for (name, options) in variants() {
        let prepared = Prepared::compile_with(&def, &inputs, options).expect("prepare");
        group.bench_function(name, |b| b.iter(|| prepared.run_timed().expect("run")));
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = benches
}
criterion_main!(ablation);
