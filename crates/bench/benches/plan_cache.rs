//! Plan-cache microbenchmark: what one kernel *preparation* costs on a
//! cache miss (full pipeline: symmetrization + §4.2 passes + hoisting +
//! lowering + bytecode compilation + data binding) versus a cache hit
//! (data binding only), and a raw hit-rate measurement of the cache
//! itself.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use systec_kernels::{clear_plan_cache, defs, plan_cache_stats, Prepared};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

fn benches(c: &mut Criterion) {
    let def = defs::ssymv();
    let mut r = rng(7);
    let a = symmetric_erdos_renyi(300, 2, 1e-2, &mut r);
    let x = random_dense(vec![300], &mut r);
    let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();

    let mut group = c.benchmark_group("plan_cache");
    // Miss: clear the cache every time, so every preparation compiles.
    group.bench_function("prepare-miss", |b| {
        b.iter(|| {
            clear_plan_cache();
            black_box(Prepared::compile(&def, &inputs).expect("prepare"))
        })
    });
    // Hit: the plan stays cached; preparation only re-binds the data.
    clear_plan_cache();
    let warm = Prepared::compile(&def, &inputs).expect("warm the cache");
    group.bench_function("prepare-hit", |b| {
        b.iter(|| black_box(Prepared::compile(&def, &inputs).expect("prepare")))
    });
    drop(warm);
    group.finish();

    // Report the hit rate the loop above produced, as a sanity check
    // that the hit path really never compiled.
    let stats = plan_cache_stats();
    println!(
        "plan cache: {} hits / {} misses ({} entries, {} evictions)",
        stats.hits, stats.misses, stats.entries, stats.evictions
    );
    assert!(stats.hits > stats.misses, "hit path must dominate misses in this benchmark");
}

criterion_group! {
    name = plan_cache;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(200));
    targets = benches
}
criterion_main!(plan_cache);
