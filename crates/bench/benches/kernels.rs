//! Criterion benches: every paper kernel across five axes — symmetric
//! vs naive (the paper's comparison), compiled VM vs tree-walking
//! interpreter (this reproduction's backend ablation), a threads axis
//! on the compiled backend (row-parallel dispatch), a counter-off
//! cell (`CounterMode::Off`, skipping per-hit counter bumps in the
//! fused-body runners), and a lanes axis (the default cells run the
//! explicit-lane runners; `-scalar` cells pin `LaneMode::Scalar`) — at
//! a small fixed size (the figure binaries sweep the real workloads;
//! these keep `cargo bench` fast and regression-friendly).
//!
//! Series names are `<kernel>/<variant>-<backend>[-tN|-nocount|-scalar]`,
//! e.g. `ssymv/systec-compiled` (serial, lane mode) or
//! `ssymv/systec-compiled-scalar` (serial, scalar folds). All cells
//! run over reused output buffers and a
//! reused execution context (`run_timed_into`) so the numbers measure
//! kernel work, not allocator traffic.
//!
//! After the run, the per-series medians are written as JSON to
//! `bench_results/kernels.json` (schema: `{meta, kernels}` where
//! `kernels` maps kernel → series → ns and `meta` stamps the run with
//! the git SHA, host parallelism, UTC timestamp, and counter mode) so
//! the perf trajectory diffs across PRs *and* stays interpretable
//! across machines.

use std::collections::{BTreeMap, HashMap};

use criterion::{criterion_group, Criterion};
use systec_kernels::{
    defs, Backend, CounterMode, Counters, ExecContext, KernelDef, LaneMode, Parallelism, Prepared,
};
use systec_tensor::generate::{
    random_dense, rng, sprand, symmetric_block_plateau, symmetric_erdos_renyi,
};
use systec_tensor::{LevelFormat, SparseTensor, Tensor};

fn bench_grid(c: &mut Criterion, name: &str, def: &KernelDef, inputs: &HashMap<String, Tensor>) {
    let systec = Prepared::compile(def, inputs).expect("prepare systec");
    let naive = Prepared::naive(def, inputs).expect("prepare naive");
    let serial_only = [("", Parallelism::Serial)];
    let threaded = [
        ("", Parallelism::Serial),
        ("-t2", Parallelism::threads(2)),
        ("-t4", Parallelism::threads(4)),
    ];
    let mut group = c.benchmark_group(name);
    for (variant, prepared) in [("systec", &systec), ("naive", &naive)] {
        for (backend_name, backend) in
            [("compiled", Backend::Compiled), ("interp", Backend::Interpreter)]
        {
            // The threads axis applies to the compiled backend only (the
            // interpreter has no parallel dispatch), and only when the
            // plan actually splits — otherwise the -tN cells would be
            // relabeled serial runs.
            let par_axis: &[(&str, Parallelism)] =
                if backend == Backend::Compiled && prepared.splittable() {
                    &threaded
                } else {
                    &serial_only
                };
            for (suffix, par) in par_axis {
                let runner = prepared.clone().with_backend(backend).with_parallelism(*par);
                let mut outputs = HashMap::new();
                let mut ctx = ExecContext::new();
                let mut counters = Counters::new();
                group.bench_function(&format!("{variant}-{backend_name}{suffix}"), |b| {
                    b.iter(|| {
                        runner.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("run")
                    })
                });
            }
        }
        // Counter-off cell: the serial compiled path with per-hit
        // counter maintenance compiled out of the fused-body runners.
        if variant == "systec" {
            let runner = prepared.clone().with_backend(Backend::Compiled);
            let mut outputs = HashMap::new();
            let mut ctx = ExecContext::new().with_counter_mode(CounterMode::Off);
            let mut counters = Counters::new();
            group.bench_function(&format!("{variant}-compiled-nocount"), |b| {
                b.iter(|| {
                    runner.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("run")
                })
            });
        }
        // Lanes axis: the same serial compiled path with the
        // explicit-lane runners switched off, isolating what the lane
        // accumulators buy over the loop-carried scalar folds.
        if variant == "systec" {
            let runner = prepared.clone().with_backend(Backend::Compiled);
            let mut outputs = HashMap::new();
            let mut ctx = ExecContext::new().with_lane_mode(LaneMode::Scalar);
            let mut counters = Counters::new();
            group.bench_function(&format!("{variant}-compiled-scalar"), |b| {
                b.iter(|| {
                    runner.run_timed_into(&mut outputs, &mut ctx, &mut counters).expect("run")
                })
            });
        }
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    // SSYMV / Bellman-Ford / SYPRD share a 1600x1600 symmetric
    // block-plateau matrix packed `[Dense, RunLength]` — these are the
    // dense/RLE-dominated kernels, and run-structured rows (FEM/stencil
    // plateau structure, ~80 nonzeros per row in runs of 32) are the
    // storage where their inner loops are contiguous window folds
    // rather than per-coordinate gathers. Sized so the working set
    // stays cache-resident: the lanes axis then measures the fold
    // chain, not memory bandwidth.
    let mut r = rng(1);
    let a2 = symmetric_block_plateau(1600, 32, 0.05, &mut r);
    let a2 = Tensor::Sparse(
        SparseTensor::from_coo(&a2, &[LevelFormat::Dense, LevelFormat::RunLength])
            .expect("pack plateau matrix"),
    );
    let x = random_dense(vec![1600], &mut r);

    let def = defs::ssymv();
    let inputs =
        HashMap::from([("A".to_string(), a2.clone()), ("x".to_string(), x.clone().into())]);
    bench_grid(c, "ssymv", &def, &inputs);

    let def = defs::bellman_ford();
    let inputs =
        HashMap::from([("A".to_string(), a2.clone()), ("d".to_string(), x.clone().into())]);
    bench_grid(c, "bellman_ford", &def, &inputs);

    let def = defs::syprd();
    let inputs = HashMap::from([("A".to_string(), a2), ("x".to_string(), x.into())]);
    bench_grid(c, "syprd", &def, &inputs);

    // ~40 nonzeros per row: the intersection dots run long enough to
    // engage the lane kernels.
    let def = defs::ssyrk();
    let a = sprand(200, 200, 8_000, &mut r);
    let inputs = def.inputs([("A", a.into())]).unwrap();
    bench_grid(c, "ssyrk", &def, &inputs);

    let def = defs::ttm();
    let a3 = symmetric_erdos_renyi(40, 3, 1e-2, &mut r);
    let b = random_dense(vec![40, 16], &mut r);
    let inputs = def.inputs([("A", a3.clone().into()), ("B", b.clone().into())]).unwrap();
    bench_grid(c, "ttm", &def, &inputs);

    let def = defs::mttkrp(3);
    let inputs = def.inputs([("A", a3.into()), ("B", b.into())]).unwrap();
    bench_grid(c, "mttkrp3", &def, &inputs);

    // The higher-order MTTKRPs use enough nonzeros that the measurement
    // is dominated by kernel loops rather than per-run bookkeeping
    // (binding, output reset), which is identical on both backends.
    let def = defs::mttkrp(4);
    let a4 = symmetric_erdos_renyi(18, 4, 2e-3, &mut r);
    let b = random_dense(vec![18, 16], &mut r);
    let inputs = def.inputs([("A", a4.into()), ("B", b.into())]).unwrap();
    bench_grid(c, "mttkrp4", &def, &inputs);

    let def = defs::mttkrp(5);
    let a5 = symmetric_erdos_renyi(12, 5, 2e-4, &mut r);
    let b = random_dense(vec![12, 16], &mut r);
    let inputs = def.inputs([("A", a5.into()), ("B", b.into())]).unwrap();
    bench_grid(c, "mttkrp5", &def, &inputs);
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = benches
}

/// Best-effort `git rev-parse HEAD`; benches may run from an export.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// UTC wall time as `YYYY-MM-DDTHH:MM:SSZ` (the workspace has no
/// chrono; date math is Hinnant's civil-from-days).
fn utc_timestamp() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (h, m, s) = ((secs / 3600) % 24, (secs / 60) % 60, secs % 60);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Serializes the run as `{ "meta": {...}, "kernels": { kernel: {
/// series: ns } } }` (sorted keys, hand-rolled JSON — the workspace
/// has no serde). The meta stamp is what makes a checked-in trajectory
/// point comparable: a 1-CPU container's `-t4` cells are relabeled
/// serial runs, and only `nproc` in the stamp says so.
fn report_json(records: &[criterion::BenchRecord]) -> String {
    let mut by_kernel: BTreeMap<&str, BTreeMap<&str, f64>> = BTreeMap::new();
    for r in records {
        let (kernel, series) = r.name.split_once('/').unwrap_or(("", r.name.as_str()));
        by_kernel.entry(kernel).or_default().insert(series, r.median * 1e9);
    }
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str("  \"meta\": {\n");
    out.push_str(&format!("    \"git_sha\": {:?},\n", git_sha()));
    out.push_str(&format!("    \"nproc\": {nproc},\n"));
    out.push_str(&format!("    \"timestamp\": {:?},\n", utc_timestamp()));
    out.push_str(
        "    \"counter_mode\": \"exact (series suffixed -nocount run with counters off)\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"kernels\": {\n");
    let mut kernels = by_kernel.iter().peekable();
    while let Some((kernel, series)) = kernels.next() {
        out.push_str(&format!("    {kernel:?}: {{\n"));
        let mut cells = series.iter().peekable();
        while let Some((name, ns)) = cells.next() {
            let comma = if cells.peek().is_some() { "," } else { "" };
            out.push_str(&format!("      {name:?}: {ns:.1}{comma}\n"));
        }
        let comma = if kernels.peek().is_some() { "," } else { "" };
        out.push_str(&format!("    }}{comma}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    kernels();
    // Machine-readable medians, diffable across PRs.
    let records = criterion::take_report();
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench_results");
    std::fs::create_dir_all(dir).expect("bench_results dir");
    let path = format!("{dir}/kernels.json");
    std::fs::write(&path, report_json(&records)).expect("write kernels.json");
    println!("wrote {}", path);
}
