//! Criterion benches: symmetric vs naive for every paper kernel at a
//! small fixed size (the figure binaries sweep the real workloads; these
//! keep `cargo bench` fast and regression-friendly).

use criterion::{criterion_group, criterion_main, Criterion};
use systec_kernels::{defs, KernelDef, Prepared};
use systec_tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
use systec_tensor::Tensor;

fn bench_pair(
    c: &mut Criterion,
    name: &str,
    def: &KernelDef,
    inputs: &std::collections::HashMap<String, Tensor>,
) {
    let systec = Prepared::compile(def, inputs).expect("prepare systec");
    let naive = Prepared::naive(def, inputs).expect("prepare naive");
    let mut group = c.benchmark_group(name);
    group.bench_function("systec", |b| b.iter(|| systec.run_timed().expect("run")));
    group.bench_function("naive", |b| b.iter(|| naive.run_timed().expect("run")));
    group.finish();
}

fn benches(c: &mut Criterion) {
    // SSYMV / Bellman-Ford / SYPRD share a 2500x2500 symmetric matrix.
    let mut r = rng(1);
    let a2 = symmetric_erdos_renyi(2500, 2, 3e-3, &mut r);
    let x = random_dense(vec![2500], &mut r);

    let def = defs::ssymv();
    let inputs = def.inputs([("A", a2.clone().into()), ("x", x.clone().into())]).unwrap();
    bench_pair(c, "ssymv", &def, &inputs);

    let def = defs::bellman_ford();
    let inputs = def.inputs([("A", a2.clone().into()), ("d", x.clone().into())]).unwrap();
    bench_pair(c, "bellman_ford", &def, &inputs);

    let def = defs::syprd();
    let inputs = def.inputs([("A", a2.into()), ("x", x.into())]).unwrap();
    bench_pair(c, "syprd", &def, &inputs);

    let def = defs::ssyrk();
    let a = sprand(200, 200, 2_000, &mut r);
    let inputs = def.inputs([("A", a.into())]).unwrap();
    bench_pair(c, "ssyrk", &def, &inputs);

    let def = defs::ttm();
    let a3 = symmetric_erdos_renyi(40, 3, 1e-2, &mut r);
    let b = random_dense(vec![40, 16], &mut r);
    let inputs = def.inputs([("A", a3.clone().into()), ("B", b.clone().into())]).unwrap();
    bench_pair(c, "ttm", &def, &inputs);

    let def = defs::mttkrp(3);
    let inputs = def.inputs([("A", a3.into()), ("B", b.into())]).unwrap();
    bench_pair(c, "mttkrp3", &def, &inputs);

    let def = defs::mttkrp(4);
    let a4 = symmetric_erdos_renyi(14, 4, 3e-4, &mut r);
    let b = random_dense(vec![14, 16], &mut r);
    let inputs = def.inputs([("A", a4.into()), ("B", b.into())]).unwrap();
    bench_pair(c, "mttkrp4", &def, &inputs);

    let def = defs::mttkrp(5);
    let a5 = symmetric_erdos_renyi(10, 5, 2e-5, &mut r);
    let b = random_dense(vec![10, 16], &mut r);
    let inputs = def.inputs([("A", a5.into()), ("B", b.into())]).unwrap();
    bench_pair(c, "mttkrp5", &def, &inputs);
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = benches
}
criterion_main!(kernels);
