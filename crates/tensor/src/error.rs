//! Error type for tensor construction and manipulation.

use std::error::Error;
use std::fmt;

/// An error raised while constructing or manipulating tensors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TensorError {
    /// A coordinate's arity did not match the tensor's rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Supplied arity.
        got: usize,
    },
    /// A coordinate was out of the dimension's range.
    CoordOutOfBounds {
        /// The offending mode.
        mode: usize,
        /// The coordinate value.
        coord: usize,
        /// The dimension extent.
        dim: usize,
    },
    /// The format vector's length did not match the tensor's rank.
    FormatRankMismatch {
        /// The tensor's rank.
        rank: usize,
        /// The format vector's length.
        formats: usize,
    },
    /// A mode permutation was not a permutation of `0..rank`.
    InvalidPermutation {
        /// The offending permutation.
        perm: Vec<usize>,
    },
    /// Two tensors that must agree in shape did not.
    ShapeMismatch {
        /// First shape.
        a: Vec<usize>,
        /// Second shape.
        b: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::RankMismatch { expected, got } => {
                write!(f, "coordinate arity {got} does not match tensor rank {expected}")
            }
            TensorError::CoordOutOfBounds { mode, coord, dim } => {
                write!(f, "coordinate {coord} out of bounds for mode {mode} with extent {dim}")
            }
            TensorError::FormatRankMismatch { rank, formats } => {
                write!(f, "format vector of length {formats} does not match tensor rank {rank}")
            }
            TensorError::InvalidPermutation { perm } => {
                write!(f, "invalid mode permutation {perm:?}")
            }
            TensorError::ShapeMismatch { a, b } => {
                write!(f, "shape mismatch: {a:?} vs {b:?}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::RankMismatch { expected: 2, got: 3 };
        assert_eq!(e.to_string(), "coordinate arity 3 does not match tensor rank 2");
        let e = TensorError::CoordOutOfBounds { mode: 1, coord: 9, dim: 4 };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
