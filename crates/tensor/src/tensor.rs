//! A unifying wrapper over the dense and compressed storage families.

use crate::{CooTensor, DenseTensor, SparseTensor, TensorError};

/// Either a dense or a compressed tensor — the operand type the executor
/// consumes.
///
/// # Examples
///
/// ```
/// use systec_tensor::{DenseTensor, Tensor};
///
/// let t: Tensor = DenseTensor::zeros(vec![2, 2]).into();
/// assert_eq!(t.rank(), 2);
/// assert_eq!(t.get(&[1, 1]), 0.0);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Tensor {
    /// Dense strided storage.
    Dense(DenseTensor),
    /// Compressed fibertree storage.
    Sparse(SparseTensor),
}

impl Tensor {
    /// The shape, one extent per mode.
    pub fn dims(&self) -> &[usize] {
        match self {
            Tensor::Dense(t) => t.dims(),
            Tensor::Sparse(t) => t.dims(),
        }
    }

    /// The number of modes.
    pub fn rank(&self) -> usize {
        self.dims().len()
    }

    /// Random access (zero for unstored sparse coordinates).
    pub fn get(&self, coords: &[usize]) -> f64 {
        match self {
            Tensor::Dense(t) => t.get(coords),
            Tensor::Sparse(t) => t.get(coords),
        }
    }

    /// The dense tensor inside, if this is dense.
    pub fn as_dense(&self) -> Option<&DenseTensor> {
        match self {
            Tensor::Dense(t) => Some(t),
            Tensor::Sparse(_) => None,
        }
    }

    /// The compressed tensor inside, if this is compressed.
    pub fn as_sparse(&self) -> Option<&SparseTensor> {
        match self {
            Tensor::Sparse(t) => Some(t),
            Tensor::Dense(_) => None,
        }
    }

    /// Converts to COO (dropping zeros).
    pub fn to_coo(&self) -> CooTensor {
        match self {
            Tensor::Dense(t) => CooTensor::from_dense(t),
            Tensor::Sparse(t) => t.to_coo(),
        }
    }

    /// Densifies (reference representation for validation).
    pub fn to_dense(&self) -> DenseTensor {
        match self {
            Tensor::Dense(t) => t.clone(),
            Tensor::Sparse(t) => t.to_coo().to_dense(),
        }
    }

    /// Returns a permuted copy in the same storage family.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] for an invalid `perm`.
    pub fn permuted(&self, perm: &[usize]) -> Result<Tensor, TensorError> {
        Ok(match self {
            Tensor::Dense(t) => Tensor::Dense(t.permuted(perm)?),
            Tensor::Sparse(t) => Tensor::Sparse(t.permuted(perm)?),
        })
    }
}

impl From<DenseTensor> for Tensor {
    fn from(t: DenseTensor) -> Self {
        Tensor::Dense(t)
    }
}

impl From<SparseTensor> for Tensor {
    fn from(t: SparseTensor) -> Self {
        Tensor::Sparse(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CSR;

    #[test]
    fn wrapper_dispatches() {
        let mut coo = CooTensor::new(vec![2, 2]);
        coo.push(&[0, 1], 3.0);
        let s: Tensor = SparseTensor::from_coo(&coo, &CSR).unwrap().into();
        let d: Tensor = coo.to_dense().into();
        assert_eq!(s.get(&[0, 1]), d.get(&[0, 1]));
        assert_eq!(s.dims(), d.dims());
        assert!(s.as_sparse().is_some());
        assert!(d.as_dense().is_some());
        assert!(s.as_dense().is_none());
        assert_eq!(s.to_dense(), d.to_dense());
        assert_eq!(s.to_coo(), coo);
    }

    #[test]
    fn permuted_preserves_family() {
        let mut coo = CooTensor::new(vec![2, 3]);
        coo.push(&[1, 2], 4.0);
        let s: Tensor = SparseTensor::from_coo(&coo, &CSR).unwrap().into();
        let p = s.permuted(&[1, 0]).unwrap();
        assert!(p.as_sparse().is_some());
        assert_eq!(p.get(&[2, 1]), 4.0);
    }
}
