//! Level-composed compressed tensors (the fibertree formats of Finch).

use std::fmt;

use crate::coo::CooTensor;
use crate::dense::validate_perm;
use crate::TensorError;

/// The storage format of one level (mode) of a [`SparseTensor`].
///
/// Composing per-mode formats yields the classic compound formats
/// (paper §2.2): CSR is `[Dense, Sparse]`, 3-d CSF is
/// `[Dense, Sparse, Sparse]`, a fully-compressed hypersparse tensor is
/// all-`Sparse`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LevelFormat {
    /// Every coordinate `0..extent` is materialized (no compression).
    Dense,
    /// Only coordinates with stored children appear, in sorted order
    /// (compressed, `pos`/`crd` arrays à la TACO/Finch).
    Sparse,
    /// Run-length encoding: consecutive coordinates sharing one value
    /// collapse into a run (Finch's `RunList`/RLE structured level).
    /// Only valid as the innermost (leaf) level, where children are
    /// values.
    RunLength,
}

impl fmt::Display for LevelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelFormat::Dense => f.write_str("Dense"),
            LevelFormat::Sparse => f.write_str("Sparse"),
            LevelFormat::RunLength => f.write_str("RunLength"),
        }
    }
}

/// One packed level of the fibertree.
#[derive(Clone, PartialEq, Debug)]
enum Level {
    /// Positions fan out by a fixed factor: child of parent `p` at
    /// coordinate `c` is position `p * size + c`.
    Dense { size: usize },
    /// Compressed: `crd[pos[p] .. pos[p+1]]` are the coordinates stored
    /// under parent position `p`; the child position is the `crd` index.
    Sparse { pos: Vec<usize>, crd: Vec<usize>, size: usize },
    /// Run-length encoded: `run_end[pos[p] .. pos[p+1]]` are the
    /// *inclusive* end coordinates of the runs under parent `p`; each run
    /// is one child position. Runs of the fill value (zero) are omitted:
    /// `run_start` records each run's first coordinate.
    RunLength { pos: Vec<usize>, run_start: Vec<usize>, run_end: Vec<usize>, size: usize },
}

/// A compressed multidimensional tensor packed from sorted coordinates.
///
/// The tensor is a chain of [`LevelFormat`]s, one per mode (outermost
/// first), over an `Element(0.0)` leaf holding the values. Iteration is
/// *concordant*: loops must visit modes outermost-first, which is exactly
/// the constraint the concordize pass (§4.2.3) establishes for generated
/// kernels.
///
/// # Examples
///
/// ```
/// use systec_tensor::{CooTensor, SparseTensor, CSR};
///
/// let mut coo = CooTensor::new(vec![2, 3]);
/// coo.push(&[0, 2], 1.5);
/// coo.push(&[1, 0], 2.5);
/// let m = SparseTensor::from_coo(&coo, &CSR).unwrap();
/// assert_eq!(m.get(&[0, 2]), 1.5);
/// assert_eq!(m.get(&[0, 0]), 0.0);
/// assert_eq!(m.to_coo(), coo);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct SparseTensor {
    dims: Vec<usize>,
    formats: Vec<LevelFormat>,
    levels: Vec<Level>,
    vals: Vec<f64>,
}

impl SparseTensor {
    /// Packs a COO tensor into the given per-mode formats.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::FormatRankMismatch`] if `formats.len()`
    /// differs from the tensor's rank.
    pub fn from_coo(coo: &CooTensor, formats: &[LevelFormat]) -> Result<Self, TensorError> {
        let rank = coo.rank();
        if formats.len() != rank {
            return Err(TensorError::FormatRankMismatch { rank, formats: formats.len() });
        }
        if formats[..rank.saturating_sub(1)].contains(&LevelFormat::RunLength) {
            return Err(TensorError::FormatRankMismatch { rank, formats: formats.len() });
        }
        let dims = coo.dims().to_vec();
        let entries: Vec<(&[usize], f64)> = coo.entries().collect();

        let mut levels = Vec::with_capacity(rank);
        // Parent position of each entry at the current level; starts at the
        // single root position 0.
        let mut parents: Vec<usize> = vec![0; entries.len()];
        let mut parent_count = 1usize;

        for (k, &format) in formats.iter().enumerate() {
            let size = dims[k];
            match format {
                LevelFormat::Dense => {
                    for (e, (coords, _)) in entries.iter().enumerate() {
                        parents[e] = parents[e] * size + coords[k];
                    }
                    parent_count *= size;
                    levels.push(Level::Dense { size });
                }
                LevelFormat::Sparse => {
                    let mut pos = vec![0usize; parent_count + 1];
                    let mut crd = Vec::new();
                    let mut last: Option<(usize, usize)> = None;
                    for (e, (coords, _)) in entries.iter().enumerate() {
                        let key = (parents[e], coords[k]);
                        if last != Some(key) {
                            // New child position under this parent.
                            crd.push(coords[k]);
                            pos[parents[e] + 1] += 1;
                            last = Some(key);
                        }
                        parents[e] = crd.len() - 1;
                    }
                    // Prefix-sum the per-parent counts into offsets.
                    for p in 0..parent_count {
                        pos[p + 1] += pos[p];
                    }
                    parent_count = crd.len();
                    levels.push(Level::Sparse { pos, crd, size });
                }
                LevelFormat::RunLength => {
                    // Leaf only (validated above): consecutive coordinates
                    // under one parent with equal values form a run.
                    let mut pos = vec![0usize; parent_count + 1];
                    let mut run_start = Vec::new();
                    let mut run_end = Vec::new();
                    let mut run_vals: Vec<f64> = Vec::new();
                    let mut last: Option<(usize, usize, f64)> = None; // parent, end coord, value
                    for (e, (coords, v)) in entries.iter().enumerate() {
                        let c = coords[k];
                        match last {
                            Some((p, end, value))
                                if p == parents[e] && c == end + 1 && value == *v =>
                            {
                                // Extend the current run.
                                *run_end.last_mut().expect("run exists") = c;
                                last = Some((p, c, value));
                            }
                            _ => {
                                run_start.push(c);
                                run_end.push(c);
                                run_vals.push(*v);
                                pos[parents[e] + 1] += 1;
                                last = Some((parents[e], c, *v));
                            }
                        }
                        parents[e] = run_start.len() - 1;
                    }
                    for p in 0..parent_count {
                        pos[p + 1] += pos[p];
                    }
                    levels.push(Level::RunLength { pos, run_start, run_end, size });
                    // Leaf values are per-run.
                    let mut vals = run_vals;
                    // Entries extending runs accumulate nothing extra: the
                    // packed value is the run's value. (Duplicates were
                    // already merged in COO.)
                    return Ok(SparseTensor {
                        dims,
                        formats: formats.to_vec(),
                        levels,
                        vals: std::mem::take(&mut vals),
                    });
                }
            }
        }

        let mut vals = vec![0.0; parent_count];
        for (e, (_, v)) in entries.iter().enumerate() {
            vals[parents[e]] += v;
        }
        Ok(SparseTensor { dims, formats: formats.to_vec(), levels, vals })
    }

    /// An empty tensor of the given shape and formats.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::FormatRankMismatch`] on arity mismatch.
    pub fn empty(dims: Vec<usize>, formats: &[LevelFormat]) -> Result<Self, TensorError> {
        Self::from_coo(&CooTensor::new(dims), formats)
    }

    /// The shape, one extent per mode.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of modes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The per-mode level formats.
    pub fn formats(&self) -> &[LevelFormat] {
        &self.formats
    }

    /// The number of stored values (including structural zeros stored by
    /// trailing dense levels).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The value stored at a *leaf position* (as produced by walking the
    /// levels with [`SparseTensor::level_iter`] / [`SparseTensor::level_find`]).
    #[inline]
    pub fn value(&self, leaf_pos: usize) -> f64 {
        self.vals[leaf_pos]
    }

    /// Iterates over `(coordinate, child_position)` pairs of the children
    /// of `parent` at level `k`, restricted to coordinates in
    /// `lo..=hi` (saturating to the level's extent).
    ///
    /// For `Sparse` levels only stored coordinates are visited, in
    /// increasing order, with the bound restriction applied by binary
    /// search — this is how lifted loop bounds (`i <= j`) become cheap
    /// early exits over compressed data.
    pub fn level_iter(&self, k: usize, parent: usize, lo: usize, hi: usize) -> LevelIter<'_> {
        match &self.levels[k] {
            Level::Dense { size } => {
                if *size == 0 {
                    return LevelIter::Dense { base: 0, coord: 0, end: 0 };
                }
                let hi = hi.min(size - 1);
                LevelIter::Dense {
                    base: parent * size,
                    coord: lo,
                    end: if lo > hi { lo } else { hi + 1 },
                }
            }
            Level::Sparse { pos, crd, .. } => {
                let begin = pos[parent];
                let end = pos[parent + 1];
                let slice = &crd[begin..end];
                let start = begin + slice.partition_point(|&c| c < lo);
                let stop = begin + slice.partition_point(|&c| c <= hi);
                LevelIter::Sparse { crd, cursor: start, end: stop }
            }
            Level::RunLength { pos, run_start, run_end, .. } => {
                let begin = pos[parent];
                let end = pos[parent + 1];
                // First run whose end reaches lo.
                let slice_end = &run_end[begin..end];
                let start = begin + slice_end.partition_point(|&c| c < lo);
                LevelIter::RunLength {
                    run_start,
                    run_end,
                    run: start,
                    last_run: end,
                    coord: if start < end { run_start[start].max(lo) } else { 0 },
                    hi,
                }
            }
        }
    }

    /// Number of children of `parent` at level `k` (stored coordinates
    /// for sparse levels, the extent for dense levels).
    pub fn level_len(&self, k: usize, parent: usize) -> usize {
        match &self.levels[k] {
            Level::Dense { size } => *size,
            Level::Sparse { pos, .. } => pos[parent + 1] - pos[parent],
            Level::RunLength { pos, run_start, run_end, .. } => {
                (pos[parent]..pos[parent + 1]).map(|r| run_end[r] - run_start[r] + 1).sum()
            }
        }
    }

    /// Finds the child position of coordinate `coord` under `parent` at
    /// level `k` (random access step), or `None` if not stored.
    pub fn level_find(&self, k: usize, parent: usize, coord: usize) -> Option<usize> {
        self.level_view(k).find(parent, coord)
    }

    /// Random access: the value at `coords` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the rank.
    pub fn get(&self, coords: &[usize]) -> f64 {
        assert_eq!(coords.len(), self.rank(), "coordinate arity mismatch");
        let mut pos = 0usize;
        for (k, &c) in coords.iter().enumerate() {
            match self.level_find(k, pos, c) {
                Some(next) => pos = next,
                None => return 0.0,
            }
        }
        self.vals[pos]
    }

    /// Unpacks back to COO (dropping stored zeros).
    pub fn to_coo(&self) -> CooTensor {
        let mut out = CooTensor::new(self.dims.clone());
        let mut coords = vec![0usize; self.rank()];
        self.walk(0, 0, &mut coords, &mut out);
        out
    }

    fn walk(&self, k: usize, pos: usize, coords: &mut Vec<usize>, out: &mut CooTensor) {
        if k == self.rank() {
            if self.vals[pos] != 0.0 {
                out.push(coords, self.vals[pos]);
            }
            return;
        }
        let iter = self.level_iter(k, pos, 0, usize::MAX);
        for (c, child) in iter {
            coords[k] = c;
            self.walk(k + 1, child, coords, out);
        }
    }

    /// Raw, borrow-only view of one level's packed arrays.
    ///
    /// Execution backends that compile per-format code (the bytecode VM
    /// in `systec-codegen`) use this to walk `pos`/`crd` directly,
    /// without the per-step dispatch of [`SparseTensor::level_iter`].
    pub fn level_view(&self, k: usize) -> LevelView<'_> {
        match &self.levels[k] {
            Level::Dense { size } => LevelView::Dense { size: *size },
            Level::Sparse { pos, crd, size } => LevelView::Sparse { pos, crd, size: *size },
            Level::RunLength { pos, run_start, run_end, size } => {
                LevelView::RunLength { pos, run_start, run_end, size: *size }
            }
        }
    }

    /// The packed leaf values, indexed by leaf position.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Returns a permuted repack: mode `k` of the result is mode
    /// `perm[k]` of `self`, in the same formats. This is the
    /// transposition the concordize pass relies on; the paper excludes
    /// its cost from kernel timings, as do our benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] for invalid `perm`.
    pub fn permuted(&self, perm: &[usize]) -> Result<SparseTensor, TensorError> {
        validate_perm(perm, self.rank())?;
        let coo = self.to_coo().permuted(perm)?;
        let formats: Vec<LevelFormat> = self.formats.clone();
        SparseTensor::from_coo(&coo, &formats)
    }
}

/// Borrowed view of one packed level of a [`SparseTensor`].
///
/// Mirrors the internal level representation: child positions are
/// `parent * size + coord` for dense levels, absolute `crd` indices for
/// sparse levels, and absolute run indices for run-length levels.
#[derive(Clone, Copy, Debug)]
pub enum LevelView<'a> {
    /// Every coordinate `0..size` is materialized.
    Dense {
        /// The level's extent.
        size: usize,
    },
    /// Compressed: `crd[pos[p] .. pos[p+1]]` are the stored coordinates
    /// under parent position `p`.
    Sparse {
        /// Per-parent offsets into `crd` (length `parents + 1`).
        pos: &'a [usize],
        /// Stored coordinates, sorted within each parent.
        crd: &'a [usize],
        /// The level's extent.
        size: usize,
    },
    /// Run-length encoded: runs `pos[p] .. pos[p+1]` belong to parent
    /// `p`; run `r` covers coordinates `run_start[r] ..= run_end[r]`.
    RunLength {
        /// Per-parent offsets into the run arrays (length `parents + 1`).
        pos: &'a [usize],
        /// First coordinate of each run.
        run_start: &'a [usize],
        /// Last (inclusive) coordinate of each run.
        run_end: &'a [usize],
        /// The level's extent.
        size: usize,
    },
}

impl LevelView<'_> {
    /// Finds the child position of `coord` under `parent`, or `None` if
    /// not stored — the implementation behind
    /// [`SparseTensor::level_find`].
    #[inline]
    pub fn find(&self, parent: usize, coord: usize) -> Option<usize> {
        match self {
            LevelView::Dense { size } => (coord < *size).then(|| parent * size + coord),
            LevelView::Sparse { pos, crd, .. } => {
                let begin = pos[parent];
                let end = pos[parent + 1];
                let slice = &crd[begin..end];
                let at = slice.partition_point(|&c| c < coord);
                (at < slice.len() && slice[at] == coord).then(|| begin + at)
            }
            LevelView::RunLength { pos, run_start, run_end, .. } => {
                let begin = pos[parent];
                let end = pos[parent + 1];
                let slice_end = &run_end[begin..end];
                let at = begin + slice_end.partition_point(|&c| c < coord);
                (at < end && run_start[at] <= coord).then_some(at)
            }
        }
    }
}

/// Iterator over `(coordinate, child_position)` pairs of one level fiber.
///
/// Produced by [`SparseTensor::level_iter`]. This is deliberately a
/// lending-style concrete enum (not `impl Iterator`) so the executor can
/// store it without boxing.
#[derive(Debug)]
pub enum LevelIter<'a> {
    /// Fiber of a dense level: every coordinate in range.
    Dense {
        /// `parent * size` — the first child position of this fiber.
        base: usize,
        /// Next coordinate to yield.
        coord: usize,
        /// One past the last coordinate.
        end: usize,
    },
    /// Fiber of a compressed level: stored coordinates only.
    Sparse {
        /// The level's coordinate array.
        crd: &'a [usize],
        /// Next `crd` index to yield.
        cursor: usize,
        /// One past the last `crd` index.
        end: usize,
    },
    /// Fiber of a run-length level: every coordinate of every stored run
    /// (the position repeats across a run).
    RunLength {
        /// Run start coordinates.
        run_start: &'a [usize],
        /// Run end coordinates (inclusive).
        run_end: &'a [usize],
        /// Current run index.
        run: usize,
        /// One past the last run index.
        last_run: usize,
        /// Next coordinate to yield.
        coord: usize,
        /// Inclusive upper bound.
        hi: usize,
    },
}

impl LevelIter<'_> {
    /// Number of remaining `(coord, pos)` pairs.
    pub fn remaining(&self) -> usize {
        match self {
            LevelIter::Dense { coord, end, .. } => end - coord,
            LevelIter::Sparse { cursor, end, .. } => end - cursor,
            LevelIter::RunLength { run_start, run_end, run, last_run, coord, hi } => (*run
                ..*last_run)
                .map(|r| {
                    let lo = if r == *run { *coord } else { run_start[r] };
                    let end = run_end[r].min(*hi);
                    if end >= lo {
                        end - lo + 1
                    } else {
                        0
                    }
                })
                .sum(),
        }
    }
}

impl Iterator for LevelIter<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        match self {
            LevelIter::Dense { base, coord, end } => {
                if coord < end {
                    let c = *coord;
                    *coord += 1;
                    Some((c, *base + c))
                } else {
                    None
                }
            }
            LevelIter::Sparse { crd, cursor, end } => {
                if cursor < end {
                    let at = *cursor;
                    *cursor += 1;
                    Some((crd[at], at))
                } else {
                    None
                }
            }
            LevelIter::RunLength { run_start, run_end, run, last_run, coord, hi } => {
                if *run >= *last_run || *coord > *hi {
                    return None;
                }
                let c = *coord;
                let pos = *run;
                if c >= run_end[pos] {
                    *run += 1;
                    if *run < *last_run {
                        *coord = run_start[*run];
                    }
                } else {
                    *coord = c + 1;
                }
                Some((c, pos))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for LevelIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{csf, CSF3, CSR};

    fn sample_matrix() -> CooTensor {
        let mut coo = CooTensor::new(vec![3, 4]);
        coo.push(&[0, 1], 1.0);
        coo.push(&[0, 3], 2.0);
        coo.push(&[2, 0], 3.0);
        coo.push(&[2, 3], 4.0);
        coo
    }

    #[test]
    fn csr_pack_and_get() {
        let m = SparseTensor::from_coo(&sample_matrix(), &CSR).unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(&[0, 1]), 1.0);
        assert_eq!(m.get(&[2, 3]), 4.0);
        assert_eq!(m.get(&[1, 0]), 0.0);
        assert_eq!(m.get(&[0, 0]), 0.0);
    }

    #[test]
    fn coo_roundtrip_csr() {
        let coo = sample_matrix();
        let m = SparseTensor::from_coo(&coo, &CSR).unwrap();
        assert_eq!(m.to_coo(), coo);
    }

    #[test]
    fn coo_roundtrip_all_sparse() {
        let coo = sample_matrix();
        let m = SparseTensor::from_coo(&coo, &[LevelFormat::Sparse, LevelFormat::Sparse]).unwrap();
        assert_eq!(m.to_coo(), coo);
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn coo_roundtrip_all_dense() {
        let coo = sample_matrix();
        let m = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Dense]).unwrap();
        assert_eq!(m.to_coo(), coo);
        // Fully dense storage materializes every position.
        assert_eq!(m.nnz(), 12);
    }

    #[test]
    fn csf3_pack_and_get() {
        let mut coo = CooTensor::new(vec![3, 3, 3]);
        coo.push(&[0, 1, 2], 1.0);
        coo.push(&[0, 2, 2], 2.0);
        coo.push(&[2, 0, 0], 3.0);
        let t = SparseTensor::from_coo(&coo, &CSF3).unwrap();
        assert_eq!(t.get(&[0, 1, 2]), 1.0);
        assert_eq!(t.get(&[0, 2, 2]), 2.0);
        assert_eq!(t.get(&[2, 0, 0]), 3.0);
        assert_eq!(t.get(&[1, 1, 1]), 0.0);
        assert_eq!(t.to_coo(), coo);
    }

    #[test]
    fn format_rank_mismatch_rejected() {
        let coo = sample_matrix();
        assert!(matches!(
            SparseTensor::from_coo(&coo, &[LevelFormat::Dense]),
            Err(TensorError::FormatRankMismatch { rank: 2, formats: 1 })
        ));
    }

    #[test]
    fn level_iter_bounds_sparse() {
        // Row 2 holds coords {0, 3}; restrict to [1, 3] -> only coord 3.
        let m = SparseTensor::from_coo(&sample_matrix(), &CSR).unwrap();
        let row2 = m.level_find(0, 0, 2).unwrap();
        let pairs: Vec<(usize, usize)> = m.level_iter(1, row2, 1, 3).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 3);
        assert_eq!(m.value(pairs[0].1), 4.0);
    }

    #[test]
    fn level_iter_bounds_dense() {
        let m = SparseTensor::from_coo(&sample_matrix(), &[LevelFormat::Dense, LevelFormat::Dense])
            .unwrap();
        let pairs: Vec<(usize, usize)> = m.level_iter(0, 0, 1, 2).collect();
        assert_eq!(pairs.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2]);
        // Bound past the extent saturates.
        let all: Vec<_> = m.level_iter(0, 0, 0, 99).collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn level_iter_empty_range() {
        let m = SparseTensor::from_coo(&sample_matrix(), &CSR).unwrap();
        let row0 = m.level_find(0, 0, 0).unwrap();
        assert_eq!(m.level_iter(1, row0, 2, 1).count(), 0);
    }

    #[test]
    fn level_find_missing_row_in_sparse_root() {
        let coo = sample_matrix();
        let m = SparseTensor::from_coo(&coo, &[LevelFormat::Sparse, LevelFormat::Sparse]).unwrap();
        // Row 1 holds nothing; the root sparse level stores rows {0, 2}.
        assert_eq!(m.level_find(0, 0, 1), None);
        assert!(m.level_find(0, 0, 2).is_some());
    }

    #[test]
    fn empty_tensor_reads_zero() {
        let m = SparseTensor::empty(vec![5, 5], &CSR).unwrap();
        assert_eq!(m.get(&[3, 3]), 0.0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.to_coo().nnz(), 0);
    }

    #[test]
    fn permuted_transposes_and_preserves_values() {
        let m = SparseTensor::from_coo(&sample_matrix(), &CSR).unwrap();
        let t = m.permuted(&[1, 0]).unwrap();
        assert_eq!(t.dims(), &[4, 3]);
        assert_eq!(t.get(&[3, 2]), 4.0);
        assert_eq!(t.get(&[1, 0]), 1.0);
        let back = t.permuted(&[1, 0]).unwrap();
        assert_eq!(back.to_coo(), m.to_coo());
    }

    #[test]
    fn csf_helper_shapes() {
        assert_eq!(csf(5).len(), 5);
        assert!(matches!(csf(1)[0], LevelFormat::Dense));
    }

    #[test]
    fn duplicate_coo_entries_accumulate_via_pack() {
        let mut coo = CooTensor::new(vec![2, 2]);
        coo.push(&[0, 0], 1.0);
        coo.push(&[0, 0], 2.0);
        let m = SparseTensor::from_coo(&coo, &CSR).unwrap();
        assert_eq!(m.get(&[0, 0]), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn exact_size_iterator() {
        let m = SparseTensor::from_coo(&sample_matrix(), &CSR).unwrap();
        let it = m.level_iter(0, 0, 0, usize::MAX);
        assert_eq!(it.len(), 3); // dense root of extent 3
    }
}
