//! # systec-tensor
//!
//! A from-scratch Finch-style sparse and structured tensor substrate.
//!
//! The paper builds on Finch's *fibertree* description of tensor formats
//! (§2.2): a tensor is conceptualized as a vector of vectors of vectors …,
//! and each level of the tree is characterized by a level format. Common
//! formats arise by composition:
//!
//! * CSR = `Dense(Sparse(Element(0.0)))`
//! * CSC = CSR of the transpose
//! * CSF (3-d) = `Dense(Sparse(Sparse(Element(0.0))))`
//!
//! This crate provides:
//!
//! * [`DenseTensor`] — a strided dense tensor of `f64`.
//! * [`SparseTensor`] — a level-composed compressed tensor
//!   ([`LevelFormat::Dense`] / [`LevelFormat::Sparse`] per mode) packed
//!   from sorted coordinates.
//! * [`CooTensor`] — a coordinate-list builder and interchange format.
//! * [`Tensor`] — an enum over the two storage families, the type the
//!   executor consumes.
//! * [`generate`] — random symmetric Erdős–Rényi tensors, random dense
//!   matrices, and the synthetic stand-in for the paper's Table 2 matrix
//!   suite.
//!
//! ## Example
//!
//! ```
//! use systec_tensor::{CooTensor, LevelFormat, SparseTensor};
//!
//! // A 3x3 CSR matrix with two stored entries.
//! let mut coo = CooTensor::new(vec![3, 3]);
//! coo.push(&[0, 1], 2.0);
//! coo.push(&[2, 0], 3.0);
//! let csr = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::Sparse]).unwrap();
//! assert_eq!(csr.get(&[0, 1]), 2.0);
//! assert_eq!(csr.get(&[1, 1]), 0.0);
//! assert_eq!(csr.nnz(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod dense;
mod error;
pub mod generate;
mod sparse;
pub mod suite;
mod tensor;

pub use coo::CooTensor;
pub use dense::DenseTensor;
pub use error::TensorError;
pub use sparse::{LevelFormat, LevelView, SparseTensor};
pub use tensor::Tensor;

/// Format shorthand: CSR for matrices (`Dense(Sparse(Element))`).
pub const CSR: [LevelFormat; 2] = [LevelFormat::Dense, LevelFormat::Sparse];

/// Format shorthand: 3-dimensional CSF (`Dense(Sparse(Sparse(Element)))`).
pub const CSF3: [LevelFormat; 3] = [LevelFormat::Dense, LevelFormat::Sparse, LevelFormat::Sparse];

/// Returns the CSF format vector (one `Dense` root, `Sparse` below) for an
/// arbitrary rank.
///
/// # Examples
///
/// ```
/// use systec_tensor::{csf, LevelFormat};
/// assert_eq!(csf(4).len(), 4);
/// assert_eq!(csf(4)[0], LevelFormat::Dense);
/// assert_eq!(csf(4)[3], LevelFormat::Sparse);
/// ```
pub fn csf(rank: usize) -> Vec<LevelFormat> {
    let mut v = vec![LevelFormat::Sparse; rank];
    if rank > 0 {
        v[0] = LevelFormat::Dense;
    }
    v
}
