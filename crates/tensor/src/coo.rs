//! Coordinate-list (COO) tensors: the builder and interchange format.

use std::collections::BTreeMap;

use crate::dense::validate_perm;
use crate::{DenseTensor, TensorError};

/// A coordinate-list tensor: a set of `(coords, value)` pairs plus a shape.
///
/// `CooTensor` is the ingestion and interchange format: generators produce
/// COO, compressed formats pack from COO, and transposition/splitting are
/// COO round-trips. Duplicate pushes accumulate with `+`.
///
/// # Examples
///
/// ```
/// use systec_tensor::CooTensor;
///
/// let mut t = CooTensor::new(vec![4, 4]);
/// t.push(&[0, 1], 1.0);
/// t.push(&[0, 1], 2.0); // accumulates
/// assert_eq!(t.nnz(), 1);
/// assert_eq!(t.entries().next().unwrap(), (&[0usize, 1][..], 3.0));
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CooTensor {
    dims: Vec<usize>,
    entries: BTreeMap<Vec<usize>, f64>,
}

impl CooTensor {
    /// Creates an empty COO tensor of the given shape.
    pub fn new(dims: Vec<usize>) -> Self {
        CooTensor { dims, entries: BTreeMap::new() }
    }

    /// The shape, one extent per mode.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of modes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Accumulates `value` into the entry at `coords` (zero entries are
    /// kept if explicitly pushed; use [`CooTensor::prune_zeros`] to drop
    /// them).
    ///
    /// # Panics
    ///
    /// Panics if the arity or a coordinate is out of range — generator
    /// code is expected to produce valid coordinates. For fallible
    /// insertion use [`CooTensor::try_push`].
    pub fn push(&mut self, coords: &[usize], value: f64) {
        self.try_push(coords, value).expect("invalid coordinate");
    }

    /// Accumulates `value` into the entry at `coords`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] or
    /// [`TensorError::CoordOutOfBounds`] for invalid coordinates.
    pub fn try_push(&mut self, coords: &[usize], value: f64) -> Result<(), TensorError> {
        if coords.len() != self.dims.len() {
            return Err(TensorError::RankMismatch { expected: self.dims.len(), got: coords.len() });
        }
        for (mode, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            if c >= d {
                return Err(TensorError::CoordOutOfBounds { mode, coord: c, dim: d });
            }
        }
        *self.entries.entry(coords.to_vec()).or_insert(0.0) += value;
        Ok(())
    }

    /// Overwrites the entry at `coords` instead of accumulating.
    pub fn set(&mut self, coords: &[usize], value: f64) {
        self.entries.insert(coords.to_vec(), value);
    }

    /// Reads the entry at `coords` (zero if absent).
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.entries.get(coords).copied().unwrap_or(0.0)
    }

    /// Removes stored entries equal to `0.0`.
    pub fn prune_zeros(&mut self) {
        self.entries.retain(|_, v| *v != 0.0);
    }

    /// Iterates over `(coords, value)` in lexicographic coordinate order.
    pub fn entries(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        self.entries.iter().map(|(c, &v)| (c.as_slice(), v))
    }

    /// Returns a permuted copy: mode `k` of the result is mode `perm[k]`
    /// of `self` (so `out[c] == self[c ∘ perm⁻¹ …]`; concretely the entry
    /// at `coords` moves to `perm⁻¹` applied positionwise:
    /// `out_coords[k] = coords[perm[k]]`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is invalid.
    pub fn permuted(&self, perm: &[usize]) -> Result<CooTensor, TensorError> {
        validate_perm(perm, self.rank())?;
        let dims: Vec<usize> = perm.iter().map(|&p| self.dims[p]).collect();
        let mut out = CooTensor::new(dims);
        for (coords, v) in self.entries() {
            let new_coords: Vec<usize> = perm.iter().map(|&p| coords[p]).collect();
            out.push(&new_coords, v);
        }
        Ok(out)
    }

    /// Returns `self + selfᵀ` (matrices only), the symmetrization the
    /// paper applies to the asymmetric matrices of the Vuduc suite (§5.2).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the tensor is not a
    /// square matrix.
    pub fn symmetrized(&self) -> Result<CooTensor, TensorError> {
        if self.rank() != 2 || self.dims[0] != self.dims[1] {
            return Err(TensorError::ShapeMismatch { a: self.dims.clone(), b: self.dims.clone() });
        }
        let mut out = self.clone();
        for (coords, v) in self.entries() {
            out.push(&[coords[1], coords[0]], v);
        }
        Ok(out)
    }

    /// Returns `true` if the tensor equals all of its mode permutations
    /// (full symmetry, Definition 2.1).
    pub fn is_fully_symmetric(&self) -> bool {
        if self.rank() < 2 {
            return true;
        }
        if self.dims.iter().any(|&d| d != self.dims[0]) {
            return false;
        }
        self.entries().all(|(coords, v)| {
            permutations(coords.len()).into_iter().all(|perm| {
                let permuted: Vec<usize> = perm.iter().map(|&p| coords[p]).collect();
                (self.get(&permuted) - v).abs() < 1e-12
            })
        })
    }

    /// Splits the tensor by the *diagonal* structure of the given modes
    /// (Definition 2.4): returns `(off_diagonal, diagonal)` where an entry
    /// is diagonal if at least two of the listed modes have equal
    /// coordinates. Used by the diagonal-splitting pass (§4.2.9,
    /// Listing 7's `A_nondiag` / `A_diag`).
    pub fn split_diagonal(&self, modes: &[usize]) -> (CooTensor, CooTensor) {
        let mut off = CooTensor::new(self.dims.clone());
        let mut diag = CooTensor::new(self.dims.clone());
        for (coords, v) in self.entries() {
            let mut on_diag = false;
            for (a, &ma) in modes.iter().enumerate() {
                for &mb in &modes[a + 1..] {
                    if coords[ma] == coords[mb] {
                        on_diag = true;
                    }
                }
            }
            if on_diag {
                diag.push(coords, v);
            } else {
                off.push(coords, v);
            }
        }
        (off, diag)
    }

    /// Densifies into a [`DenseTensor`] (reference representation for
    /// tests).
    pub fn to_dense(&self) -> DenseTensor {
        let mut out = DenseTensor::zeros(self.dims.clone());
        for (coords, v) in self.entries() {
            out.set(coords, v);
        }
        out
    }

    /// Builds a COO tensor from a dense tensor, storing only nonzeros.
    pub fn from_dense(dense: &DenseTensor) -> CooTensor {
        let mut out = CooTensor::new(dense.dims().to_vec());
        for (coords, v) in dense.iter() {
            if v != 0.0 {
                out.push(&coords, v);
            }
        }
        out
    }
}

/// All permutations of `0..n` in lexicographic order (n! of them).
///
/// Shared helper for symmetry checks and the symmetrizer's tests.
pub(crate) fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    loop {
        out.push(current.clone());
        // next_permutation
        let Some(i) = (0..n.saturating_sub(1)).rev().find(|&i| current[i] < current[i + 1]) else {
            break;
        };
        let j = (i + 1..n).rev().find(|&j| current[j] > current[i]).expect("exists by choice of i");
        current.swap(i, j);
        current[i + 1..].reverse();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 0], 1.0);
        t.push(&[0, 0], 2.5);
        assert_eq!(t.get(&[0, 0]), 3.5);
        assert_eq!(t.nnz(), 1);
    }

    #[test]
    fn try_push_validates() {
        let mut t = CooTensor::new(vec![2, 2]);
        assert!(matches!(
            t.try_push(&[0], 1.0),
            Err(TensorError::RankMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            t.try_push(&[0, 5], 1.0),
            Err(TensorError::CoordOutOfBounds { mode: 1, coord: 5, dim: 2 })
        ));
    }

    #[test]
    fn prune_zeros_removes_cancelled_entries() {
        let mut t = CooTensor::new(vec![2]);
        t.push(&[0], 1.0);
        t.push(&[0], -1.0);
        assert_eq!(t.nnz(), 1);
        t.prune_zeros();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn entries_are_sorted_lexicographically() {
        let mut t = CooTensor::new(vec![3, 3]);
        t.push(&[2, 0], 1.0);
        t.push(&[0, 2], 2.0);
        t.push(&[0, 1], 3.0);
        let coords: Vec<Vec<usize>> = t.entries().map(|(c, _)| c.to_vec()).collect();
        assert_eq!(coords, vec![vec![0, 1], vec![0, 2], vec![2, 0]]);
    }

    #[test]
    fn permuted_transposes() {
        let mut t = CooTensor::new(vec![2, 3]);
        t.push(&[1, 2], 4.0);
        let p = t.permuted(&[1, 0]).unwrap();
        assert_eq!(p.dims(), &[3, 2]);
        assert_eq!(p.get(&[2, 1]), 4.0);
    }

    #[test]
    fn symmetrized_adds_transpose() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 1], 3.0);
        t.push(&[0, 0], 1.0);
        let s = t.symmetrized().unwrap();
        assert_eq!(s.get(&[0, 1]), 3.0);
        assert_eq!(s.get(&[1, 0]), 3.0);
        assert_eq!(s.get(&[0, 0]), 2.0);
        assert!(s.is_fully_symmetric());
    }

    #[test]
    fn symmetrized_rejects_nonsquare() {
        let t = CooTensor::new(vec![2, 3]);
        assert!(t.symmetrized().is_err());
    }

    #[test]
    fn is_fully_symmetric_detects_asymmetry() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 1], 3.0);
        assert!(!t.is_fully_symmetric());
    }

    #[test]
    fn split_diagonal_partitions_entries() {
        let mut t = CooTensor::new(vec![3, 3, 3]);
        t.push(&[0, 1, 2], 1.0); // off-diagonal
        t.push(&[0, 0, 2], 2.0); // diagonal (modes 0 and 1 equal)
        t.push(&[1, 1, 1], 3.0); // diagonal
        let (off, diag) = t.split_diagonal(&[0, 1, 2]);
        assert_eq!(off.nnz(), 1);
        assert_eq!(diag.nnz(), 2);
        assert_eq!(off.get(&[0, 1, 2]), 1.0);
        assert_eq!(diag.get(&[1, 1, 1]), 3.0);
    }

    #[test]
    fn split_diagonal_respects_mode_subset() {
        let mut t = CooTensor::new(vec![3, 3, 3]);
        t.push(&[1, 0, 1], 1.0); // modes 0 and 2 equal, but only {0,1} considered
        let (off, diag) = t.split_diagonal(&[0, 1]);
        assert_eq!(off.nnz(), 1);
        assert_eq!(diag.nnz(), 0);
    }

    #[test]
    fn dense_roundtrip() {
        let mut t = CooTensor::new(vec![2, 2]);
        t.push(&[0, 1], 5.0);
        let d = t.to_dense();
        assert_eq!(d.get(&[0, 1]), 5.0);
        let back = CooTensor::from_dense(&d);
        assert_eq!(back, t);
    }

    #[test]
    fn permutations_count_and_order() {
        let p3 = permutations(3);
        assert_eq!(p3.len(), 6);
        assert_eq!(p3[0], vec![0, 1, 2]);
        assert_eq!(p3[5], vec![2, 1, 0]);
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(5).len(), 120);
    }
}
