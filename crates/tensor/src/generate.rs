//! Random tensor generators used by the tests and the benchmark harness.
//!
//! The paper evaluates MTTKRP/TTM on *"uniformly distributed symmetric
//! random sparse tensors of varying sizes and sparsities via an
//! Erdős–Rényi distribution"* (§5.2), with randomly generated dense factor
//! matrices. These generators reproduce that workload; [`crate::suite`]
//! reproduces the matrix suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::permutations;
use crate::{CooTensor, DenseTensor};

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Generates a fully symmetric sparse tensor of shape `[n; order]` by
/// Erdős–Rényi sampling: roughly `p * n^order` uniform coordinates are
/// drawn, each is replicated to **all** permutations with the same value,
/// so the result satisfies Definition 2.1 exactly.
///
/// Values are uniform in `(0, 1]` (never zero, so nnz is deterministic
/// given the sampled pattern).
///
/// # Examples
///
/// ```
/// use systec_tensor::generate::{rng, symmetric_erdos_renyi};
///
/// let t = symmetric_erdos_renyi(10, 3, 0.05, &mut rng(42));
/// assert!(t.is_fully_symmetric());
/// assert_eq!(t.dims(), &[10, 10, 10]);
/// ```
pub fn symmetric_erdos_renyi(n: usize, order: usize, p: f64, rng: &mut impl Rng) -> CooTensor {
    let total = (n as f64).powi(order as i32);
    let draws = (p * total).round() as usize;
    let mut canonical = std::collections::BTreeMap::new();
    for _ in 0..draws {
        let mut coords: Vec<usize> = (0..order).map(|_| rng.gen_range(0..n)).collect();
        coords.sort_unstable();
        canonical.entry(coords).or_insert_with(|| rng.gen_range(f64::EPSILON..=1.0));
    }
    let mut out = CooTensor::new(vec![n; order]);
    let perms = permutations(order);
    for (coords, value) in canonical {
        for perm in &perms {
            let permuted: Vec<usize> = perm.iter().map(|&k| coords[k]).collect();
            out.set(&permuted, value);
        }
    }
    out
}

/// Generates an asymmetric random sparse matrix with (approximately)
/// `nnz` stored entries at uniform positions, values in `(0, 1]`.
pub fn sprand(rows: usize, cols: usize, nnz: usize, rng: &mut impl Rng) -> CooTensor {
    let mut out = CooTensor::new(vec![rows, cols]);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let budget = nnz.saturating_mul(20).max(1000);
    while placed < nnz && attempts < budget {
        attempts += 1;
        let r = rng.gen_range(0..rows);
        let c = rng.gen_range(0..cols);
        if out.get(&[r, c]) == 0.0 {
            out.set(&[r, c], rng.gen_range(f64::EPSILON..=1.0));
            placed += 1;
        }
    }
    out
}

/// Generates a banded-plus-random sparse square matrix: a fraction
/// `band_frac` of the entries land within a band of half-width
/// `bandwidth` around the diagonal, the rest are uniform. This mimics the
/// mixed structure of the SuiteSparse matrices in Table 2 (FEM/circuit
/// matrices are band-dominated with scattered off-band entries).
pub fn banded_sprand(
    n: usize,
    nnz: usize,
    bandwidth: usize,
    band_frac: f64,
    rng: &mut impl Rng,
) -> CooTensor {
    let mut out = CooTensor::new(vec![n, n]);
    let bandwidth = bandwidth.max(1).min(n.saturating_sub(1).max(1));
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let budget = nnz.saturating_mul(20).max(1000);
    while placed < nnz && attempts < budget {
        attempts += 1;
        let (r, c) = if rng.gen_bool(band_frac) {
            let r = rng.gen_range(0..n);
            let lo = r.saturating_sub(bandwidth);
            let hi = (r + bandwidth).min(n - 1);
            (r, rng.gen_range(lo..=hi))
        } else {
            (rng.gen_range(0..n), rng.gen_range(0..n))
        };
        if out.get(&[r, c]) == 0.0 {
            out.set(&[r, c], rng.gen_range(f64::EPSILON..=1.0));
            placed += 1;
        }
    }
    out
}

/// Generates a symmetric sparse matrix whose value depends only on the
/// block pair `(i / block, j / block)`: each block pair is present with
/// probability `p_block`, and a present block contributes `block`
/// consecutive equal-valued columns to each of its rows — an RLE run of
/// length `block` once packed with a `RunLength` leaf level. This
/// mimics the plateau/banded structure of FEM and circuit matrices
/// (long stretches of repeated stencil coefficients), the shape where
/// run-length storage beats compressed coordinates.
///
/// Values are uniform in `(0, 1]`; symmetry holds exactly because the
/// value is drawn once per canonical (upper-triangle) block pair.
pub fn symmetric_block_plateau(
    n: usize,
    block: usize,
    p_block: f64,
    rng: &mut impl Rng,
) -> CooTensor {
    let block = block.max(1);
    let nb = n / block;
    let mut out = CooTensor::new(vec![n, n]);
    for bi in 0..nb {
        for bj in bi..nb {
            if rng.gen_range(0.0..1.0) < p_block {
                let v = rng.gen_range(f64::EPSILON..=1.0);
                for i in bi * block..(bi + 1) * block {
                    for j in bj * block..(bj + 1) * block {
                        out.set(&[i, j], v);
                        out.set(&[j, i], v);
                    }
                }
            }
        }
    }
    out
}

/// Generates a dense tensor with values uniform in `[0, 1)`.
pub fn random_dense(dims: Vec<usize>, rng: &mut impl Rng) -> DenseTensor {
    let len: usize = dims.iter().product();
    let data: Vec<f64> = (0..len).map(|_| rng.gen::<f64>()).collect();
    DenseTensor::from_vec(dims, data).expect("length is the product of dims by construction")
}

/// Generates a random *symmetric* dense matrix (for small-scale
/// reference tests): `M + Mᵀ` over a uniform dense `M`.
pub fn random_symmetric_dense(n: usize, rng: &mut impl Rng) -> DenseTensor {
    let mut out = DenseTensor::zeros(vec![n, n]);
    for i in 0..n {
        for j in i..n {
            let v = rng.gen::<f64>();
            out.set(&[i, j], v);
            out.set(&[j, i], v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_er_is_symmetric_and_seeded() {
        let a = symmetric_erdos_renyi(8, 3, 0.1, &mut rng(7));
        let b = symmetric_erdos_renyi(8, 3, 0.1, &mut rng(7));
        assert_eq!(a, b, "same seed must reproduce the tensor");
        assert!(a.is_fully_symmetric());
        assert!(a.nnz() > 0);
    }

    #[test]
    fn symmetric_er_higher_order() {
        let t = symmetric_erdos_renyi(5, 4, 0.05, &mut rng(3));
        assert!(t.is_fully_symmetric());
        assert_eq!(t.dims(), &[5, 5, 5, 5]);
    }

    #[test]
    fn block_plateau_is_symmetric_and_run_structured() {
        let a = symmetric_block_plateau(48, 8, 0.3, &mut rng(5));
        let b = symmetric_block_plateau(48, 8, 0.3, &mut rng(5));
        assert_eq!(a, b, "same seed must reproduce the matrix");
        assert!(a.is_fully_symmetric());
        assert!(a.nnz() > 0);
        // Every stored entry equals its whole block: packing the leaf
        // as RunLength must merge each block's columns into one run.
        let packed = crate::SparseTensor::from_coo(
            &a,
            &[crate::LevelFormat::Dense, crate::LevelFormat::RunLength],
        )
        .unwrap();
        // RunLength stores one value per run.
        assert_eq!(packed.nnz() * 8, a.nnz(), "each run should cover one full block width");
    }

    #[test]
    fn sprand_hits_target_nnz() {
        let m = sprand(50, 50, 200, &mut rng(1));
        assert_eq!(m.nnz(), 200);
        assert_eq!(m.dims(), &[50, 50]);
    }

    #[test]
    fn banded_sprand_within_dims() {
        let m = banded_sprand(40, 150, 3, 0.7, &mut rng(2));
        assert_eq!(m.nnz(), 150);
        // Majority of entries near the diagonal.
        let near = m.entries().filter(|(c, _)| c[0].abs_diff(c[1]) <= 3).count();
        assert!(near * 2 > m.nnz(), "expected band dominance, got {near}/{}", m.nnz());
    }

    #[test]
    fn random_dense_shape_and_range() {
        let d = random_dense(vec![4, 5], &mut rng(9));
        assert_eq!(d.dims(), &[4, 5]);
        assert!(d.as_slice().iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn random_symmetric_dense_is_symmetric() {
        let m = random_symmetric_dense(6, &mut rng(4));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(m.get(&[i, j]), m.get(&[j, i]));
            }
        }
    }
}
