//! The matrix collection of the paper's Table 2, as synthetic stand-ins.
//!
//! The paper benchmarks SSYMV/SYPRD/SSYRK on the Vuduc et al. suite of 30
//! SuiteSparse matrices, downloaded from <http://sparse.tamu.edu>. This
//! reproduction is offline, so [`MatrixSpec::generate`] synthesizes a
//! pseudo-random matrix with the *same name, dimension and nnz* as each
//! suite member (banded + scattered pattern, seeded by the name), and the
//! harness symmetrizes it as `A + Aᵀ` exactly as the paper does for the
//! asymmetric members (§5.2). The figures' claims are relative speedups
//! per matrix, which depend on size/sparsity — both preserved.

use crate::generate::{banded_sprand, rng};
use crate::CooTensor;

/// Name, dimension and nonzero count of one Table 2 matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatrixSpec {
    /// The SuiteSparse name (e.g. `"bcsstk35"`).
    pub name: &'static str,
    /// The (square) dimension.
    pub dim: usize,
    /// The original matrix's stored-entry count.
    pub nnz: usize,
}

impl MatrixSpec {
    /// Synthesizes the stand-in pattern: `nnz` entries, band-dominated,
    /// deterministically seeded by the matrix name.
    pub fn generate(&self) -> CooTensor {
        let seed = self
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
        let mut r = rng(seed);
        // Bandwidth scaled so band density stays plausible for the size.
        let avg_row = (self.nnz / self.dim).max(1);
        let bandwidth = (avg_row * 2).clamp(2, self.dim.saturating_sub(1).max(2));
        banded_sprand(self.dim, self.nnz, bandwidth, 0.7, &mut r)
    }

    /// The symmetrized stand-in `A + Aᵀ` (what the SSYMV/SYPRD/SSYRK
    /// benchmarks consume).
    pub fn generate_symmetric(&self) -> CooTensor {
        self.generate().symmetrized().expect("suite matrices are square")
    }

    /// A proportionally scaled-down spec (for fast CI runs): dimension and
    /// nnz divided by `factor`, minimum 16 rows / 32 entries.
    pub fn scaled_down(&self, factor: usize) -> MatrixSpec {
        MatrixSpec {
            name: self.name,
            dim: (self.dim / factor).max(16),
            nnz: (self.nnz / factor).max(32),
        }
    }
}

/// The 30 matrices of Table 2 (name, dimension, nonzeros).
pub fn table2() -> Vec<MatrixSpec> {
    const T: &[(&str, usize, usize)] = &[
        ("bayer02", 13935, 63679),
        ("bayer10", 13436, 94926),
        ("bcsstk35", 30237, 1450163),
        ("coater2", 9540, 207308),
        ("crystk02", 13965, 968583),
        ("crystk03", 24696, 1751178),
        ("ct20stif", 52329, 2698463),
        ("ex11", 16614, 1096948),
        ("finan512", 74752, 596992),
        ("gemat11", 4929, 33185),
        ("goodwin", 7320, 324784),
        ("lhr10", 10672, 232633),
        ("lnsp3937", 3937, 25407),
        ("memplus", 17758, 126150),
        ("nasasrb", 54870, 2677324),
        ("olafu", 16146, 1015156),
        ("onetone2", 36057, 227628),
        ("orani678", 2529, 90185),
        ("raefsky3", 21200, 1488768),
        ("raefsky4", 19779, 1328611),
        ("rdist1", 4134, 94408),
        ("rim", 22560, 1014951),
        ("saylr4", 3564, 22316),
        ("sherman3", 5005, 20033),
        ("sherman5", 3312, 20793),
        ("shyy161", 76480, 329762),
        ("venkat01", 62424, 1717792),
        ("vibrobox", 12328, 342828),
        ("wang3", 26064, 177168),
        ("wang4", 26068, 177196),
    ];
    T.iter().map(|&(name, dim, nnz)| MatrixSpec { name, dim, nnz }).collect()
}

/// A handful of small suite members, scaled down — used by integration
/// tests where generating multi-million-nnz matrices would be too slow.
pub fn small_suite() -> Vec<MatrixSpec> {
    table2().into_iter().filter(|s| s.nnz < 100_000).map(|s| s.scaled_down(8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_row_count() {
        let t = table2();
        assert_eq!(t.len(), 30);
        let bcsstk35 = t.iter().find(|s| s.name == "bcsstk35").unwrap();
        assert_eq!(bcsstk35.dim, 30237);
        assert_eq!(bcsstk35.nnz, 1450163);
    }

    #[test]
    fn generate_is_deterministic_per_name() {
        let spec = MatrixSpec { name: "saylr4", dim: 356, nnz: 2231 };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn generate_hits_spec() {
        let spec = MatrixSpec { name: "test", dim: 500, nnz: 2000 };
        let m = spec.generate();
        assert_eq!(m.dims(), &[500, 500]);
        assert_eq!(m.nnz(), 2000);
    }

    #[test]
    fn generate_symmetric_is_symmetric() {
        let spec = MatrixSpec { name: "sherman3", dim: 500, nnz: 2000 };
        let s = spec.generate_symmetric();
        assert!(s.is_fully_symmetric());
    }

    #[test]
    fn scaled_down_respects_minimums() {
        let spec = MatrixSpec { name: "tiny", dim: 20, nnz: 40 };
        let s = spec.scaled_down(100);
        assert_eq!(s.dim, 16);
        assert_eq!(s.nnz, 32);
    }

    #[test]
    fn small_suite_nonempty_and_small() {
        let s = small_suite();
        assert!(!s.is_empty());
        assert!(s.iter().all(|m| m.nnz <= 100_000 / 8 + 32));
    }
}
