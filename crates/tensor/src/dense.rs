//! Strided dense tensors.

use crate::TensorError;

/// A dense tensor of `f64` in row-major (first mode outermost) layout.
///
/// Dense tensors serve as the dense operands of the paper's kernels
/// (vectors `x`, `d`, factor matrices `B`, outputs `y`, `C`) and as the
/// reference representation in tests.
///
/// # Examples
///
/// ```
/// use systec_tensor::DenseTensor;
///
/// let mut m = DenseTensor::zeros(vec![2, 3]);
/// m.set(&[1, 2], 5.0);
/// assert_eq!(m.get(&[1, 2]), 5.0);
/// assert_eq!(m.get(&[0, 0]), 0.0);
/// assert_eq!(m.rank(), 2);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct DenseTensor {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a dense tensor of the given shape filled with `fill`.
    pub fn filled(dims: Vec<usize>, fill: f64) -> Self {
        let len = dims.iter().product();
        let strides = row_major_strides(&dims);
        DenseTensor { dims, strides, data: vec![fill; len] }
    }

    /// Creates a zero-filled dense tensor of the given shape.
    pub fn zeros(dims: Vec<usize>) -> Self {
        Self::filled(dims, 0.0)
    }

    /// Creates a dense tensor from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` is not the
    /// product of `dims`.
    pub fn from_vec(dims: Vec<usize>, data: Vec<f64>) -> Result<Self, TensorError> {
        let len: usize = dims.iter().product();
        if data.len() != len {
            return Err(TensorError::ShapeMismatch { a: dims, b: vec![data.len()] });
        }
        let strides = row_major_strides(&dims);
        Ok(DenseTensor { dims, strides, data })
    }

    /// The shape, one extent per mode.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of modes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Flat row-major offset of a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if the arity or any coordinate is out of range.
    #[inline]
    pub fn offset(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut off = 0;
        for (k, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[k], "coord {c} out of bounds for mode {k}");
            off += c * self.strides[k];
        }
        off
    }

    /// Reads the element at `coords`.
    #[inline]
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.data[self.offset(coords)]
    }

    /// Writes the element at `coords`.
    #[inline]
    pub fn set(&mut self, coords: &[usize], value: f64) {
        let off = self.offset(coords);
        self.data[off] = value;
    }

    /// Mutable reference to the element at `coords`.
    #[inline]
    pub fn get_mut(&mut self, coords: &[usize]) -> &mut f64 {
        let off = self.offset(coords);
        &mut self.data[off]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The row-major strides, one per mode (`offset = Σ coords[k] *
    /// strides[k]`). Exposed so executors can compute offsets without
    /// materializing coordinate vectors.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns a transposed/permuted copy: `out[c] = self[c ∘ perm]`,
    /// i.e. mode `k` of the result is mode `perm[k]` of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidPermutation`] if `perm` is not a
    /// permutation of `0..rank`.
    pub fn permuted(&self, perm: &[usize]) -> Result<DenseTensor, TensorError> {
        validate_perm(perm, self.rank())?;
        let new_dims: Vec<usize> = perm.iter().map(|&p| self.dims[p]).collect();
        let mut out = DenseTensor::zeros(new_dims);
        let mut coords = vec![0usize; self.rank()];
        let mut out_coords = vec![0usize; self.rank()];
        loop {
            for (k, &p) in perm.iter().enumerate() {
                out_coords[k] = coords[p];
            }
            out.set(&out_coords, self.get(&coords));
            // odometer increment
            let mut mode = self.rank();
            loop {
                if mode == 0 {
                    return Ok(out);
                }
                mode -= 1;
                coords[mode] += 1;
                if coords[mode] < self.dims[mode] {
                    break;
                }
                coords[mode] = 0;
            }
        }
    }

    /// Maximum absolute elementwise difference to another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> Result<f64, TensorError> {
        if self.dims != other.dims {
            return Err(TensorError::ShapeMismatch { a: self.dims.clone(), b: other.dims.clone() });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max))
    }

    /// Iterates over `(coords, value)` of every element (including zeros).
    pub fn iter(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let dims = self.dims.clone();
        (0..self.data.len()).map(move |flat| {
            let mut rem = flat;
            let mut coords = vec![0usize; dims.len()];
            for k in (0..dims.len()).rev() {
                coords[k] = rem % dims[k];
                rem /= dims[k];
            }
            (coords, self.data[flat])
        })
    }
}

pub(crate) fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for k in (0..dims.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * dims[k + 1];
    }
    strides
}

pub(crate) fn validate_perm(perm: &[usize], rank: usize) -> Result<(), TensorError> {
    let mut seen = vec![false; rank];
    let valid = perm.len() == rank
        && perm.iter().all(|&p| {
            if p < rank && !seen[p] {
                seen[p] = true;
                true
            } else {
                false
            }
        });
    if valid {
        Ok(())
    } else {
        Err(TensorError::InvalidPermutation { perm: perm.to_vec() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = DenseTensor::zeros(vec![3, 4]);
        t.set(&[2, 3], 7.5);
        assert_eq!(t.get(&[2, 3]), 7.5);
        *t.get_mut(&[0, 1]) += 2.0;
        assert_eq!(t.get(&[0, 1]), 2.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseTensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(DenseTensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn scalar_tensor() {
        let mut t = DenseTensor::zeros(vec![]);
        assert_eq!(t.get(&[]), 0.0);
        t.set(&[], 4.0);
        assert_eq!(t.get(&[]), 4.0);
    }

    #[test]
    fn permuted_transposes_matrix() {
        let m = DenseTensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = m.permuted(&[1, 0]).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), m.get(&[1, 2]));
        assert_eq!(t.get(&[0, 0]), 1.0);
    }

    #[test]
    fn permuted_is_involution_for_transpose() {
        let m = DenseTensor::from_vec(vec![2, 3], (0..6).map(|x| x as f64).collect()).unwrap();
        let back = m.permuted(&[1, 0]).unwrap().permuted(&[1, 0]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn permuted_rejects_bad_perm() {
        let m = DenseTensor::zeros(vec![2, 2]);
        assert!(m.permuted(&[0, 0]).is_err());
        assert!(m.permuted(&[0]).is_err());
        assert!(m.permuted(&[0, 2]).is_err());
    }

    #[test]
    fn three_mode_permutation() {
        let mut t = DenseTensor::zeros(vec![2, 3, 4]);
        t.set(&[1, 2, 3], 9.0);
        let p = t.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert_eq!(p.get(&[3, 1, 2]), 9.0);
    }

    #[test]
    fn max_abs_diff_checks_shape() {
        let a = DenseTensor::zeros(vec![2]);
        let b = DenseTensor::zeros(vec![3]);
        assert!(a.max_abs_diff(&b).is_err());
        let c = DenseTensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let d = DenseTensor::from_vec(vec![2], vec![1.5, 2.0]).unwrap();
        assert_eq!(c.max_abs_diff(&d).unwrap(), 0.5);
    }

    #[test]
    fn iter_visits_all_elements() {
        let m = DenseTensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let items: Vec<_> = m.iter().collect();
        assert_eq!(items.len(), 4);
        assert_eq!(items[1], (vec![0, 1], 2.0));
        assert_eq!(items[3], (vec![1, 1], 4.0));
    }
}
