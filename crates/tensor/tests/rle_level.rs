//! Tests of the run-length-encoded leaf level (the "structured tensor"
//! support of the paper's Table 1: Triangular / Banded / RLE).

use systec_tensor::{CooTensor, LevelFormat, SparseTensor};

fn rle_matrix(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> SparseTensor {
    let mut coo = CooTensor::new(vec![rows, cols]);
    for &(i, j, v) in entries {
        coo.set(&[i, j], v);
    }
    SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap()
}

#[test]
fn runs_collapse_equal_adjacent_values() {
    // Row 0: [5, 5, 5, 0, 2]: two runs.
    let m = rle_matrix(2, 5, &[(0, 0, 5.0), (0, 1, 5.0), (0, 2, 5.0), (0, 4, 2.0)]);
    assert_eq!(m.nnz(), 2, "two runs stored, not four entries");
    assert_eq!(m.get(&[0, 0]), 5.0);
    assert_eq!(m.get(&[0, 1]), 5.0);
    assert_eq!(m.get(&[0, 2]), 5.0);
    assert_eq!(m.get(&[0, 3]), 0.0);
    assert_eq!(m.get(&[0, 4]), 2.0);
    assert_eq!(m.get(&[1, 0]), 0.0);
}

#[test]
fn roundtrip_preserves_entries() {
    let mut coo = CooTensor::new(vec![3, 6]);
    for j in 1..5 {
        coo.set(&[0, j], 7.0);
    }
    coo.set(&[2, 0], 1.0);
    coo.set(&[2, 1], 2.0);
    coo.set(&[2, 2], 2.0);
    let m = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap();
    assert_eq!(m.to_coo(), coo);
    assert_eq!(m.nnz(), 3, "runs: [1..4]=7, [0]=1, [1..2]=2");
}

#[test]
fn level_iter_expands_runs_with_bounds() {
    let m = rle_matrix(1, 8, &[(0, 1, 3.0), (0, 2, 3.0), (0, 3, 3.0), (0, 6, 4.0)]);
    let row = m.level_find(0, 0, 0).unwrap();
    // Full range: coordinates 1,2,3,6.
    let coords: Vec<usize> = m.level_iter(1, row, 0, usize::MAX).map(|(c, _)| c).collect();
    assert_eq!(coords, vec![1, 2, 3, 6]);
    // Bounded [2, 5]: coordinates 2,3.
    let bounded: Vec<(usize, usize)> = m.level_iter(1, row, 2, 5).collect();
    assert_eq!(bounded.iter().map(|&(c, _)| c).collect::<Vec<_>>(), vec![2, 3]);
    // Both bounded coords share the first run's position.
    assert_eq!(bounded[0].1, bounded[1].1);
    assert_eq!(m.value(bounded[0].1), 3.0);
}

#[test]
fn level_find_locates_runs() {
    let m = rle_matrix(1, 8, &[(0, 1, 3.0), (0, 2, 3.0), (0, 6, 4.0)]);
    let row = m.level_find(0, 0, 0).unwrap();
    let p1 = m.level_find(1, row, 1).unwrap();
    let p2 = m.level_find(1, row, 2).unwrap();
    assert_eq!(p1, p2, "coordinates of one run share a position");
    assert_eq!(m.value(p1), 3.0);
    assert_eq!(m.level_find(1, row, 0), None);
    assert_eq!(m.level_find(1, row, 3), None);
    assert_eq!(m.value(m.level_find(1, row, 6).unwrap()), 4.0);
}

#[test]
fn interior_runlength_level_is_rejected() {
    let coo = CooTensor::new(vec![2, 2]);
    assert!(
        SparseTensor::from_coo(&coo, &[LevelFormat::RunLength, LevelFormat::Sparse]).is_err(),
        "RunLength is a leaf-level format"
    );
}

#[test]
fn banded_matrix_compresses_well_in_rle() {
    // A banded matrix with constant band value: RLE stores one run per
    // row instead of `bandwidth` entries.
    let n = 50;
    let mut coo = CooTensor::new(vec![n, n]);
    for i in 0..n {
        for j in i.saturating_sub(2)..(i + 3).min(n) {
            coo.set(&[i, j], 1.0);
        }
    }
    let rle = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap();
    let csr = SparseTensor::from_coo(&coo, &systec_tensor::CSR).unwrap();
    assert_eq!(rle.nnz(), n, "one run per row");
    assert!(csr.nnz() > 4 * n, "CSR stores every band entry");
    assert_eq!(rle.to_coo(), csr.to_coo());
}
