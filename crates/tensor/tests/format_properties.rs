//! Property-based tests of the fibertree format invariants.

use proptest::prelude::*;
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor};

/// Strategy: a random COO tensor with rank in 1..=3 and small dims.
fn coo_strategy() -> impl Strategy<Value = CooTensor> {
    (1usize..=3)
        .prop_flat_map(|rank| {
            let dims = prop::collection::vec(1usize..=6, rank..=rank);
            dims.prop_flat_map(move |dims| {
                let max_nnz = dims.iter().product::<usize>().min(12);
                let coords = prop::collection::vec(
                    dims.iter().map(|&d| 0..d).collect::<Vec<_>>(),
                    0..=max_nnz,
                );
                let dims2 = dims.clone();
                (Just(dims2), coords, prop::collection::vec(0.1f64..10.0, max_nnz))
            })
        })
        .prop_map(|(dims, coords, vals)| {
            let mut coo = CooTensor::new(dims);
            for (c, v) in coords.iter().zip(vals.iter().cycle()) {
                coo.set(c, *v);
            }
            coo
        })
}

/// Strategy: a format vector for a given rank.
fn formats(rank: usize) -> impl Strategy<Value = Vec<LevelFormat>> {
    prop::collection::vec(
        prop_oneof![Just(LevelFormat::Dense), Just(LevelFormat::Sparse)],
        rank..=rank,
    )
}

proptest! {
    #[test]
    fn pack_roundtrips_through_any_format(coo in coo_strategy()) {
        let rank = coo.rank();
        proptest!(|(fmts in formats(rank))| {
            let packed = SparseTensor::from_coo(&coo, &fmts).unwrap();
            prop_assert_eq!(packed.to_coo(), coo.clone());
        });
    }

    #[test]
    fn random_access_matches_dense(coo in coo_strategy()) {
        let dense = coo.to_dense();
        let all_sparse = vec![LevelFormat::Sparse; coo.rank()];
        let packed = SparseTensor::from_coo(&coo, &all_sparse).unwrap();
        // Probe every coordinate.
        for (coords, v) in dense.iter() {
            prop_assert_eq!(packed.get(&coords), v);
        }
    }

    #[test]
    fn permutation_roundtrip_is_identity(coo in coo_strategy()) {
        let rank = coo.rank();
        // Rotate modes left, then right: the composition is the identity.
        let left: Vec<usize> = (0..rank).map(|k| (k + 1) % rank).collect();
        let right: Vec<usize> = (0..rank).map(|k| (k + rank - 1) % rank).collect();
        let rotated = coo.permuted(&left).unwrap().permuted(&right).unwrap();
        prop_assert_eq!(rotated, coo);
    }

    #[test]
    fn symmetrization_is_symmetric(n in 1usize..6, pairs in prop::collection::vec((0usize..6, 0usize..6, 0.1f64..5.0), 0..10)) {
        let mut coo = CooTensor::new(vec![n, n]);
        for (r, c, v) in pairs {
            if r < n && c < n {
                coo.set(&[r, c], v);
            }
        }
        let s = coo.symmetrized().unwrap();
        prop_assert!(s.is_fully_symmetric());
        // Diagonal entries double, off-diagonal sum with their mirror.
        for i in 0..n {
            let expected = 2.0 * coo.get(&[i, i]);
            prop_assert!((s.get(&[i, i]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_permute_matches_coo_permute(coo in coo_strategy()) {
        let rank = coo.rank();
        let rev: Vec<usize> = (0..rank).rev().collect();
        let via_dense: DenseTensor = coo.to_dense().permuted(&rev).unwrap();
        let via_coo = coo.permuted(&rev).unwrap().to_dense();
        prop_assert_eq!(via_dense, via_coo);
    }

    #[test]
    fn split_diagonal_is_a_partition(coo in coo_strategy()) {
        let rank = coo.rank();
        let modes: Vec<usize> = (0..rank).collect();
        let (off, diag) = coo.split_diagonal(&modes);
        prop_assert_eq!(off.nnz() + diag.nnz(), coo.nnz());
        // Recombining restores the original.
        let mut merged = off.clone();
        for (c, v) in diag.entries() {
            merged.push(c, v);
        }
        prop_assert_eq!(merged, coo);
    }
}
