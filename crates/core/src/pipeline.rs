//! The compiler pipeline: symmetrization followed by the §4.2 passes.

use std::collections::HashMap;

use systec_ir::{Access, AssignOp, BinOp, CmpOp, Cond, Einsum, Expr, Index, Stmt};

use crate::passes::{
    access_cse, concordize, consolidate, diagonal_split, distribute, group_branches, lookup_table,
    visible_output,
};
use crate::{symmetrize, CompileError, SymmetryPartition, SymmetrySpec};

/// Per-pass toggles, used by the ablation benchmarks and by callers that
/// want to match a specific listing from the paper.
///
/// All passes default to on except the simplicial lookup table, which
/// the paper applies selectively (it trades control flow for indexed
/// loads; Listing 7's MTTKRP does not use it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompileOptions {
    /// §4.2.2 restrict output to canonical triangle (+ replication).
    pub visible_output: bool,
    /// §4.2.7 distributive assignment grouping.
    pub distribute: bool,
    /// §4.2.5 simplicial lookup tables.
    pub lookup_tables: bool,
    /// §4.2.4 consolidate conditional blocks.
    pub consolidate: bool,
    /// §4.2.1 common tensor access elimination.
    pub cse: bool,
    /// §4.2.9 diagonal splitting.
    pub diagonal_split: bool,
    /// §4.2.6 group assignments across branches.
    pub group_branches: bool,
    /// §4.2.8 workspace transformation.
    pub workspace: bool,
    /// Loop-invariant read motion (performed by Finch's lowering in the
    /// paper's stack; applied to naive baselines too, for fairness).
    pub licm: bool,
    /// §4.2.3 concordize tensors.
    pub concordize: bool,
    /// Einsum-level output-symmetry detection (SSYRK-style kernels where
    /// the output is symmetric *by construction*, Example 3.1).
    pub output_symmetry_detection: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            visible_output: true,
            distribute: true,
            lookup_tables: false,
            consolidate: true,
            cse: true,
            diagonal_split: true,
            group_branches: true,
            workspace: true,
            licm: true,
            concordize: true,
            output_symmetry_detection: true,
        }
    }
}

impl CompileOptions {
    /// Everything off: plain symmetrization only.
    pub fn none() -> Self {
        CompileOptions {
            visible_output: false,
            distribute: false,
            lookup_tables: false,
            consolidate: false,
            cse: false,
            diagonal_split: false,
            group_branches: false,
            workspace: false,
            licm: false,
            concordize: false,
            output_symmetry_detection: false,
        }
    }
}

/// A compiled kernel: the optimized main program plus its metadata.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledKernel {
    /// The complete program (main loops followed by any replication).
    pub program: Stmt,
    /// The main loop nest(s) only.
    pub main: Stmt,
    /// The output-replication nest, when visible output symmetry was
    /// exploited.
    pub replication: Option<Stmt>,
    /// The permutable indices in canonical order.
    pub chain: Vec<Index>,
    /// Detected (or declared) symmetry of the output's mode positions.
    pub output_partition: Option<SymmetryPartition>,
    /// Names of tensors declared symmetric.
    pub symmetric_tensors: Vec<String>,
}

/// The SySTeC compiler.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    /// A compiler with default options.
    pub fn new() -> Self {
        Compiler { options: CompileOptions::default() }
    }

    /// A compiler with explicit per-pass toggles.
    pub fn with_options(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// The active options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles an einsum with the declared input symmetries.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the symmetry declarations do not
    /// match the einsum.
    pub fn compile(
        &self,
        einsum: &Einsum,
        spec: &SymmetrySpec,
    ) -> Result<CompiledKernel, CompileError> {
        let o = &self.options;
        let sym = symmetrize(einsum, spec)?;
        let mut program = sym.program;
        let mut replication = None;
        let mut output_partition = None;

        // §4.2.2 — visible output symmetry surfaced by symmetrization.
        if o.visible_output {
            let result = visible_output(program, &sym.chain, &einsum.loop_order);
            program = result.program;
            replication = result.replication;
            output_partition = result.partition;
        }
        // Einsum-level output symmetry (no symmetric input needed).
        if o.output_symmetry_detection && replication.is_none() {
            if let Some((partition, guard)) = einsum_visible_symmetry(&sym.einsum, spec, &sym.chain)
            {
                program = add_guard(program, &guard, &einsum.loop_order);
                replication = Some(crate::passes::replication_nest(
                    &einsum.output,
                    &partition,
                    &einsum.loop_order,
                ));
                output_partition = Some(partition);
            }
        }
        if o.output_symmetry_detection {
            if let Some(split) = einsum_invisible_symmetry(&sym.einsum, spec, &sym.chain) {
                program = apply_invisible_split(program, &split, &einsum.loop_order);
            }
        }
        if o.distribute {
            program = distribute(program);
        }
        if o.lookup_tables {
            program = lookup_table(program, &sym.chain);
        }
        if o.consolidate {
            program = consolidate(program);
        }
        if o.cse {
            program = access_cse(program);
        }
        if o.diagonal_split {
            // The runtime's diagonal/off-diagonal split partitions a
            // tensor's entries over ALL of its modes, so the pass is only
            // sound for fully symmetric tensors whose symmetric indices
            // are exactly the chain. (Partial symmetry would misroute
            // entries that are diagonal in a non-chain mode pair.)
            let chain_set: std::collections::BTreeSet<&Index> = sym.chain.iter().collect();
            let splittable: Vec<String> = sym
                .symmetric_tensors
                .iter()
                .filter(|name| {
                    spec.partition(name).is_some_and(|p| p.is_full())
                        && sym
                            .einsum
                            .rhs
                            .accesses()
                            .iter()
                            .filter(|a| a.tensor.is_base() && a.tensor.name == **name)
                            .all(|a| {
                                a.indices.iter().collect::<std::collections::BTreeSet<_>>()
                                    == chain_set
                            })
                })
                .cloned()
                .collect();
            if splittable.len() == sym.symmetric_tensors.len() {
                program = diagonal_split(program, &sym.chain, &splittable);
            }
        }
        if o.group_branches {
            program = group_branches(program);
        }
        if o.licm {
            program = crate::passes::licm(program);
        }
        if o.workspace {
            program = crate::passes::workspace(program);
        }
        if o.concordize {
            program = concordize(program, spec);
        }

        let main = program.clone();
        let full = match &replication {
            Some(rep) => Stmt::block([program, rep.clone()]),
            None => program,
        };
        Ok(CompiledKernel {
            program: full,
            main,
            replication,
            chain: sym.chain,
            output_partition,
            symmetric_tensors: sym.symmetric_tensors,
        })
    }

    /// The naive (symmetry-oblivious) kernel for the same einsum, run
    /// through concordization only — the "naive Finch" baseline of the
    /// paper's evaluation.
    pub fn naive(&self, einsum: &Einsum) -> Stmt {
        let program = concordize(einsum.naive_program(), &SymmetrySpec::new());
        if self.options.licm {
            crate::passes::licm(program)
        } else {
            program
        }
    }
}

/// Detects visible output symmetry at the einsum level: pairs of output
/// indices whose swap leaves the right-hand side invariant modulo
/// commutativity (Example 3.1: `B[i,j] = A[i,k] * A[j,k]`).
///
/// Indices already covered by input symmetry (the chain) are skipped —
/// symmetrization has already dealt with them.
fn einsum_visible_symmetry(
    einsum: &Einsum,
    spec: &SymmetrySpec,
    chain: &[Index],
) -> Option<(SymmetryPartition, Cond)> {
    let out = &einsum.output.indices;
    let mut parts: Vec<Vec<usize>> = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    for a in 0..out.len() {
        for b in a + 1..out.len() {
            if used.contains(&a) || used.contains(&b) {
                continue;
            }
            if chain.contains(&out[a]) || chain.contains(&out[b]) {
                continue;
            }
            if out[a] == out[b] {
                continue;
            }
            if rhs_invariant_under_swap(einsum, spec, &out[a], &out[b]) {
                parts.push(vec![a, b]);
                used.extend([a, b]);
            }
        }
    }
    if parts.is_empty() {
        return None;
    }
    let guard =
        Cond::and(parts.iter().map(|p| Cond::Cmp(CmpOp::Le, out[p[0]].clone(), out[p[1]].clone())));
    for m in 0..out.len() {
        if !used.contains(&m) {
            parts.push(vec![m]);
        }
    }
    let partition = SymmetryPartition::from_parts(parts)?;
    Some((partition, guard))
}

/// Detects invisible output symmetry at the einsum level: pairs of
/// *reduction* indices whose swap leaves the right-hand side invariant
/// (Example 3.1: `B[i] = A[i,j] * A[i,k]` has `{{j,k}}` symmetry).
fn einsum_invisible_symmetry(
    einsum: &Einsum,
    spec: &SymmetrySpec,
    chain: &[Index],
) -> Option<(Index, Index)> {
    let reduction: Vec<Index> = einsum.reduction_indices().into_iter().collect();
    for a in 0..reduction.len() {
        for b in a + 1..reduction.len() {
            let (ia, ib) = (&reduction[a], &reduction[b]);
            if chain.contains(ia) || chain.contains(ib) {
                continue;
            }
            if rhs_invariant_under_swap(einsum, spec, ia, ib) {
                return Some((ia.clone(), ib.clone()));
            }
        }
    }
    None
}

fn rhs_invariant_under_swap(einsum: &Einsum, spec: &SymmetrySpec, a: &Index, b: &Index) -> bool {
    let map: HashMap<Index, Index> =
        [(a.clone(), b.clone()), (b.clone(), a.clone())].into_iter().collect();
    let normalize = |e: &Expr| normalize_symmetric(e, spec).sort_commutative();
    let swapped = einsum.rhs.substitute(&map);
    normalize(&swapped) == normalize(&einsum.rhs)
}

/// Sorts symmetric-part subscripts lexicographically so symmetric
/// accesses compare equal under permutation.
fn normalize_symmetric(expr: &Expr, spec: &SymmetrySpec) -> Expr {
    match expr {
        Expr::Access(a) if a.tensor.is_base() => {
            if let Some(partition) = spec.partition(&a.tensor.name) {
                if partition.rank() == a.indices.len() {
                    let mut indices = a.indices.clone();
                    for part in partition.nontrivial_parts() {
                        let mut modes: Vec<usize> = part.to_vec();
                        modes.sort_unstable();
                        let mut vals: Vec<Index> =
                            modes.iter().map(|&m| indices[m].clone()).collect();
                        vals.sort();
                        for (&m, v) in modes.iter().zip(vals) {
                            indices[m] = v;
                        }
                    }
                    return Expr::Access(Access { tensor: a.tensor.clone(), indices });
                }
            }
            expr.clone()
        }
        Expr::Call { op, args } => Expr::Call {
            op: *op,
            args: args.iter().map(|e| normalize_symmetric(e, spec)).collect(),
        },
        Expr::Lookup { table, index } => {
            Expr::Lookup { table: table.clone(), index: Box::new(normalize_symmetric(index, spec)) }
        }
        other => other.clone(),
    }
}

/// Inserts a guard just inside the loop binding the last (innermost) of
/// the guard's indices.
fn add_guard(program: Stmt, guard: &Cond, loop_order: &[Index]) -> Stmt {
    let innermost = loop_order.iter().rev().find(|i| guard.indices().contains(*i)).cloned();
    let Some(innermost) = innermost else {
        return Stmt::guarded(guard.clone(), program);
    };
    insert_at_loop(program, &innermost, &mut |body| Stmt::guarded(guard.clone(), body))
}

fn insert_at_loop(stmt: Stmt, target: &Index, wrap: &mut impl FnMut(Stmt) -> Stmt) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } if index == *target => {
            Stmt::Loop { index, body: Box::new(wrap(*body)) }
        }
        other => other.map_children(&mut |s| insert_at_loop(s, target, wrap)),
    }
}

/// Rewrites the program to exploit einsum-level invisible symmetry in a
/// reduction pair `(a, b)`: restrict to `a ≤ b`, doubling the
/// off-diagonal contribution (or merely restricting, for idempotent
/// reductions).
fn apply_invisible_split(program: Stmt, pair: &(Index, Index), loop_order: &[Index]) -> Stmt {
    let (a, b) = pair;
    let innermost = loop_order
        .iter()
        .rev()
        .find(|i| *i == a || *i == b)
        .cloned()
        .expect("pair indices are loop indices");
    insert_at_loop(program, &innermost, &mut |body| split_body(body, a, b))
}

fn split_body(body: Stmt, a: &Index, b: &Index) -> Stmt {
    // body is (possibly) a single assignment or block of assignments.
    let doubled = body.clone().map_exprs(&mut |rhs| double(rhs));
    let idempotent = all_idempotent(&body);
    let strict = Stmt::guarded(
        Cond::Cmp(CmpOp::Lt, a.clone(), b.clone()),
        if idempotent { body.clone() } else { doubled },
    );
    let diagonal = Stmt::guarded(Cond::Cmp(CmpOp::Eq, a.clone(), b.clone()), body);
    Stmt::block([strict, diagonal])
}

fn all_idempotent(stmt: &Stmt) -> bool {
    stmt.assignments().iter().all(|s| match s {
        Stmt::Assign { op, .. } => op.is_idempotent() && *op != AssignOp::Overwrite,
        _ => false,
    })
}

fn double(rhs: Expr) -> Expr {
    Expr::call(BinOp::Mul, [Expr::Literal(2.0), rhs])
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn ssymv() -> Einsum {
        Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        )
    }

    #[test]
    fn ssymv_compiles_to_figure_2_shape() {
        let spec = SymmetrySpec::new().with_full("A", 2);
        let kernel = Compiler::new().compile(&ssymv(), &spec).unwrap();
        let printed = kernel.program.to_string();
        // Reads bound to a scalar and reused for both updates; the
        // workspace transform hoists the y[i] accumulation out of the j
        // loop.
        assert!(printed.contains("let t_A"), "{printed}");
        assert!(printed.contains("w_y += t_A * x[j]"), "{printed}");
        assert!(printed.contains("y[j] += t_A * h_x"), "{printed}");
        assert!(printed.contains("y[i] += w_y"), "{printed}");
        // Diagonal split into two nests over A_nondiag / A_diag.
        assert!(printed.contains("A_nondiag"), "{printed}");
        assert!(printed.contains("A_diag"), "{printed}");
        assert!(kernel.replication.is_none());
    }

    #[test]
    fn syprd_gets_factor_two() {
        let e = Einsum::new(
            access("s", [] as [&str; 0]),
            AssignOp::Add,
            mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        let spec = SymmetrySpec::new().with_full("A", 2);
        let kernel = Compiler::new().compile(&e, &spec).unwrap();
        let printed = kernel.program.to_string();
        assert!(printed.contains("2 *"), "{printed}");
    }

    #[test]
    fn ssyrk_restricts_output_and_replicates() {
        let e = Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
            [idx("i"), idx("j"), idx("k")],
        );
        let kernel = Compiler::new().compile(&e, &SymmetrySpec::new()).unwrap();
        let printed = kernel.program.to_string();
        assert!(printed.contains("if i <= j"), "{printed}");
        assert!(printed.contains("C[i, j] = C[j, i]"), "{printed}");
        assert!(kernel.output_partition.as_ref().unwrap().is_full());
    }

    #[test]
    fn invisible_reduction_symmetry_detected() {
        // B[i] += A[i, j] * A[i, k]: {{j, k}} invisible symmetry.
        let e = Einsum::new(
            access("B", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("A", ["i", "k"])]),
            [idx("i"), idx("j"), idx("k")],
        );
        let kernel = Compiler::new().compile(&e, &SymmetrySpec::new()).unwrap();
        let printed = kernel.program.to_string();
        assert!(printed.contains("if j < k"), "{printed}");
        assert!(printed.contains("2 *"), "{printed}");
        assert!(printed.contains("if j == k"), "{printed}");
    }

    #[test]
    fn partial_symmetry_skips_diagonal_split() {
        // Regression (found by proptest): Out[i0] += A[i0, i1, i2] with A
        // {{0,1}}-symmetric must not split A on all three modes - an
        // entry with i1 == i2 (but i0 != i1) is off-diagonal w.r.t. the
        // chain yet lands in A_diag, misrouting its contribution.
        let e = Einsum::new(
            access("Out", ["i0"]),
            AssignOp::Add,
            access("A", ["i0", "i1", "i2"]).into(),
            [idx("i0"), idx("i1"), idx("i2")],
        );
        let part = crate::SymmetryPartition::from_parts(vec![vec![0, 1], vec![2]]).unwrap();
        let spec = SymmetrySpec::new().with_partition("A", part);
        let kernel = Compiler::new().compile(&e, &spec).unwrap();
        let printed = kernel.program.to_string();
        assert!(!printed.contains("_diag"), "{printed}");
        assert!(!printed.contains("_nondiag"), "{printed}");
    }

    #[test]
    fn naive_baseline_is_single_assignment() {
        let naive = Compiler::new().naive(&ssymv());
        assert_eq!(naive.assignments().len(), 1);
    }

    #[test]
    fn options_none_is_pure_symmetrization() {
        let spec = SymmetrySpec::new().with_full("A", 2);
        let kernel =
            Compiler::with_options(CompileOptions::none()).compile(&ssymv(), &spec).unwrap();
        let printed = kernel.program.to_string();
        assert!(!printed.contains("let "), "{printed}");
        assert!(!printed.contains("_nondiag"), "{printed}");
        assert_eq!(kernel.program.assignments().len(), 3);
    }

    #[test]
    fn mttkrp_compiles_to_listing_7_shape() {
        let e = Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([access("A", ["i", "k", "l"]), access("B", ["k", "j"]), access("B", ["l", "j"])]),
            [idx("i"), idx("k"), idx("l"), idx("j")],
        );
        let spec = SymmetrySpec::new().with_full("A", 3);
        let kernel = Compiler::new().compile(&e, &spec).unwrap();
        let printed = kernel.program.to_string();
        // Factor-2 assignments over the off-diagonal tensor.
        assert!(printed.contains("A_nondiag"), "{printed}");
        assert!(printed.contains("2 *"), "{printed}");
        assert!(printed.contains("A_diag"), "{printed}");
        // Both single-equality diagonal blocks present, with their
        // distribute-applied factors (we keep the factored form rather than
        // Listing 7's unfactored 3-assignment diagonal blocks; the two
        // are equivalent).
        assert!(printed.contains("if i == k && k != l"), "{printed}");
        assert!(printed.contains("if i != k && k == l"), "{printed}");
    }
}
