//! # systec-core
//!
//! The SySTeC compiler: automatic generation of symmetry-exploiting code
//! for sparse and structured tensor kernels, reproducing *SySTeC: A
//! Symmetric Sparse Tensor Compiler* (CGO 2025).
//!
//! Given a pointwise einsum ([`systec_ir::Einsum`]) and a map declaring
//! which input tensors are (partially) symmetric ([`SymmetrySpec`]), the
//! compiler produces a kernel that
//!
//! * reads only the **canonical triangle** of each symmetric input
//!   (saving up to `n!` of the memory traffic),
//! * performs each read's worth of updates to *all* transpositions of the
//!   output in one pass (reusing canonical reads, §3.1), and
//! * filters redundant computation via **visible** and **invisible**
//!   output symmetry (§3.2).
//!
//! The work happens in two phases (§4):
//!
//! 1. **Symmetrization** ([`symmetrize`]) — restrict iteration to the
//!    canonical triangle, enumerate equivalence groups (the
//!    generalization of diagonals, Definition 4.1), and emit one
//!    assignment per unique symmetry-group permutation (Definition 4.2).
//! 2. **Optimization** ([`passes`]) — the nine transforms of §4.2, each a
//!    term-rewriting rule: common tensor-access elimination, restriction
//!    of the output to its canonical triangle (plus a replication loop),
//!    concordization, conditional-block consolidation, simplicial lookup
//!    tables, cross-branch assignment grouping, distributive assignment
//!    grouping, the workspace transformation, and diagonal splitting.
//!
//! ## Example
//!
//! Compile the SSYMV kernel `y[i] += A[i, j] * x[j]` with symmetric `A`:
//!
//! ```
//! use systec_core::{Compiler, SymmetrySpec};
//! use systec_ir::build::*;
//! use systec_ir::{AssignOp, Einsum};
//!
//! let ssymv = Einsum::new(
//!     access("y", ["i"]),
//!     AssignOp::Add,
//!     mul([access("A", ["i", "j"]), access("x", ["j"])]),
//!     [idx("i"), idx("j")],
//! );
//! let symmetry = SymmetrySpec::new().with_full("A", 2);
//! let kernel = Compiler::new().compile(&ssymv, &symmetry).unwrap();
//! let printed = kernel.program.to_string();
//! assert!(printed.contains("i <= j") || printed.contains("i < j"), "{printed}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod passes;
mod perms;
mod pipeline;
mod symmetrize;
mod symmetry;

pub use error::CompileError;
pub use perms::{equivalence_groups, unique_symmetry_group, EquivalenceGroup};
pub use pipeline::{CompileOptions, CompiledKernel, Compiler};
pub use symmetrize::{symmetrize, SymmetrizedKernel};
pub use symmetry::{SymmetryPartition, SymmetrySpec};
