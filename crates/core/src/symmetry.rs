//! The symmetry taxonomy: partitions and per-kernel symmetry
//! declarations.

use std::collections::HashMap;

/// A partition of a tensor's mode positions `0..rank`, declaring which
/// groups of modes may be permuted without changing the tensor
/// (Definition 2.2, partial symmetry). Full symmetry is the one-part
/// partition (Definition 2.1).
///
/// # Examples
///
/// ```
/// use systec_core::SymmetryPartition;
///
/// let full = SymmetryPartition::full(3);
/// assert_eq!(full.permutations().len(), 6);
///
/// // {{0, 1}, {2}} symmetry: modes 0 and 1 interchangeable.
/// let partial = SymmetryPartition::from_parts(vec![vec![0, 1], vec![2]]).unwrap();
/// assert_eq!(partial.permutations().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymmetryPartition {
    parts: Vec<Vec<usize>>,
    rank: usize,
}

impl SymmetryPartition {
    /// The fully symmetric partition `{{0, …, rank-1}}`.
    pub fn full(rank: usize) -> Self {
        SymmetryPartition { parts: vec![(0..rank).collect()], rank }
    }

    /// The trivial partition (no symmetry): all singleton parts.
    pub fn trivial(rank: usize) -> Self {
        SymmetryPartition { parts: (0..rank).map(|m| vec![m]).collect(), rank }
    }

    /// Builds a partition from explicit parts.
    ///
    /// Returns `None` unless the parts are non-empty, disjoint, and cover
    /// a contiguous `0..rank` exactly.
    pub fn from_parts(parts: Vec<Vec<usize>>) -> Option<Self> {
        let mut seen: Vec<usize> = parts.iter().flatten().copied().collect();
        seen.sort_unstable();
        let rank = seen.len();
        let covers = seen.iter().copied().eq(0..rank);
        let nonempty = parts.iter().all(|p| !p.is_empty());
        (covers && nonempty).then_some(SymmetryPartition { parts, rank })
    }

    /// The number of modes covered.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The parts, each a sorted list of mode positions.
    pub fn parts(&self) -> impl Iterator<Item = &[usize]> {
        self.parts.iter().map(Vec::as_slice)
    }

    /// Parts with at least two modes (the ones contributing permutable
    /// indices, §4.1 stage 1).
    pub fn nontrivial_parts(&self) -> impl Iterator<Item = &[usize]> {
        self.parts.iter().filter(|p| p.len() >= 2).map(Vec::as_slice)
    }

    /// Returns `true` if any part has at least two modes.
    pub fn is_nontrivial(&self) -> bool {
        self.nontrivial_parts().next().is_some()
    }

    /// Returns `true` if the partition is the single full part.
    pub fn is_full(&self) -> bool {
        self.parts.len() == 1 && self.parts[0].len() == self.rank && self.rank >= 2
    }

    /// The part index containing `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode >= rank` (partitions always cover `0..rank`).
    pub fn part_of(&self, mode: usize) -> usize {
        self.parts
            .iter()
            .position(|p| p.contains(&mode))
            .unwrap_or_else(|| panic!("mode {mode} out of range for rank {}", self.rank))
    }

    /// All mode permutations `σ` that permute only within parts — the
    /// set `S_T` of the paper (§4.1). The identity is always included.
    pub fn permutations(&self) -> Vec<Vec<usize>> {
        let mut result = vec![vec![usize::MAX; self.rank]];
        for part in &self.parts {
            let part_perms = permutations_of(part);
            let mut next = Vec::with_capacity(result.len() * part_perms.len());
            for base in &result {
                for pp in &part_perms {
                    let mut combined = base.clone();
                    for (slot, &src) in part.iter().zip(pp.iter()) {
                        combined[*slot] = src;
                    }
                    next.push(combined);
                }
            }
            result = next;
        }
        result
    }

    /// Returns `true` if `perm` only permutes modes within parts (so the
    /// tensor is invariant under it).
    pub fn fixes(&self, perm: &[usize]) -> bool {
        perm.len() == self.rank
            && perm
                .iter()
                .enumerate()
                .all(|(dst, &src)| src < self.rank && self.part_of(dst) == self.part_of(src))
    }
}

fn permutations_of(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (k, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(k);
        for mut tail in permutations_of(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// A per-kernel declaration of which input tensors are symmetric, and
/// how — the "map of input tensors that are known to be symmetric and
/// the partitions that represent their symmetries" of §4.
///
/// # Examples
///
/// ```
/// use systec_core::{SymmetryPartition, SymmetrySpec};
///
/// let spec = SymmetrySpec::new()
///     .with_full("A", 3)
///     .with_partition("T", SymmetryPartition::from_parts(vec![vec![0], vec![1, 2]]).unwrap());
/// assert!(spec.partition("A").unwrap().is_full());
/// assert!(spec.partition("x").is_none());
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SymmetrySpec {
    map: HashMap<String, SymmetryPartition>,
}

impl SymmetrySpec {
    /// An empty spec (no tensor is symmetric).
    pub fn new() -> Self {
        SymmetrySpec::default()
    }

    /// Declares `name` fully symmetric with the given rank.
    #[must_use]
    pub fn with_full(mut self, name: impl Into<String>, rank: usize) -> Self {
        self.map.insert(name.into(), SymmetryPartition::full(rank));
        self
    }

    /// Declares `name` partially symmetric with an explicit partition.
    #[must_use]
    pub fn with_partition(mut self, name: impl Into<String>, partition: SymmetryPartition) -> Self {
        self.map.insert(name.into(), partition);
        self
    }

    /// The partition declared for `name`, if any.
    pub fn partition(&self, name: &str) -> Option<&SymmetryPartition> {
        self.map.get(name)
    }

    /// Iterates over `(name, partition)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SymmetryPartition)> {
        let mut pairs: Vec<(&str, &SymmetryPartition)> =
            self.map.iter().map(|(k, v)| (k.as_str(), v)).collect();
        pairs.sort_by_key(|(k, _)| *k);
        pairs.into_iter()
    }

    /// The declared tensor names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.map.keys().map(String::as_str).collect();
        names.sort();
        names
    }

    /// Returns `true` if no tensor is declared symmetric.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_partition_permutation_count() {
        assert_eq!(SymmetryPartition::full(1).permutations().len(), 1);
        assert_eq!(SymmetryPartition::full(2).permutations().len(), 2);
        assert_eq!(SymmetryPartition::full(4).permutations().len(), 24);
    }

    #[test]
    fn trivial_partition_only_identity() {
        let t = SymmetryPartition::trivial(3);
        assert_eq!(t.permutations(), vec![vec![0, 1, 2]]);
        assert!(!t.is_nontrivial());
        assert!(!t.is_full());
    }

    #[test]
    fn partial_partition_permutations() {
        // {{0, 1}, {2, 3}}: 2 * 2 = 4 permutations.
        let p = SymmetryPartition::from_parts(vec![vec![0, 1], vec![2, 3]]).unwrap();
        let perms = p.permutations();
        assert_eq!(perms.len(), 4);
        assert!(perms.contains(&vec![0, 1, 2, 3]));
        assert!(perms.contains(&vec![1, 0, 3, 2]));
        assert!(!perms.contains(&vec![2, 1, 0, 3]));
    }

    #[test]
    fn from_parts_validates() {
        assert!(SymmetryPartition::from_parts(vec![vec![0, 1], vec![1]]).is_none()); // overlap
        assert!(SymmetryPartition::from_parts(vec![vec![0, 2]]).is_none()); // gap
        assert!(SymmetryPartition::from_parts(vec![vec![0], vec![]]).is_none()); // empty part
        assert!(SymmetryPartition::from_parts(vec![vec![1, 0]]).is_some());
    }

    #[test]
    fn part_of_and_fixes() {
        let p = SymmetryPartition::from_parts(vec![vec![0, 1], vec![2]]).unwrap();
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(2), 1);
        assert!(p.fixes(&[1, 0, 2]));
        assert!(!p.fixes(&[2, 1, 0]));
        assert!(!p.fixes(&[0, 1]));
    }

    #[test]
    fn permutations_are_valid_perms() {
        let p = SymmetryPartition::full(3);
        for perm in p.permutations() {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            assert!(p.fixes(&perm));
        }
    }

    #[test]
    fn spec_builders() {
        let spec = SymmetrySpec::new().with_full("A", 2);
        assert_eq!(spec.names(), vec!["A"]);
        assert!(!spec.is_empty());
        assert!(SymmetrySpec::new().is_empty());
    }
}
