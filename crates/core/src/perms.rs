//! Equivalence groups (Definition 4.1) and unique symmetry groups
//! (Definition 4.2) over the chain of permutable indices.

use systec_ir::{CmpOp, Cond, Index};

/// An equivalence group `E` over the ordered permutable indices
/// `p_1 ≤ … ≤ p_n`: a partition of chain positions into *consecutive
/// runs* of equal indices — the tensor generalization of a diagonal.
///
/// With the monotone chain enforced, the only equivalence groups a
/// coordinate can satisfy are run-structured (if `p_1 = p_3` then
/// necessarily `p_1 = p_2 = p_3`), so there are exactly `2^(n-1)` of
/// them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EquivalenceGroup {
    /// `classes[m]` is the run id of chain position `m`; nondecreasing,
    /// starting at 0, stepping by at most 1.
    classes: Vec<usize>,
}

impl EquivalenceGroup {
    /// Builds a group from the "equal to predecessor" bit per adjacent
    /// pair (`merges.len() == n - 1`).
    pub fn from_merges(merges: &[bool]) -> Self {
        let mut classes = Vec::with_capacity(merges.len() + 1);
        let mut class = 0usize;
        classes.push(0);
        for &merged in merges {
            if !merged {
                class += 1;
            }
            classes.push(class);
        }
        EquivalenceGroup { classes }
    }

    /// The number of chain positions.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The run id of chain position `m`.
    pub fn class_of(&self, m: usize) -> usize {
        self.classes[m]
    }

    /// The number of runs.
    pub fn n_classes(&self) -> usize {
        self.classes.last().map_or(0, |c| c + 1)
    }

    /// Returns `true` if every index is in its own run (the off-diagonal
    /// case).
    pub fn all_distinct(&self) -> bool {
        self.n_classes() == self.len()
    }

    /// Returns `true` if any run has at least two indices (the coordinate
    /// lies on some diagonal).
    pub fn on_diagonal(&self) -> bool {
        !self.all_distinct()
    }

    /// The runtime condition selecting exactly this group, as a
    /// conjunction over adjacent chain pairs: `p_m == p_{m+1}` within a
    /// run, `p_m != p_{m+1}` across runs (the enclosing chain `≤` makes
    /// `!=` equivalent to `<`).
    pub fn condition(&self, chain: &[Index]) -> Cond {
        let conjuncts = (0..chain.len().saturating_sub(1)).map(|m| {
            let op = if self.classes[m] == self.classes[m + 1] { CmpOp::Eq } else { CmpOp::Ne };
            Cond::Cmp(op, chain[m].clone(), chain[m + 1].clone())
        });
        Cond::and(conjuncts)
    }

    /// The sizes of the runs, in order (e.g. `[2, 1]` for `{(p1=p2),(p3)}`).
    pub fn run_lengths(&self) -> Vec<usize> {
        let mut lens = vec![0usize; self.n_classes()];
        for &c in &self.classes {
            lens[c] += 1;
        }
        lens
    }
}

/// Enumerates all `2^(n-1)` equivalence groups of an `n`-index chain,
/// from all-distinct to all-equal.
///
/// # Examples
///
/// ```
/// use systec_core::equivalence_groups;
///
/// let groups = equivalence_groups(3);
/// assert_eq!(groups.len(), 4);
/// assert!(groups[0].all_distinct());
/// assert_eq!(groups.last().unwrap().n_classes(), 1);
/// ```
pub fn equivalence_groups(n: usize) -> Vec<EquivalenceGroup> {
    if n == 0 {
        return vec![EquivalenceGroup { classes: Vec::new() }];
    }
    let bits = n - 1;
    (0..(1usize << bits))
        .map(|mask| {
            let merges: Vec<bool> = (0..bits).map(|b| mask & (1 << b) != 0).collect();
            EquivalenceGroup::from_merges(&merges)
        })
        .collect()
}

/// The unique symmetry group `S_P|E` (Definition 4.2): permutations of
/// the chain positions, deduplicated modulo the equivalence group (two
/// permutations that place equal indices in the same positions are the
/// same assignment).
///
/// Each permutation is returned as `σ` with `σ[m] = source position`,
/// i.e. the substitution `p_m ↦ p_{σ[m]}`.
///
/// # Examples
///
/// ```
/// use systec_core::{equivalence_groups, unique_symmetry_group};
///
/// let groups = equivalence_groups(3);
/// // All distinct: all 3! permutations are unique.
/// assert_eq!(unique_symmetry_group(&groups[0]).len(), 6);
/// // p1 = p2: 3!/2! = 3 unique permutations.
/// assert_eq!(unique_symmetry_group(&groups[1]).len(), 3);
/// // All equal: only the identity.
/// assert_eq!(unique_symmetry_group(&groups[3]).len(), 1);
/// ```
pub fn unique_symmetry_group(group: &EquivalenceGroup) -> Vec<Vec<usize>> {
    let n = group.len();
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut seen: Vec<Vec<usize>> = Vec::new();
    for perm in all_permutations(n) {
        let key: Vec<usize> = perm.iter().map(|&src| group.class_of(src)).collect();
        if !seen.contains(&key) {
            seen.push(key);
            out.push(perm);
        }
    }
    out
}

fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    loop {
        out.push(current.clone());
        let Some(i) = (0..n.saturating_sub(1)).rev().find(|&i| current[i] < current[i + 1]) else {
            break;
        };
        let j = (i + 1..n).rev().find(|&j| current[j] > current[i]).expect("by choice of i");
        current.swap(i, j);
        current[i + 1..].reverse();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn groups_count_is_power_of_two() {
        assert_eq!(equivalence_groups(1).len(), 1);
        assert_eq!(equivalence_groups(2).len(), 2);
        assert_eq!(equivalence_groups(4).len(), 8);
        assert_eq!(equivalence_groups(5).len(), 16);
    }

    #[test]
    fn group_conditions_match_paper_mttkrp() {
        // P = (i, k, l): the four groups of §4.3.
        let chain = [idx("i"), idx("k"), idx("l")];
        let conds: Vec<String> =
            equivalence_groups(3).iter().map(|g| g.condition(&chain).to_string()).collect();
        assert!(conds.contains(&"i != k && k != l".to_string()));
        assert!(conds.contains(&"i == k && k != l".to_string()));
        assert!(conds.contains(&"i != k && k == l".to_string()));
        assert!(conds.contains(&"i == k && k == l".to_string()));
    }

    #[test]
    fn unique_group_sizes_follow_multinomials() {
        // For n = 4: runs [2, 2] -> 4!/(2!2!) = 6; runs [3, 1] -> 4.
        for g in equivalence_groups(4) {
            let expected: usize =
                factorial(4) / g.run_lengths().iter().map(|&l| factorial(l)).product::<usize>();
            assert_eq!(unique_symmetry_group(&g).len(), expected, "group {g:?}");
        }
    }

    #[test]
    fn unique_group_matches_paper_example() {
        // §4.3: E = {(i = k), (l)} has S_P|E = {(1,2,3), (1,3,2), (3,1,2)}
        // in 1-based notation.
        let g = EquivalenceGroup::from_merges(&[true, false]);
        let perms = unique_symmetry_group(&g);
        let one_based: Vec<Vec<usize>> =
            perms.iter().map(|p| p.iter().map(|&x| x + 1).collect()).collect();
        assert_eq!(one_based, vec![vec![1, 2, 3], vec![1, 3, 2], vec![3, 1, 2]]);
    }

    #[test]
    fn run_lengths() {
        let g = EquivalenceGroup::from_merges(&[true, false, true]);
        assert_eq!(g.run_lengths(), vec![2, 2]);
        assert_eq!(g.n_classes(), 2);
        assert!(g.on_diagonal());
    }

    #[test]
    fn empty_and_single_chains() {
        assert_eq!(equivalence_groups(0).len(), 1);
        let g1 = &equivalence_groups(1)[0];
        assert!(g1.all_distinct());
        assert_eq!(unique_symmetry_group(g1), vec![vec![0]]);
        assert_eq!(g1.condition(&[idx("i")]), systec_ir::Cond::True);
    }

    fn factorial(n: usize) -> usize {
        (1..=n).product()
    }
}
