//! The optimization passes of §4.2, each an independent, semantics-
//! preserving program transform.
//!
//! | § | Pass | Entry point |
//! |---|------|-------------|
//! | 4.2.1 | Common tensor access elimination | [`access_cse`] |
//! | 4.2.2 | Restrict output to canonical triangle | [`visible_output`] |
//! | 4.2.3 | Concordize tensors | [`concordize`] |
//! | 4.2.4 | Consolidate conditional blocks | [`consolidate`] |
//! | 4.2.5 | Simplicial lookup table | [`lookup_table`] |
//! | 4.2.6 | Group assignments across branches | [`group_branches`] |
//! | 4.2.7 | Distributive assignment grouping | [`distribute`] |
//! | 4.2.8 | Workspace transformation | [`workspace`] |
//! | 4.2.9 | Diagonal splitting | [`diagonal_split`] |
//!
//! The paper performs these at the level of sparse tensor computation in
//! Finch IR, *before* Finch lowers further, because downstream compilers
//! cannot see through sparse iterators; the same holds here — the passes
//! run before `systec-exec` lowers the program.

mod access_cse;
mod concordize;
mod consolidate;
mod diagonal_split;
mod distribute;
mod group_branches;
mod licm;
mod lookup_table;
mod visible_output;
mod workspace;

pub use access_cse::access_cse;
pub use concordize::concordize;
pub use consolidate::consolidate;
pub use diagonal_split::diagonal_split;
pub use distribute::distribute;
pub use group_branches::group_branches;
pub use licm::licm;
pub use lookup_table::lookup_table;
pub use visible_output::{replication_nest, visible_output, VisibleOutputResult};
pub use workspace::workspace;
