//! §4.2.4 Consolidate conditional blocks: merge `if`-blocks with equal
//! bodies into one block guarded by the disjunction of their conditions.

use systec_ir::{Cond, Stmt};
use systec_rewrite::postwalk;

/// Merges sibling conditional blocks with identical bodies.
///
/// # Examples
///
/// ```
/// use systec_core::passes::consolidate;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let body = assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]));
/// let program = Stmt::Block(vec![
///     Stmt::guarded(eq("i", "j"), body.clone()),
///     Stmt::guarded(lt("i", "j"), body),
/// ]);
/// let out = consolidate(program);
/// assert!(out.to_string().starts_with("if i == j || i < j:"), "{out}");
/// ```
pub fn consolidate(program: Stmt) -> Stmt {
    postwalk(program, &|s: &Stmt| match s {
        Stmt::Block(stmts) => merge_blocks(stmts).map(Stmt::block),
        _ => None,
    })
}

fn merge_blocks(stmts: &[Stmt]) -> Option<Vec<Stmt>> {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut changed = false;
    for stmt in stmts {
        let Stmt::If { cond, body } = stmt else {
            out.push(stmt.clone());
            continue;
        };
        // Find an earlier conditional with the same body.
        let merged = out.iter_mut().find_map(|prev| match prev {
            Stmt::If { cond: pc, body: pb } if pb == body => Some(pc),
            _ => None,
        });
        match merged {
            Some(pc) => {
                *pc = Cond::or([pc.clone(), cond.clone()]);
                changed = true;
            }
            None => out.push(stmt.clone()),
        }
    }
    changed.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn body() -> Stmt {
        assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]))
    }

    #[test]
    fn equal_bodies_merge_with_or() {
        let program = Stmt::Block(vec![
            Stmt::guarded(eq("i", "j"), body()),
            Stmt::guarded(lt("i", "j"), body()),
        ]);
        let out = consolidate(program);
        assert_eq!(out.to_string(), "if i == j || i < j:\n  y[i] += A[i, j] * x[j]");
    }

    #[test]
    fn different_bodies_stay_separate() {
        let other = assign(access("z", ["i"]), lit(1.0));
        let program = Stmt::Block(vec![
            Stmt::guarded(eq("i", "j"), body()),
            Stmt::guarded(lt("i", "j"), other),
        ]);
        let out = consolidate(program.clone());
        assert_eq!(out, program);
    }

    #[test]
    fn three_way_merge() {
        let program = Stmt::Block(vec![
            Stmt::guarded(eq("i", "j"), body()),
            Stmt::guarded(lt("i", "j"), body()),
            Stmt::guarded(gt("i", "j"), body()),
        ]);
        let out = consolidate(program);
        assert!(out.to_string().starts_with("if i == j || i < j || i > j:"), "{out}");
    }

    #[test]
    fn non_adjacent_blocks_merge() {
        let other = assign(access("z", ["i"]), lit(1.0));
        let program = Stmt::Block(vec![
            Stmt::guarded(eq("i", "j"), body()),
            other.clone(),
            Stmt::guarded(lt("i", "j"), body()),
        ]);
        let out = consolidate(program);
        let printed = out.to_string();
        assert!(printed.contains("if i == j || i < j"), "{printed}");
        assert!(printed.contains("z[i] += 1"), "{printed}");
    }

    #[test]
    fn merges_mttkrp_diagonal_blocks() {
        // The two single-equality MTTKRP blocks share the same body after
        // distribution; Listing 7 lines 12 show the merged condition.
        let b = Stmt::block([
            assign(
                access("C", ["i", "j"]),
                mul([
                    access("A", ["i", "k", "l"]),
                    access("B", ["k", "j"]),
                    access("B", ["l", "j"]),
                ]),
            ),
            assign(
                access("C", ["l", "j"]),
                mul([
                    access("A", ["i", "k", "l"]),
                    access("B", ["i", "j"]),
                    access("B", ["k", "j"]),
                ]),
            ),
        ]);
        let program = Stmt::Block(vec![
            Stmt::guarded(and([eq("i", "k"), ne("k", "l")]), b.clone()),
            Stmt::guarded(and([ne("i", "k"), eq("k", "l")]), b),
        ]);
        let out = consolidate(program);
        assert!(
            out.to_string().starts_with("if (i == k && k != l) || (i != k && k == l):"),
            "{out}"
        );
    }
}
