//! §4.2.7 Distributive assignment grouping: replace `N` equivalent
//! additions in a block with one addition scaled by `N`.
//!
//! This is the transform that cashes in *invisible output symmetry*
//! (§3.2.2): after normalization, the symmetrizer's equivalent
//! assignments to the *same* location are syntactically identical, and
//! `N` repeated `x += v` collapse to `x += N * v`. Idempotent reductions
//! (`min=`, `max=`) simply drop the duplicates.

use systec_ir::{AssignOp, BinOp, Expr, Stmt};
use systec_rewrite::postwalk;

/// Applies distributive assignment grouping everywhere in the program.
///
/// # Examples
///
/// ```
/// use systec_core::passes::distribute;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let a = assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]));
/// let program = Stmt::Block(vec![a.clone(), a]);
/// let out = distribute(program);
/// assert_eq!(out.to_string(), "y[i] += 2 * A[i, j] * x[j]");
/// ```
pub fn distribute(program: Stmt) -> Stmt {
    postwalk(program, &|s: &Stmt| match s {
        Stmt::Block(stmts) => {
            let grouped = group_block(stmts)?;
            Some(Stmt::block(grouped))
        }
        _ => None,
    })
}

/// Groups identical assignments in a block; returns `None` when nothing
/// changes (so the rewrite reaches a fixpoint).
///
/// When every statement is a *reducing* assignment (whose order within
/// the block is immaterial), duplicates are grouped globally; otherwise
/// only adjacent runs merge.
fn group_block(stmts: &[Stmt]) -> Option<Vec<Stmt>> {
    let reorderable =
        stmts.iter().all(|s| matches!(s, Stmt::Assign { op, .. } if *op != AssignOp::Overwrite));
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    let mut counts: Vec<f64> = Vec::new();
    let mut changed = false;
    for stmt in stmts {
        let existing = if reorderable {
            out.iter().position(|prev| prev == stmt)
        } else {
            out.last().filter(|prev| *prev == stmt).map(|_| out.len() - 1)
        };
        match existing {
            Some(at) => {
                counts[at] += 1.0;
                changed = true;
            }
            None => {
                out.push(stmt.clone());
                counts.push(1.0);
            }
        }
    }
    if !changed {
        return None;
    }
    Some(out.into_iter().zip(counts).map(|(s, n)| if n > 1.0 { scale(s, n) } else { s }).collect())
}

/// `x += v, x += v` → `x += 2 * v`; `x min= v, x min= v` → `x min= v`.
fn scale(stmt: Stmt, factor: f64) -> Stmt {
    let Stmt::Assign { lhs, op, rhs } = stmt else {
        unreachable!("scale is only called on assignments");
    };
    if op.is_idempotent() || op != AssignOp::Add {
        return Stmt::Assign { lhs, op, rhs };
    }
    Stmt::Assign { lhs, op, rhs: Expr::call(BinOp::Mul, [Expr::Literal(factor), rhs]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn a() -> Stmt {
        assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]))
    }

    #[test]
    fn two_duplicates_become_factor_two() {
        let out = distribute(Stmt::Block(vec![a(), a()]));
        assert_eq!(out.to_string(), "y[i] += 2 * A[i, j] * x[j]");
    }

    #[test]
    fn three_duplicates_become_factor_three() {
        let out = distribute(Stmt::Block(vec![a(), a(), a()]));
        assert_eq!(out.to_string(), "y[i] += 3 * A[i, j] * x[j]");
    }

    #[test]
    fn distinct_assignments_untouched() {
        let b = assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])]));
        let block = Stmt::Block(vec![a(), b.clone()]);
        let out = distribute(block.clone());
        assert_eq!(out, block);
    }

    #[test]
    fn mttkrp_listing6_block_collapses() {
        // Lines 5–10 of Listing 6: three pairs of duplicates.
        let c_i = assign(
            access("C", ["i", "j"]),
            mul([access("A", ["i", "k", "l"]), access("B", ["k", "j"]), access("B", ["l", "j"])]),
        );
        let c_k = assign(
            access("C", ["k", "j"]),
            mul([access("A", ["i", "k", "l"]), access("B", ["i", "j"]), access("B", ["l", "j"])]),
        );
        let c_l = assign(
            access("C", ["l", "j"]),
            mul([access("A", ["i", "k", "l"]), access("B", ["i", "j"]), access("B", ["k", "j"])]),
        );
        let block = Stmt::Block(vec![c_i.clone(), c_i, c_k.clone(), c_k, c_l.clone(), c_l]);
        let out = distribute(block);
        let printed = out.to_string();
        assert_eq!(printed.matches("+= 2 *").count(), 3, "{printed}");
    }

    #[test]
    fn idempotent_min_drops_duplicates_without_factor() {
        let m = assign_op(
            access("y", ["i"]),
            systec_ir::AssignOp::Min,
            add([access("A", ["i", "j"]), access("x", ["j"])]),
        );
        let out = distribute(Stmt::Block(vec![m.clone(), m.clone()]));
        assert_eq!(out, m);
    }

    #[test]
    fn grouping_applies_under_conditionals() {
        let s = Stmt::guarded(lt("i", "j"), Stmt::Block(vec![a(), a()]));
        let out = distribute(s);
        assert!(out.to_string().contains("2 *"), "{out}");
    }
}
