//! §4.2.5 Simplicial lookup table: merge conditional blocks that differ
//! only by a constant factor, selecting the factor from a table indexed
//! by the pattern of equal indices.
//!
//! After distributive grouping, the off-diagonal block of a symmetric
//! kernel carries factor `n!/1` while each diagonal block carries a
//! smaller multinomial factor. When the remaining code is otherwise
//! identical, one block with a table lookup replaces them all.

use systec_ir::{AssignOp, BinOp, CmpOp, Cond, Expr, Index, Lhs, Stmt};
use systec_rewrite::postwalk;

/// Merges factor-only-different conditional blocks into one block with a
/// simplicial lookup table. `chain` is the canonical order of the
/// permutable indices; table indices are built from the adjacent
/// equality pattern `Σ 2^m · (p_m == p_{m+1})`.
///
/// # Examples
///
/// ```
/// use systec_core::passes::lookup_table;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let body = |f: f64| assign(access("y", ["i"]), mul([lit(f), access("A", ["i", "j"]).into(), access("x", ["j"]).into()]));
/// let p = Stmt::Block(vec![
///     Stmt::guarded(ne("i", "j"), body(2.0)),
///     Stmt::guarded(eq("i", "j"), body(1.0)),
/// ]);
/// let out = lookup_table(p, &[idx("i"), idx("j")]);
/// let printed = out.to_string();
/// assert!(printed.contains("[2, 1][(i == j)]"), "{printed}");
/// ```
pub fn lookup_table(program: Stmt, chain: &[Index]) -> Stmt {
    if chain.len() < 2 {
        return program;
    }
    postwalk(program, &|s: &Stmt| match s {
        Stmt::Block(stmts) => merge(stmts, chain).map(Stmt::block),
        _ => None,
    })
}

/// A conditional block decomposed into equality patterns, a factor, and
/// the factor-stripped body.
struct Candidate {
    patterns: Vec<usize>,
    factor: f64,
    stripped: Vec<(Lhs, AssignOp, Expr)>,
    cond: Cond,
}

fn merge(stmts: &[Stmt], chain: &[Index]) -> Option<Vec<Stmt>> {
    let mut candidates: Vec<Candidate> = Vec::new();
    for stmt in stmts {
        candidates.push(candidate(stmt, chain)?);
    }
    if candidates.len() < 2 {
        return None;
    }
    // All stripped bodies must agree.
    let first = &candidates[0];
    if candidates[1..].iter().any(|c| c.stripped != first.stripped) {
        return None;
    }
    // Factors must actually differ somewhere, or this is consolidate's job.
    if candidates.iter().all(|c| c.factor == first.factor) {
        return None;
    }
    let bits = chain.len() - 1;
    let mut table = vec![0.0; 1 << bits];
    for c in &candidates {
        for &p in &c.patterns {
            table[p] = c.factor;
        }
    }
    let index_expr = pattern_index_expr(chain);
    let factor = Expr::Lookup { table, index: Box::new(index_expr) };
    let assigns: Vec<Stmt> = first
        .stripped
        .iter()
        .map(|(lhs, op, rest)| Stmt::Assign {
            lhs: lhs.clone(),
            op: *op,
            rhs: Expr::call(BinOp::Mul, [factor.clone(), rest.clone()]),
        })
        .collect();
    let cond = Cond::or(candidates.iter().map(|c| c.cond.clone()));
    Some(vec![Stmt::guarded(cond, Stmt::block(assigns))])
}

fn candidate(stmt: &Stmt, chain: &[Index]) -> Option<Candidate> {
    let Stmt::If { cond, body } = stmt else {
        return None;
    };
    let patterns = cond_patterns(cond, chain)?;
    let assigns: Vec<&Stmt> = match body.as_ref() {
        Stmt::Block(ss) if ss.iter().all(|s| matches!(s, Stmt::Assign { .. })) => {
            ss.iter().collect()
        }
        a @ Stmt::Assign { .. } => vec![a],
        _ => return None,
    };
    let mut factor: Option<f64> = None;
    let mut stripped = Vec::new();
    for a in assigns {
        let Stmt::Assign { lhs, op, rhs } = a else { unreachable!("filtered above") };
        let (f, rest) = strip_factor(rhs);
        match factor {
            Some(existing) if existing != f => return None,
            _ => factor = Some(f),
        }
        stripped.push((lhs.clone(), *op, rest));
    }
    Some(Candidate { patterns, factor: factor?, stripped, cond: cond.clone() })
}

/// Splits `k * rest` into `(k, rest)`; plain expressions have factor 1.
fn strip_factor(rhs: &Expr) -> (f64, Expr) {
    match rhs {
        Expr::Call { op: BinOp::Mul, args } => match args.as_slice() {
            [Expr::Literal(k), rest @ ..] if !rest.is_empty() => {
                (*k, Expr::call(BinOp::Mul, rest.to_vec()))
            }
            _ => (1.0, rhs.clone()),
        },
        _ => (1.0, rhs.clone()),
    }
}

/// Extracts the adjacent-equality bitmask(s) a condition selects, or
/// `None` if the condition is not a (disjunction of) complete adjacent
/// Eq/Ne patterns over the chain.
fn cond_patterns(cond: &Cond, chain: &[Index]) -> Option<Vec<usize>> {
    let disjuncts = match cond {
        Cond::Or(cs) => cs.clone(),
        other => vec![other.clone()],
    };
    let bits = chain.len() - 1;
    let mut out = Vec::new();
    for d in disjuncts {
        let mut mask = 0usize;
        let mut seen = vec![false; bits];
        for conj in d.conjuncts() {
            let Cond::Cmp(op, a, b) = conj else { return None };
            let m = adjacent_pair(&a, &b, chain)?;
            match op {
                CmpOp::Eq => mask |= 1 << m,
                CmpOp::Ne => {}
                _ => return None,
            }
            seen[m] = true;
        }
        if !seen.iter().all(|&s| s) {
            return None;
        }
        out.push(mask);
    }
    Some(out)
}

fn adjacent_pair(a: &Index, b: &Index, chain: &[Index]) -> Option<usize> {
    let pa = chain.iter().position(|c| c == a)?;
    let pb = chain.iter().position(|c| c == b)?;
    (pb == pa + 1).then_some(pa)
}

/// Builds `Σ 2^m · (p_m == p_{m+1})` over the chain.
fn pattern_index_expr(chain: &[Index]) -> Expr {
    let terms: Vec<Expr> = chain
        .windows(2)
        .enumerate()
        .map(|(m, w)| {
            let cmp = Expr::CmpVal { op: CmpOp::Eq, lhs: w[0].clone(), rhs: w[1].clone() };
            if m == 0 {
                cmp
            } else {
                Expr::call(BinOp::Mul, [Expr::Literal((1u64 << m) as f64), cmp])
            }
        })
        .collect();
    if terms.len() == 1 {
        terms.into_iter().next().expect("nonempty")
    } else {
        Expr::call(BinOp::Add, terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn chain3() -> Vec<Index> {
        vec![idx("i"), idx("k"), idx("l")]
    }

    fn body(f: f64, out: &str) -> Stmt {
        assign(
            access("C", [out, "j"]),
            mul([lit(f), access("A", ["i", "k", "l"]).into(), access("B", ["i", "j"]).into()]),
        )
    }

    #[test]
    fn paper_style_three_block_merge() {
        // §4.2.5: factor 2 off-diagonal, factor 1 on single diagonals.
        let p = Stmt::Block(vec![
            Stmt::guarded(and([ne("i", "k"), ne("k", "l")]), body(2.0, "l")),
            Stmt::guarded(
                or([and([ne("i", "k"), eq("k", "l")]), and([eq("i", "k"), ne("k", "l")])]),
                body(1.0, "l"),
            ),
        ]);
        let out = lookup_table(p, &chain3());
        let printed = out.to_string();
        assert!(printed.contains("[2, 1, 1, 0]"), "{printed}");
        assert!(printed.contains("(i == k)"), "{printed}");
        assert!(printed.contains("2 * (k == l)"), "{printed}");
    }

    #[test]
    fn two_index_chain() {
        let b = |f: f64| {
            assign(
                access("y", ["i"]),
                mul([lit(f), access("A", ["i", "j"]).into(), access("x", ["j"]).into()]),
            )
        };
        let p = Stmt::Block(vec![
            Stmt::guarded(ne("i", "j"), b(2.0)),
            Stmt::guarded(eq("i", "j"), b(1.0)),
        ]);
        let out = lookup_table(p, &[idx("i"), idx("j")]);
        assert!(out.to_string().contains("[2, 1][(i == j)]"), "{out}");
    }

    #[test]
    fn different_bodies_do_not_merge() {
        let p = Stmt::Block(vec![
            Stmt::guarded(ne("i", "j"), assign(access("y", ["i"]), lit(1.0))),
            Stmt::guarded(eq("i", "j"), assign(access("z", ["i"]), lit(1.0))),
        ]);
        assert_eq!(lookup_table(p.clone(), &[idx("i"), idx("j")]), p);
    }

    #[test]
    fn equal_factors_left_for_consolidate() {
        let b = || assign(access("y", ["i"]), access("A", ["i", "j"]).into());
        let p =
            Stmt::Block(vec![Stmt::guarded(ne("i", "j"), b()), Stmt::guarded(eq("i", "j"), b())]);
        assert_eq!(lookup_table(p.clone(), &[idx("i"), idx("j")]), p);
    }

    #[test]
    fn incomplete_pattern_is_rejected() {
        // Condition covering only one of the two adjacent pairs.
        let p = Stmt::Block(vec![
            Stmt::guarded(ne("i", "k"), body(2.0, "l")),
            Stmt::guarded(eq("i", "k"), body(1.0, "l")),
        ]);
        assert_eq!(lookup_table(p.clone(), &chain3()), p);
    }

    #[test]
    fn short_chain_is_a_no_op() {
        let p = Stmt::Block(vec![Stmt::guarded(eq("i", "j"), body(1.0, "l"))]);
        assert_eq!(lookup_table(p.clone(), &[idx("i")]), p);
    }
}
