//! §4.2.2 Restrict computation of the output to its canonical triangle.
//!
//! *Visible* output symmetry (§3.2.1) shows up after symmetrization as
//! groups of assignments with equal right-hand sides whose output
//! subscripts are permutations of one another. This pass keeps only the
//! assignment writing the canonical coordinate — halving (or better) the
//! compute — and emits a separate replication loop nest that copies the
//! canonical triangle to the other triangles afterwards (kept separate
//! because the main loop updates each location many times, §4.2.2).

use std::collections::BTreeSet;

use systec_ir::{Access, Cond, Index, Lhs, Stmt};

use crate::SymmetryPartition;

/// The result of the visible-output restriction.
#[derive(Clone, PartialEq, Debug)]
pub struct VisibleOutputResult {
    /// The main program, now writing only canonical output coordinates.
    pub program: Stmt,
    /// The post-processing loop nest replicating the canonical triangle,
    /// if any symmetry was found.
    pub replication: Option<Stmt>,
    /// The detected partition of the output's mode positions.
    pub partition: Option<SymmetryPartition>,
}

/// Detects visible output symmetry and restricts computation to the
/// output's canonical triangle.
///
/// `chain` is the canonical order of permutable indices (used to decide
/// which group member is the canonical one) and `loop_order` fixes the
/// replication nest's loop order.
pub fn visible_output(program: Stmt, chain: &[Index], loop_order: &[Index]) -> VisibleOutputResult {
    let mut detected: Vec<BTreeSet<usize>> = Vec::new();
    let mut out_access: Option<Access> = None;
    let rank = |i: &Index| {
        chain
            .iter()
            .position(|c| c == i)
            .unwrap_or_else(|| chain.len() + loop_order.iter().position(|c| c == i).unwrap_or(0))
    };
    let reduced = reduce(program, &rank, &mut detected, &mut out_access);
    let (Some(access), false) = (out_access, detected.is_empty()) else {
        return VisibleOutputResult { program: reduced, replication: None, partition: None };
    };

    // Merge overlapping varying-position sets into parts.
    let mut parts: Vec<BTreeSet<usize>> = Vec::new();
    for set in detected {
        let mut merged = set;
        parts.retain(|p| {
            if p.is_disjoint(&merged) {
                true
            } else {
                merged.extend(p.iter().copied());
                false
            }
        });
        parts.push(merged);
    }
    let mut all_parts: Vec<Vec<usize>> =
        parts.iter().map(|p| p.iter().copied().collect()).collect();
    for m in 0..access.indices.len() {
        if !parts.iter().any(|p| p.contains(&m)) {
            all_parts.push(vec![m]);
        }
    }
    let partition = SymmetryPartition::from_parts(all_parts)
        .expect("parts are disjoint and cover the output rank by construction");

    let replication = build_replication(&access, &partition, loop_order);
    VisibleOutputResult {
        program: reduced,
        replication: Some(replication),
        partition: Some(partition),
    }
}

/// Walks the tree, reducing groups of permuted-output assignments inside
/// blocks.
fn reduce(
    stmt: Stmt,
    rank: &impl Fn(&Index) -> usize,
    detected: &mut Vec<BTreeSet<usize>>,
    out_access: &mut Option<Access>,
) -> Stmt {
    match stmt {
        Stmt::Block(stmts) => {
            if stmts.iter().all(|s| matches!(s, Stmt::Assign { .. })) {
                Stmt::block(reduce_block(stmts, rank, detected, out_access))
            } else {
                Stmt::Block(
                    stmts.into_iter().map(|s| reduce(s, rank, detected, out_access)).collect(),
                )
            }
        }
        other => other.map_children(&mut |s| reduce(s, rank, detected, out_access)),
    }
}

fn reduce_block(
    stmts: Vec<Stmt>,
    rank: &impl Fn(&Index) -> usize,
    detected: &mut Vec<BTreeSet<usize>>,
    out_access: &mut Option<Access>,
) -> Vec<Stmt> {
    let mut groups: Vec<Vec<Stmt>> = Vec::new();
    for stmt in stmts {
        let key_of = |s: &Stmt| {
            let Stmt::Assign { op, rhs, .. } = s else { unreachable!("assignments only") };
            (*op, rhs.clone())
        };
        let key = key_of(&stmt);
        match groups.iter_mut().find(|g| key_of(&g[0]) == key) {
            Some(g) => g.push(stmt),
            None => groups.push(vec![stmt]),
        }
    }
    let mut out = Vec::new();
    for group in groups {
        match reduce_group(&group, rank) {
            Some((canonical, varying)) => {
                if let Stmt::Assign { lhs: Lhs::Tensor(a), .. } = &canonical {
                    *out_access = Some(a.clone());
                }
                detected.push(varying);
                out.push(canonical);
            }
            None => out.extend(group),
        }
    }
    out
}

/// If the group's outputs are distinct permutations of one tuple with a
/// common tensor, returns the canonical member and the varying mode
/// positions.
fn reduce_group(
    group: &[Stmt],
    rank: &impl Fn(&Index) -> usize,
) -> Option<(Stmt, BTreeSet<usize>)> {
    if group.len() < 2 {
        return None;
    }
    let tuples: Vec<&Access> = group
        .iter()
        .map(|s| match s {
            Stmt::Assign { lhs: Lhs::Tensor(a), .. } => Some(a),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    let first = tuples[0];
    if tuples.iter().any(|a| a.tensor != first.tensor || a.rank() != first.rank()) {
        return None;
    }
    // All tuples must be distinct permutations of the same index multiset.
    fn multiset(a: &Access) -> Vec<&Index> {
        let mut v: Vec<&Index> = a.indices.iter().collect();
        v.sort();
        v
    }
    let base = multiset(first);
    if tuples.iter().any(|a| multiset(a) != base) {
        return None;
    }
    let distinct: BTreeSet<&Access> = tuples.iter().copied().collect();
    if distinct.len() != tuples.len() {
        return None;
    }
    let varying: BTreeSet<usize> = (0..first.rank())
        .filter(|&m| tuples.iter().any(|a| a.indices[m] != first.indices[m]))
        .collect();
    if varying.is_empty() {
        return None;
    }
    // The canonical member has its varying indices in ascending chain
    // order.
    let canonical_at = tuples.iter().position(|a| {
        let vals: Vec<usize> = varying.iter().map(|&m| rank(&a.indices[m])).collect();
        vals.windows(2).all(|w| w[0] <= w[1])
    })?;
    Some((group[canonical_at].clone(), varying))
}

/// Builds a replication nest for an output with the given mode
/// partition: for every non-identity permutation of the symmetric output
/// modes, copy from the canonical (ascending) source. Exposed for the
/// pipeline's einsum-level output-symmetry detection (SSYRK-style
/// kernels).
pub fn replication_nest(
    access: &Access,
    partition: &SymmetryPartition,
    loop_order: &[Index],
) -> Stmt {
    build_replication(access, partition, loop_order)
}

/// Builds the replication nest: for every non-identity permutation of the
/// symmetric output modes, copy from the canonical (ascending) source.
fn build_replication(access: &Access, partition: &SymmetryPartition, loop_order: &[Index]) -> Stmt {
    let out_indices: BTreeSet<&Index> = access.indices.iter().collect();
    let nest_order: Vec<Index> =
        loop_order.iter().filter(|i| out_indices.contains(i)).cloned().collect();
    let mut blocks = Vec::new();
    for perm in partition.permutations() {
        if perm.iter().enumerate().all(|(k, &p)| k == p) {
            continue;
        }
        // Source subscripts: position m reads the index at perm[m].
        let src = Access {
            tensor: access.tensor.clone(),
            indices: perm.iter().map(|&p| access.indices[p].clone()).collect(),
        };
        // Guard: the source must be canonical (ascending within each
        // part), and the target must not be (strictly descending
        // somewhere), so canonical coordinates keep their values.
        let mut conds = Vec::new();
        for part in partition.nontrivial_parts() {
            let mut modes: Vec<usize> = part.to_vec();
            modes.sort_unstable();
            for w in modes.windows(2) {
                conds.push(Cond::Cmp(
                    systec_ir::CmpOp::Le,
                    src.indices[w[0]].clone(),
                    src.indices[w[1]].clone(),
                ));
            }
        }
        // Exclude the already-canonical target (avoid a redundant self
        // copy): at least one adjacent pair out of order.
        let mut noncanon = Vec::new();
        for part in partition.nontrivial_parts() {
            let mut modes: Vec<usize> = part.to_vec();
            modes.sort_unstable();
            for w in modes.windows(2) {
                noncanon.push(Cond::Cmp(
                    systec_ir::CmpOp::Gt,
                    access.indices[w[0]].clone(),
                    access.indices[w[1]].clone(),
                ));
            }
        }
        conds.push(Cond::or(noncanon));
        blocks.push(Stmt::guarded(
            Cond::and(conds),
            Stmt::Assign {
                lhs: Lhs::Tensor(access.clone()),
                op: systec_ir::AssignOp::Overwrite,
                rhs: src.into(),
            },
        ));
    }
    Stmt::loops(nest_order, Stmt::block(blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    /// The SSYRK shape: C[i,j] += A[i,k] * A[j,k]; C[j,i] += same rhs.
    #[test]
    fn ssyrk_outputs_reduce_to_canonical() {
        let rhs = mul([access("A", ["i", "k"]), access("A", ["j", "k"])]);
        let program = Stmt::loops(
            [idx("i"), idx("j"), idx("k")],
            Stmt::Block(vec![
                assign(access("C", ["i", "j"]), rhs.clone()),
                assign(access("C", ["j", "i"]), rhs),
            ]),
        );
        let result = visible_output(program, &[], &[idx("i"), idx("j"), idx("k")]);
        let printed = result.program.to_string();
        assert_eq!(printed.matches("C[").count(), 1, "{printed}");
        assert!(printed.contains("C[i, j]"), "{printed}");
        let replication = result.replication.expect("replication emitted");
        let rp = replication.to_string();
        assert!(rp.contains("C[i, j] = C[j, i]"), "{rp}");
        assert!(rp.contains("if j <= i && i > j") || rp.contains("if j <= i && (i > j)"), "{rp}");
        let partition = result.partition.expect("partition detected");
        assert!(partition.is_full());
    }

    /// The TTM shape of Listing 2 → Listing 3: six assignments collapse
    /// to three canonical ones plus replication over (j, l).
    #[test]
    fn ttm_block_reduces_by_factor_two() {
        let a = |out: [&str; 3], b: &str| {
            assign(
                Access::new("C", out.iter().map(|s| Index::new(*s))),
                mul([access("A", ["j", "k", "l"]), access("B", [b, "i"])]),
            )
        };
        let program = Stmt::loops(
            [idx("j"), idx("k"), idx("l"), idx("i")],
            Stmt::Block(vec![
                a(["i", "j", "l"], "k"),
                a(["i", "l", "j"], "k"),
                a(["i", "j", "k"], "l"),
                a(["i", "k", "j"], "l"),
                a(["i", "k", "l"], "j"),
                a(["i", "l", "k"], "j"),
            ]),
        );
        let chain = [idx("j"), idx("k"), idx("l")];
        let result = visible_output(program, &chain, &[idx("j"), idx("k"), idx("l"), idx("i")]);
        assert_eq!(result.program.assignments().len(), 3);
        let printed = result.program.to_string();
        assert!(printed.contains("C[i, j, l]"), "{printed}");
        assert!(printed.contains("C[i, j, k]"), "{printed}");
        assert!(printed.contains("C[i, k, l]"), "{printed}");
        // Replication copies across modes 1 and 2 of C.
        let rp = result.replication.unwrap().to_string();
        assert!(rp.contains("= C["), "{rp}");
    }

    #[test]
    fn no_symmetry_leaves_program_alone() {
        let program = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::Block(vec![
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
            ]),
        );
        let result = visible_output(program.clone(), &[idx("i"), idx("j")], &[idx("i"), idx("j")]);
        assert_eq!(result.program, program);
        assert!(result.replication.is_none());
        assert!(result.partition.is_none());
    }

    #[test]
    fn duplicate_tuples_are_not_reduced() {
        // Two identical assignments are invisible symmetry (distribute's
        // job), not visible symmetry.
        let a = assign(
            access("C", ["i", "j"]),
            mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
        );
        let program = Stmt::Block(vec![a.clone(), a.clone()]);
        let result = visible_output(program.clone(), &[], &[idx("i"), idx("j"), idx("k")]);
        assert_eq!(result.program, program);
    }
}
