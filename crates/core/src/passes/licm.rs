//! Loop-invariant read motion: hoist tensor reads out of loops that do
//! not bind any of their subscripts.
//!
//! Finch performs this as part of lowering; since our executor interprets
//! the IR directly, the motion must happen at this level or invariant
//! reads are re-evaluated every iteration. The symmetric kernels benefit
//! in particular: SSYMV's second update `y[j] += A[i,j] * x[i]` reads
//! `x[i]`, which is invariant in the inner `j` loop.

use std::collections::BTreeSet;

use systec_ir::{Access, Expr, Index, Stmt};

/// Hoists reads whose subscripts are all bound by outer loops into
/// `let`s just inside the loop binding their deepest subscript.
///
/// # Examples
///
/// ```
/// use systec_core::passes::licm;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let p = Stmt::loops(
///     [idx("i"), idx("j")],
///     assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
/// );
/// let out = licm(p);
/// let printed = out.to_string();
/// // x[i] is bound once per i, outside the j loop.
/// assert!(printed.contains("let h_x = x[i]:\n    for j:"), "{printed}");
/// ```
pub fn licm(program: Stmt) -> Stmt {
    let mut counter = 0usize;
    walk(program, &mut BTreeSet::new(), &mut counter)
}

fn walk(stmt: Stmt, bound: &mut BTreeSet<Index>, counter: &mut usize) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } => {
            bound.insert(index.clone());
            let body = walk(*body, bound, counter);
            // Hoist reads that are fully bound here but sit under deeper
            // loops — excluding tensors the body writes (reading those is
            // order-sensitive).
            let mut written: Vec<String> = Vec::new();
            collect_written(&body, &mut written);
            let mut candidates: Vec<Access> = Vec::new();
            collect_hoistable(&body, bound, false, &mut candidates);
            candidates.retain(|a| !written.contains(&a.tensor.name));
            let mut body = body;
            let mut lets: Vec<(String, Access)> = Vec::new();
            for access in candidates {
                let name = if *counter == 0 {
                    format!("h_{}", access.tensor.display_name())
                } else {
                    format!("h_{}{}", access.tensor.display_name(), counter)
                };
                *counter += 1;
                body = substitute_access(body, &access, &name);
                lets.push((name, access));
            }
            for (name, access) in lets.into_iter().rev() {
                body = Stmt::Let { name, value: Expr::Access(access), body: Box::new(body) };
            }
            bound.remove(&index);
            Stmt::Loop { index, body: Box::new(body) }
        }
        other => other.map_children(&mut |s| walk(s, bound, counter)),
    }
}

fn collect_written(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_written(s, out);
            }
        }
        Stmt::Loop { body, .. }
        | Stmt::If { body, .. }
        | Stmt::Let { body, .. }
        | Stmt::Workspace { body, .. } => collect_written(body, out),
        Stmt::Assign { lhs, .. } => {
            if let systec_ir::Lhs::Tensor(a) = lhs {
                out.push(a.tensor.name.clone());
            }
        }
    }
}

/// Collects accesses under at least one inner loop whose subscripts are
/// all bound (and which therefore re-read the same element every inner
/// iteration).
fn collect_hoistable(
    stmt: &Stmt,
    bound: &BTreeSet<Index>,
    under_loop: bool,
    out: &mut Vec<Access>,
) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_hoistable(s, bound, under_loop, out);
            }
        }
        Stmt::Loop { body, .. } => collect_hoistable(body, bound, true, out),
        Stmt::If { body, .. } | Stmt::Workspace { body, .. } => {
            collect_hoistable(body, bound, under_loop, out)
        }
        Stmt::Let { value, body, .. } => {
            if under_loop {
                collect_exprs(value, bound, out);
            }
            collect_hoistable(body, bound, under_loop, out);
        }
        Stmt::Assign { rhs, .. } => {
            if under_loop {
                collect_exprs(rhs, bound, out);
            }
        }
    }
}

fn collect_exprs(expr: &Expr, bound: &BTreeSet<Index>, out: &mut Vec<Access>) {
    for access in expr.accesses() {
        let all_bound = access.indices.iter().all(|i| bound.contains(i));
        if all_bound && !out.contains(access) {
            out.push(access.clone());
        }
    }
}

/// Replaces reads of `access` under inner loops with the scalar `name`.
fn substitute_access(stmt: Stmt, access: &Access, name: &str) -> Stmt {
    fn subst_expr(expr: Expr, access: &Access, name: &str) -> Expr {
        match expr {
            Expr::Access(a) if a == *access => Expr::Scalar(name.to_string()),
            Expr::Call { op, args } => Expr::Call {
                op,
                args: args.into_iter().map(|e| subst_expr(e, access, name)).collect(),
            },
            Expr::Lookup { table, index } => {
                Expr::Lookup { table, index: Box::new(subst_expr(*index, access, name)) }
            }
            other => other,
        }
    }
    fn subst(stmt: Stmt, access: &Access, name: &str, under_loop: bool) -> Stmt {
        match stmt {
            Stmt::Block(ss) => {
                Stmt::Block(ss.into_iter().map(|s| subst(s, access, name, under_loop)).collect())
            }
            Stmt::Loop { index, body } => {
                Stmt::Loop { index, body: Box::new(subst(*body, access, name, true)) }
            }
            Stmt::If { cond, body } => {
                Stmt::If { cond, body: Box::new(subst(*body, access, name, under_loop)) }
            }
            Stmt::Workspace { name: w, init, body } => Stmt::Workspace {
                name: w,
                init,
                body: Box::new(subst(*body, access, name, under_loop)),
            },
            Stmt::Let { name: l, value, body } => Stmt::Let {
                name: l,
                value: if under_loop { subst_expr(value, access, name) } else { value },
                body: Box::new(subst(*body, access, name, under_loop)),
            },
            Stmt::Assign { lhs, op, rhs } => Stmt::Assign {
                lhs,
                op,
                rhs: if under_loop { subst_expr(rhs, access, name) } else { rhs },
            },
        }
    }
    subst(stmt, access, name, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn hoists_invariant_read_out_of_inner_loop() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
        );
        let printed = licm(p).to_string();
        assert!(printed.contains("let h_x = x[i]"), "{printed}");
        assert!(printed.contains("A[i, j] * h_x"), "{printed}");
    }

    #[test]
    fn does_not_hoist_varying_read() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        assert_eq!(licm(p.clone()), p);
    }

    #[test]
    fn innermost_reads_stay_put() {
        // Access is not under any loop deeper than its binding loop.
        let p = Stmt::loops([idx("i")], assign(access("y", ["i"]), access("x", ["i"]).into()));
        assert_eq!(licm(p.clone()), p);
    }

    #[test]
    fn hoists_from_let_values_too() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::Let {
                name: "t".into(),
                value: mul([access("x", ["i"]), access("A", ["i", "j"])]),
                body: Box::new(assign(access("y", ["j"]), scalar("t"))),
            },
        );
        let printed = licm(p).to_string();
        assert!(printed.contains("let h_x = x[i]"), "{printed}");
        assert!(printed.contains("h_x * A[i, j]"), "{printed}");
    }

    #[test]
    fn multiple_invariants_get_distinct_names() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(
                access("y", ["j"]),
                mul([access("x", ["i"]), access("z", ["i"]), access("A", ["i", "j"])]),
            ),
        );
        let printed = licm(p).to_string();
        assert!(printed.contains("let h_x = x[i]"), "{printed}");
        assert!(printed.contains("let h_z"), "{printed}");
    }

    #[test]
    fn scalar_zero_index_reads_hoist_to_outermost_loop() {
        // x[] (rank 0) is invariant everywhere; it hoists to the
        // outermost loop.
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(
                access("y", ["j"]),
                mul([access("c", [] as [&str; 0]), access("A", ["i", "j"])]),
            ),
        );
        let printed = licm(p).to_string();
        assert!(printed.contains("let h_c = c[]"), "{printed}");
    }
}
