//! §4.2.1 Common tensor access elimination: replace repeated reads of
//! the same tensor element with one `let`-bound scalar.
//!
//! After normalization, all reads of a fully symmetric tensor within a
//! conditional block are syntactically equal, so this pass cuts its
//! memory reads by `n!`. The paper notes this step is *required* before
//! Finch compilation — each access is an iterator, and redundant
//! accesses would force redundant iterator intersections; our executor
//! benefits the same way (one path probe instead of several).

use std::collections::HashMap;

use systec_ir::{Access, Expr, Stmt};
use systec_rewrite::postwalk;

/// Applies common tensor access elimination to every conditional block
/// and loop body.
///
/// # Examples
///
/// ```
/// use systec_core::passes::access_cse;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let block = Stmt::Block(vec![
///     assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
///     assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
/// ]);
/// let out = access_cse(block);
/// let printed = out.to_string();
/// assert!(printed.starts_with("let t_A"), "{printed}");
/// assert_eq!(printed.matches("A[i, j]").count(), 1, "{printed}");
/// ```
pub fn access_cse(program: Stmt) -> Stmt {
    postwalk(program, &|s: &Stmt| match s {
        Stmt::Block(stmts) => cse_block(stmts),
        _ => None,
    })
}

/// Finds accesses read two or more times across the block's assignment
/// right-hand sides, binds each to a scalar, and substitutes.
fn cse_block(stmts: &[Stmt]) -> Option<Stmt> {
    // Only transform blocks of plain assignments (the shape the
    // symmetrizer emits); blocks that already contain control flow have
    // been processed or are replication loops.
    if !stmts.iter().all(|s| matches!(s, Stmt::Assign { .. })) {
        return None;
    }
    let mut counts: Vec<(Access, usize)> = Vec::new();
    for stmt in stmts {
        let Stmt::Assign { rhs, .. } = stmt else { unreachable!("checked above") };
        for access in rhs.accesses() {
            match counts.iter_mut().find(|(a, _)| a == access) {
                Some((_, n)) => *n += 1,
                None => counts.push((access.clone(), 1)),
            }
        }
    }
    let repeated: Vec<Access> =
        counts.into_iter().filter(|(_, n)| *n >= 2).map(|(a, _)| a).collect();
    if repeated.is_empty() {
        return None;
    }
    // Name the scalars deterministically: t_<tensor>, t_<tensor>1, ...
    let mut names: HashMap<Access, String> = HashMap::new();
    let mut per_tensor: HashMap<String, usize> = HashMap::new();
    for access in &repeated {
        let base = access.tensor.display_name();
        let k = per_tensor.entry(base.clone()).or_insert(0);
        let name = if *k == 0 { format!("t_{base}") } else { format!("t_{base}{k}") };
        *k += 1;
        names.insert(access.clone(), name);
    }
    let rewritten: Vec<Stmt> = stmts
        .iter()
        .map(|stmt| {
            let Stmt::Assign { lhs, op, rhs } = stmt else { unreachable!("checked above") };
            Stmt::Assign { lhs: lhs.clone(), op: *op, rhs: substitute_accesses(rhs, &names) }
        })
        .collect();
    let mut body = Stmt::block(rewritten);
    for access in repeated.iter().rev() {
        body = Stmt::Let {
            name: names[access].clone(),
            value: Expr::Access(access.clone()),
            body: Box::new(body),
        };
    }
    Some(body)
}

fn substitute_accesses(expr: &Expr, names: &HashMap<Access, String>) -> Expr {
    match expr {
        Expr::Access(a) => match names.get(a) {
            Some(name) => Expr::Scalar(name.clone()),
            None => expr.clone(),
        },
        Expr::Call { op, args } => Expr::Call {
            op: *op,
            args: args.iter().map(|e| substitute_accesses(e, names)).collect(),
        },
        Expr::Lookup { table, index } => Expr::Lookup {
            table: table.clone(),
            index: Box::new(substitute_accesses(index, names)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn single_use_access_is_left_alone() {
        let block = Stmt::Block(vec![
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            assign(access("z", ["i"]), access("B", ["i"]).into()),
        ]);
        assert_eq!(access_cse(block.clone()), block);
    }

    #[test]
    fn repeated_access_is_bound_once() {
        let block = Stmt::Block(vec![
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
        ]);
        let printed = access_cse(block).to_string();
        assert!(printed.contains("let t_A = A[i, j]"), "{printed}");
        assert!(printed.contains("y[i] += t_A * x[j]"), "{printed}");
        assert!(printed.contains("y[j] += t_A * x[i]"), "{printed}");
    }

    #[test]
    fn multiple_repeated_accesses_get_distinct_names() {
        let block = Stmt::Block(vec![
            assign(
                access("C", ["i", "j"]),
                mul([access("A", ["i", "k"]), access("B", ["k", "j"])]),
            ),
            assign(
                access("C", ["j", "i"]),
                mul([access("A", ["i", "k"]), access("B", ["k", "j"])]),
            ),
        ]);
        let printed = access_cse(block).to_string();
        assert!(printed.contains("let t_A = A[i, k]"), "{printed}");
        assert!(printed.contains("let t_B = B[k, j]"), "{printed}");
    }

    #[test]
    fn same_tensor_different_subscripts_get_numbered_names() {
        let block = Stmt::Block(vec![
            assign(access("y", ["i"]), mul([access("B", ["k", "j"]), access("B", ["l", "j"])])),
            assign(access("y", ["k"]), mul([access("B", ["k", "j"]), access("B", ["l", "j"])])),
        ]);
        let printed = access_cse(block).to_string();
        assert!(printed.contains("let t_B = "), "{printed}");
        assert!(printed.contains("let t_B1 = "), "{printed}");
    }

    #[test]
    fn applies_inside_conditionals() {
        let s = Stmt::guarded(
            lt("i", "j"),
            Stmt::Block(vec![
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
            ]),
        );
        let printed = access_cse(s).to_string();
        assert!(printed.contains("if i < j:\n  let t_A"), "{printed}");
    }

    #[test]
    fn counts_multiple_uses_within_one_assignment() {
        // B[k, j] appearing twice in one product still gets bound.
        let block = Stmt::Block(vec![assign(
            access("y", ["k"]),
            mul([access("B", ["k", "j"]), access("B", ["k", "j"])]),
        )]);
        let printed = access_cse(block).to_string();
        assert!(printed.contains("let t_B"), "{printed}");
        assert!(printed.contains("t_B * t_B"), "{printed}");
    }
}
