//! §4.2.6 Group assignments across branches: when the same assignment
//! appears under several conditions, emit it once under the disjunction.
//!
//! The paper applies this only when the number of unique assignments
//! (after the earlier transforms) is smaller than the number of
//! conditional blocks — otherwise the restructuring adds blocks instead
//! of removing them. This implementation follows the same rule.

use systec_ir::{Cond, Stmt};
use systec_rewrite::postwalk;

/// Regroups assignments shared across sibling conditional blocks.
///
/// # Examples
///
/// The paper's §4.2.6 example — `y[i] += A[i,j] * x[j]` appears in both
/// the `i < j` and `i == j` branches:
///
/// ```
/// use systec_core::passes::group_branches;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let shared = assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]));
/// let extra = assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])]));
/// let program = Stmt::Block(vec![
///     Stmt::guarded(lt("i", "j"), Stmt::Block(vec![shared.clone(), extra])),
///     Stmt::guarded(eq("i", "j"), shared),
/// ]);
/// let out = group_branches(program);
/// let printed = out.to_string();
/// assert!(printed.contains("if i < j || i == j"), "{printed}");
/// ```
pub fn group_branches(program: Stmt) -> Stmt {
    postwalk(program, &|s: &Stmt| match s {
        Stmt::Block(stmts) => regroup(stmts),
        _ => None,
    })
}

fn regroup(stmts: &[Stmt]) -> Option<Stmt> {
    // Only fire on blocks made purely of conditional assignment groups.
    let mut branches: Vec<(Cond, Vec<Stmt>)> = Vec::new();
    for stmt in stmts {
        let Stmt::If { cond, body } = stmt else {
            return None;
        };
        let assigns = match body.as_ref() {
            Stmt::Block(inner) if inner.iter().all(|s| matches!(s, Stmt::Assign { .. })) => {
                inner.clone()
            }
            a @ Stmt::Assign { .. } => vec![a.clone()],
            _ => return None,
        };
        branches.push((cond.clone(), assigns));
    }
    if branches.len() < 2 {
        return None;
    }
    // Collect unique assignments with the conditions they appear under.
    let mut grouped: Vec<(Stmt, Vec<Cond>)> = Vec::new();
    for (cond, assigns) in &branches {
        for a in assigns {
            match grouped.iter_mut().find(|(s, _)| s == a) {
                Some((_, conds)) => conds.push(cond.clone()),
                None => grouped.push((a.clone(), vec![cond.clone()])),
            }
        }
    }
    // The paper's profitability rule: only restructure when some
    // assignment is shared across branches (fewer unique assignments
    // than assignment instances).
    if grouped.iter().all(|(_, conds)| conds.len() == 1) {
        return None;
    }
    let rebuilt: Vec<Stmt> =
        grouped.into_iter().map(|(assign, conds)| Stmt::guarded(Cond::or(conds), assign)).collect();
    Some(Stmt::block(rebuilt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn shared() -> Stmt {
        assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])]))
    }

    fn extra() -> Stmt {
        assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])]))
    }

    #[test]
    fn paper_example_shape() {
        let program = Stmt::Block(vec![
            Stmt::guarded(lt("i", "j"), Stmt::Block(vec![shared(), extra()])),
            Stmt::guarded(eq("i", "j"), shared()),
        ]);
        let out = group_branches(program);
        let printed = out.to_string();
        // Two blocks in, two statements out — but the shared assignment
        // is now written once.
        assert_eq!(printed.matches("y[i] += A[i, j] * x[j]").count(), 1, "{printed}");
        assert!(printed.contains("if i < j || i == j"), "{printed}");
        assert!(printed.contains("if i < j:\n  y[j] += A[i, j] * x[i]"), "{printed}");
    }

    #[test]
    fn unprofitable_restructure_is_skipped() {
        // Two branches with entirely distinct assignments: grouping would
        // not reduce block count.
        let program = Stmt::Block(vec![
            Stmt::guarded(lt("i", "j"), shared()),
            Stmt::guarded(eq("i", "j"), extra()),
        ]);
        assert_eq!(group_branches(program.clone()), program);
    }

    #[test]
    fn non_conditional_blocks_are_left_alone() {
        let program = Stmt::Block(vec![shared(), extra()]);
        assert_eq!(group_branches(program.clone()), program);
    }
}
