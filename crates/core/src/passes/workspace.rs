//! §4.2.8 Workspace transformation: accumulate into a scalar inside the
//! innermost loop that produces an output coordinate, and write back
//! once when that loop finishes.
//!
//! Worthwhile when the assignment sits under reduction loops *inside*
//! the loop that fixes the output coordinate: `y[j] += A[i, j] * x[i]`
//! under `for j { for i { … } }` touches `y[j]` once per `i`; with a
//! workspace it touches `y[j]` once per `j`.

use systec_ir::{Expr, Lhs, Stmt};

/// Applies the workspace transformation to every profitable assignment.
///
/// # Examples
///
/// ```
/// use systec_core::passes::workspace;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// let p = Stmt::loops(
///     [idx("j"), idx("i")],
///     assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
/// );
/// let out = workspace(p);
/// let printed = out.to_string();
/// assert!(printed.contains("workspace w_y = 0"), "{printed}");
/// assert!(printed.contains("y[j] += w_y"), "{printed}");
/// ```
pub fn workspace(program: Stmt) -> Stmt {
    let mut counter = 0usize;
    transform(program, &mut Vec::new(), &mut counter)
}

fn transform(stmt: Stmt, bound: &mut Vec<systec_ir::Index>, counter: &mut usize) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } => {
            bound.push(index.clone());
            let body = transform(*body, bound, counter);
            bound.pop();
            // If the whole body sits under one guard, accumulate inside it
            // (no contribution when the guard is false, and enclosing
            // loops can still lift the guard into bounds).
            let (guard, inner) = match body {
                Stmt::If { cond, body: inner } => (Some(cond), *inner),
                other => (None, other),
            };
            // Look for assignments nested under at least one inner loop
            // whose output coordinates are all bound at this level.
            let (hoisted, mut wrapped) = hoist_assignments(inner, &index, bound, counter);
            for (temp, init, target, op) in hoisted.into_iter().rev() {
                wrapped = Stmt::Workspace {
                    name: temp.clone(),
                    init,
                    body: Box::new(Stmt::block([
                        wrapped,
                        Stmt::Assign { lhs: Lhs::Tensor(target), op, rhs: Expr::Scalar(temp) },
                    ])),
                };
            }
            if let Some(cond) = guard {
                wrapped = Stmt::If { cond, body: Box::new(wrapped) };
            }
            Stmt::Loop { index, body: Box::new(wrapped) }
        }
        other => other.map_children(&mut |s| transform(s, bound, counter)),
    }
}

type Hoist = (String, f64, systec_ir::Access, systec_ir::AssignOp);

/// Finds assignments (inside inner loops of `body`) whose output
/// coordinates are fully determined by `loop_index` and outer indices;
/// replaces them with scalar accumulations and returns the write-backs.
fn hoist_assignments(
    body: Stmt,
    loop_index: &systec_ir::Index,
    outer: &[systec_ir::Index],
    counter: &mut usize,
) -> (Vec<Hoist>, Stmt) {
    let mut hoisted = Vec::new();
    let body = rewrite(body, loop_index, outer, counter, &mut hoisted, false);
    (hoisted, body)
}

fn rewrite(
    stmt: Stmt,
    loop_index: &systec_ir::Index,
    outer: &[systec_ir::Index],
    counter: &mut usize,
    hoisted: &mut Vec<Hoist>,
    inside_inner_loop: bool,
) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } => {
            let body = rewrite(*body, loop_index, outer, counter, hoisted, true);
            Stmt::Loop { index, body: Box::new(body) }
        }
        Stmt::Assign { lhs: Lhs::Tensor(target), op, rhs }
            if inside_inner_loop
                && op != systec_ir::AssignOp::Overwrite
                && target.indices.iter().all(|i| i == loop_index || outer.contains(i)) =>
        {
            // Reuse a workspace for repeated writes to the same target.
            let existing = hoisted.iter().find(|(_, _, t, o)| *t == target && *o == op);
            let temp = match existing {
                Some((name, ..)) => name.clone(),
                None => {
                    let name = if *counter == 0 {
                        format!("w_{}", target.tensor.display_name())
                    } else {
                        format!("w_{}{}", target.tensor.display_name(), counter)
                    };
                    *counter += 1;
                    hoisted.push((name.clone(), op.identity().unwrap_or(0.0), target.clone(), op));
                    name
                }
            };
            Stmt::Assign { lhs: Lhs::Scalar(temp), op, rhs }
        }
        other => other.map_children(&mut |s| {
            rewrite(s, loop_index, outer, counter, hoisted, inside_inner_loop)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn hoists_reduction_out_of_inner_loop() {
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
        );
        let out = workspace(p);
        let printed = out.to_string();
        let expected = "\
for j:
  workspace w_y = 0:
    for i:
      w_y += A[i, j] * x[i]
    y[j] += w_y";
        assert_eq!(printed, expected);
    }

    #[test]
    fn paper_figure_shape_both_outputs() {
        // for j, i: y[i] += A*x[j]; y[j] += A*x[i] — only y[j] hoists
        // (y[i] depends on the inner index).
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::block([
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
                assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
            ]),
        );
        let printed = workspace(p).to_string();
        assert!(printed.contains("w_y += A[i, j] * x[i]"), "{printed}");
        assert!(printed.contains("y[i] += A[i, j] * x[j]"), "{printed}");
        assert!(printed.contains("y[j] += w_y"), "{printed}");
    }

    #[test]
    fn innermost_assignment_is_left_alone() {
        // No loop inside the one fixing the output: nothing to gain.
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i", "j"]), access("A", ["i", "j"]).into()),
        );
        assert_eq!(workspace(p.clone()), p);
    }

    #[test]
    fn scalar_output_hoists_at_outermost_loop() {
        // s[] += x[i] * A[i, j] * x[j]: the write-back lands after the
        // outermost loop's body.
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(
                access("s", [] as [&str; 0]),
                mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
            ),
        );
        let printed = workspace(p).to_string();
        assert!(printed.contains("workspace w_s = 0"), "{printed}");
        assert!(printed.contains("s[] += w_s"), "{printed}");
    }

    #[test]
    fn min_reduction_workspace_initializes_to_infinity() {
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            assign_op(
                access("y", ["j"]),
                systec_ir::AssignOp::Min,
                add([access("A", ["i", "j"]), access("x", ["i"])]),
            ),
        );
        let printed = workspace(p).to_string();
        assert!(printed.contains("workspace w_y = inf"), "{printed}");
        assert!(printed.contains("y[j] min= w_y"), "{printed}");
    }

    #[test]
    fn repeated_writes_share_one_workspace() {
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            Stmt::block([
                assign(access("y", ["j"]), mul([access("A", ["i", "j"]), access("x", ["i"])])),
                assign(access("y", ["j"]), mul([access("B", ["i", "j"]), access("x", ["i"])])),
            ]),
        );
        let printed = workspace(p).to_string();
        assert_eq!(printed.matches("workspace").count(), 1, "{printed}");
        assert_eq!(printed.matches("y[j] += w_y").count(), 1, "{printed}");
    }
}
