//! §4.2.3 Concordize tensors: rewrite accesses so every tensor is
//! traversed in loop-nesting order.
//!
//! A program is *concordant* when the subscripts of each access bind
//! outermost-first. Hierarchical sparse formats can only be iterated
//! concordantly, so a discordant sparse access would fall back to
//! per-element binary search. This pass rewrites a discordant access
//! `A[i, k]` (with `k` binding outside `i`) into `A_T[k, i]` over a
//! transposed variant, which the runtime materializes once, outside the
//! timed kernel (§5.2 excludes rearrangement time).
//!
//! When the needed permutation only moves modes within a symmetric part
//! of a declared-symmetric tensor, no variant is needed at all: the
//! subscripts are simply reordered (the tensor is invariant under the
//! permutation).

use std::collections::HashMap;

use systec_ir::{Access, Expr, Index, Stmt, TensorRef};

use crate::SymmetrySpec;

/// Rewrites every discordant read access into a concordant access of a
/// transposed variant (or a subscript reordering when symmetry allows).
///
/// # Examples
///
/// ```
/// use systec_core::passes::concordize;
/// use systec_core::SymmetrySpec;
/// use systec_ir::build::*;
/// use systec_ir::Stmt;
///
/// // for j, i: y[i] += A[i, j] * x[j] — A binds j (outer) at mode 1.
/// let p = Stmt::loops(
///     [idx("j"), idx("i")],
///     assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
/// );
/// let out = concordize(p, &SymmetrySpec::new());
/// assert!(out.to_string().contains("A_T[j, i]"), "{out}");
/// ```
pub fn concordize(program: Stmt, spec: &SymmetrySpec) -> Stmt {
    let mut depths: HashMap<Index, usize> = HashMap::new();
    walk(program, &mut depths, 0, spec)
}

fn walk(stmt: Stmt, depths: &mut HashMap<Index, usize>, depth: usize, spec: &SymmetrySpec) -> Stmt {
    match stmt {
        Stmt::Loop { index, body } => {
            let previous = depths.insert(index.clone(), depth);
            let body = walk(*body, depths, depth + 1, spec);
            match previous {
                Some(d) => depths.insert(index.clone(), d),
                None => depths.remove(&index),
            };
            Stmt::Loop { index, body: Box::new(body) }
        }
        Stmt::Let { name, value, body } => Stmt::Let {
            name,
            value: fix_expr(value, depths, spec),
            body: Box::new(walk(*body, depths, depth, spec)),
        },
        Stmt::Assign { lhs, op, rhs } => Stmt::Assign { lhs, op, rhs: fix_expr(rhs, depths, spec) },
        other => {
            let mut d = std::mem::take(depths);
            let out = other.map_children(&mut |s| walk(s, &mut d, depth, spec));
            *depths = d;
            out
        }
    }
}

fn fix_expr(expr: Expr, depths: &HashMap<Index, usize>, spec: &SymmetrySpec) -> Expr {
    match expr {
        Expr::Access(a) => Expr::Access(fix_access(a, depths, spec)),
        Expr::Call { op, args } => {
            Expr::Call { op, args: args.into_iter().map(|e| fix_expr(e, depths, spec)).collect() }
        }
        Expr::Lookup { table, index } => {
            Expr::Lookup { table, index: Box::new(fix_expr(*index, depths, spec)) }
        }
        other => other,
    }
}

fn fix_access(access: Access, depths: &HashMap<Index, usize>, spec: &SymmetrySpec) -> Access {
    let ds: Option<Vec<usize>> = access.indices.iter().map(|i| depths.get(i).copied()).collect();
    let Some(ds) = ds else {
        return access; // unbound index: leave for the executor to report
    };
    if ds.windows(2).all(|w| w[0] < w[1]) {
        return access;
    }
    // Permutation sorting modes by binding depth (stable for safety).
    let mut perm: Vec<usize> = (0..ds.len()).collect();
    perm.sort_by_key(|&m| ds[m]);
    if perm.iter().enumerate().all(|(k, &m)| k == m) {
        return access; // e.g. a repeated subscript: already depth-sorted
    }
    let indices: Vec<Index> = perm.iter().map(|&m| access.indices[m].clone()).collect();
    // If the tensor is symmetric under this permutation, reorder the
    // subscripts in place — the tensor itself is invariant.
    if access.tensor.is_base() {
        if let Some(partition) = spec.partition(&access.tensor.name) {
            if partition.fixes(&perm) {
                return Access { tensor: access.tensor, indices };
            }
        }
    }
    let combined = compose(&access.tensor.perm, &perm);
    Access {
        tensor: TensorRef { name: access.tensor.name, perm: combined, part: access.tensor.part },
        indices,
    }
}

/// Composes an existing variant permutation with a new one:
/// `V2[c] = V1[c ∘ perm] = base[…]`.
fn compose(existing: &[usize], perm: &[usize]) -> Vec<usize> {
    if existing.is_empty() {
        return perm.to_vec();
    }
    perm.iter().map(|&k| existing[k]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    #[test]
    fn concordant_access_untouched() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        assert_eq!(concordize(p.clone(), &SymmetrySpec::new()), p);
    }

    #[test]
    fn csc_style_access_gets_transposed_variant() {
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let out = concordize(p, &SymmetrySpec::new());
        assert!(out.to_string().contains("A_T[j, i]"), "{out}");
    }

    #[test]
    fn symmetric_tensor_reorders_subscripts_without_variant() {
        let p = Stmt::loops(
            [idx("j"), idx("i")],
            assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
        );
        let spec = SymmetrySpec::new().with_full("A", 2);
        let out = concordize(p, &spec);
        let printed = out.to_string();
        assert!(printed.contains("A[j, i]"), "{printed}");
        assert!(!printed.contains("A_T"), "{printed}");
    }

    #[test]
    fn three_mode_discordant_access() {
        // Loops (l, k, i); access A[i, k, l] binds at depths (2, 1, 0).
        let p = Stmt::loops(
            [idx("l"), idx("k"), idx("i")],
            assign(access("y", ["i"]), access("A", ["i", "k", "l"]).into()),
        );
        let out = concordize(p, &SymmetrySpec::new());
        let printed = out.to_string();
        assert!(
            printed.contains("A_T210[l, k, i]") || printed.contains("A_T[l, k, i]"),
            "{printed}"
        );
    }

    #[test]
    fn partial_symmetry_insufficient_for_reorder_falls_back() {
        // A symmetric in {0, 1} only; required permutation swaps 0 and 2.
        let p = Stmt::loops(
            [idx("l"), idx("k"), idx("i")],
            assign(access("y", ["i"]), access("A", ["l", "k", "i"]).into()),
        );
        // A[l, k, i] binds depths (0, 1, 2): concordant already.
        let spec = SymmetrySpec::new().with_partition(
            "A",
            crate::SymmetryPartition::from_parts(vec![vec![0, 1], vec![2]]).unwrap(),
        );
        assert_eq!(concordize(p.clone(), &spec), p);
    }

    #[test]
    fn shadowed_loop_indices_restore_depths() {
        // Two sibling nests over the same index names.
        let nest = |a: &str, b: &str| {
            Stmt::loops(
                [idx(a), idx(b)],
                assign(access("y", ["i"]), access("A", ["i", "j"]).into()),
            )
        };
        let p = Stmt::block([nest("i", "j"), nest("j", "i")]);
        let out = concordize(p, &SymmetrySpec::new());
        let printed = out.to_string();
        // First nest concordant, second becomes a transposed read.
        assert!(printed.contains("A[i, j]"), "{printed}");
        assert!(printed.contains("A_T[j, i]"), "{printed}");
    }
}
