//! §4.2.9 Diagonal splitting: compute diagonal and off-diagonal
//! contributions in separate loop nests over split tensors.
//!
//! Non-diagonal values form the bulk of a symmetric tensor, so the paper
//! treats diagonal entries as an edge case computed in its own loop nest
//! (Listing 7's `A_nondiag` / `A_diag`). Splitting the *tensor* — not
//! just the conditionals — means the main nest iterates only off-diagonal
//! entries with simple control flow, and the small diagonal nest touches
//! only the few diagonal entries.

use systec_ir::{Cond, Expr, Index, Stmt, TensorPart};

/// How a condition relates to the diagonal structure of the chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    /// Requires all chain indices distinct (the off-diagonal case).
    NonDiag,
    /// Requires at least one equality (a diagonal case).
    Diag,
    /// Mentions no chain equalities either way.
    Neutral,
    /// Mixes diagonal and off-diagonal disjuncts.
    Mixed,
}

/// Splits the program into an off-diagonal nest (reading `*_nondiag`
/// variants of the symmetric tensors) and a diagonal nest (reading
/// `*_diag` variants). Returns the program unchanged when splitting does
/// not apply (no symmetry, fewer than two chain indices, or control flow
/// that mixes the two cases).
pub fn diagonal_split(program: Stmt, chain: &[Index], symmetric: &[String]) -> Stmt {
    if chain.len() < 2 || symmetric.is_empty() {
        return program;
    }
    let Some(nondiag) = filter_tree(&program, chain, Class::NonDiag) else {
        return program;
    };
    let Some(diag) = filter_tree(&program, chain, Class::Diag) else {
        return program;
    };
    let (Some(nondiag), Some(diag)) = (nondiag, diag) else {
        return program;
    };
    if nondiag.is_empty() || diag.is_empty() {
        return program;
    }
    // In the off-diagonal nest, the `p != q` guards are implied by the
    // split tensor's structure (every stored entry has pairwise-distinct
    // canonical coordinates), so they can be dropped — this is what makes
    // the hot nest's control flow as simple as Listing 7's.
    let nondiag = strip_nondiag_guards(nondiag, chain);
    let nondiag = retarget(nondiag, symmetric, TensorPart::OffDiagonal);
    let diag = retarget(diag, symmetric, TensorPart::Diagonal);
    Stmt::block([nondiag, diag])
}

/// Clones the tree keeping only conditional blocks of the wanted class.
/// Outer `Option` is `None` on a `Mixed` condition (abort); inner
/// `Option` is `None` when the subtree has nothing of the wanted class.
fn filter_tree(stmt: &Stmt, chain: &[Index], want: Class) -> Option<Option<Stmt>> {
    match stmt {
        Stmt::Block(ss) => {
            let mut kept = Vec::new();
            for s in ss {
                if let Some(sub) = filter_tree(s, chain, want)? {
                    kept.push(sub);
                }
            }
            Some((!kept.is_empty()).then(|| Stmt::block(kept)))
        }
        Stmt::If { cond, body } => match classify(cond, chain) {
            Class::Mixed => None,
            Class::Neutral => Some(
                filter_tree(body, chain, want)?
                    .map(|b| Stmt::If { cond: cond.clone(), body: Box::new(b) }),
            ),
            c if c == want => Some(Some(stmt.clone())),
            _ => Some(None),
        },
        Stmt::Loop { index, body } => Some(
            filter_tree(body, chain, want)?
                .map(|b| Stmt::Loop { index: index.clone(), body: Box::new(b) }),
        ),
        Stmt::Let { name, value, body } => {
            Some(filter_tree(body, chain, want)?.map(|b| Stmt::Let {
                name: name.clone(),
                value: value.clone(),
                body: Box::new(b),
            }))
        }
        Stmt::Workspace { name, init, body } => {
            Some(filter_tree(body, chain, want)?.map(|b| Stmt::Workspace {
                name: name.clone(),
                init: *init,
                body: Box::new(b),
            }))
        }
        Stmt::Assign { .. } => Some(Some(stmt.clone())),
    }
}

/// Removes `Ne` conjuncts between chain indices (and pure-`Ne` guards)
/// from the off-diagonal nest, where the split tensor makes them
/// tautological.
fn strip_nondiag_guards(stmt: Stmt, chain: &[Index]) -> Stmt {
    match stmt {
        Stmt::If { cond, body } => {
            let body = strip_nondiag_guards(*body, chain);
            let kept = Cond::and(cond.conjuncts().into_iter().filter(|c| {
                !matches!(c, Cond::Cmp(systec_ir::CmpOp::Ne, a, b)
                    if chain.contains(a) && chain.contains(b))
            }));
            Stmt::guarded(kept, body)
        }
        other => other.map_children(&mut |s| strip_nondiag_guards(s, chain)),
    }
}

fn classify(cond: &Cond, chain: &[Index]) -> Class {
    let on_chain = |a: &Index, b: &Index| chain.contains(a) && chain.contains(b);
    match cond {
        Cond::True => Class::Neutral,
        Cond::Cmp(op, a, b) if on_chain(a, b) => match op {
            systec_ir::CmpOp::Eq => Class::Diag,
            systec_ir::CmpOp::Ne => Class::NonDiag,
            _ => Class::Neutral,
        },
        Cond::Cmp(..) => Class::Neutral,
        Cond::And(cs) => {
            let mut class = Class::Neutral;
            for c in cs {
                class = match (class, classify(c, chain)) {
                    (x, Class::Neutral) => x,
                    (Class::Neutral, y) => y,
                    (x, y) if x == y => x,
                    // An `and` mixing Eq and Ne over the chain is still a
                    // diagonal case (some indices equal).
                    _ => Class::Diag,
                };
            }
            class
        }
        Cond::Or(cs) => {
            let mut class = Class::Neutral;
            for c in cs {
                class = match (class, classify(c, chain)) {
                    (x, Class::Neutral) | (Class::Neutral, x) => x,
                    (x, y) if x == y => x,
                    _ => return Class::Mixed,
                };
            }
            class
        }
    }
}

/// Rewrites base accesses to the named symmetric tensors to read the
/// given part.
fn retarget(stmt: Stmt, symmetric: &[String], part: TensorPart) -> Stmt {
    stmt.map_exprs(&mut |e| retarget_expr(e, symmetric, part))
}

fn retarget_expr(expr: Expr, symmetric: &[String], part: TensorPart) -> Expr {
    match expr {
        Expr::Access(mut a)
            if a.tensor.part == TensorPart::All && symmetric.contains(&a.tensor.name) =>
        {
            a.tensor.part = part;
            Expr::Access(a)
        }
        Expr::Call { op, args } => Expr::Call {
            op,
            args: args.into_iter().map(|e| retarget_expr(e, symmetric, part)).collect(),
        },
        Expr::Lookup { table, index } => {
            Expr::Lookup { table, index: Box::new(retarget_expr(*index, symmetric, part)) }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;

    fn chain2() -> Vec<Index> {
        vec![idx("i"), idx("j")]
    }

    fn ssymv_symmetrized() -> Stmt {
        Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                le("i", "j"),
                Stmt::block([
                    Stmt::guarded(
                        ne("i", "j"),
                        Stmt::block([
                            assign(
                                access("y", ["i"]),
                                mul([access("A", ["i", "j"]), access("x", ["j"])]),
                            ),
                            assign(
                                access("y", ["j"]),
                                mul([access("A", ["i", "j"]), access("x", ["i"])]),
                            ),
                        ]),
                    ),
                    Stmt::guarded(
                        eq("i", "j"),
                        assign(
                            access("y", ["i"]),
                            mul([access("A", ["i", "j"]), access("x", ["j"])]),
                        ),
                    ),
                ]),
            ),
        )
    }

    #[test]
    fn splits_into_two_nests_with_part_variants() {
        let out = diagonal_split(ssymv_symmetrized(), &chain2(), &["A".to_string()]);
        let printed = out.to_string();
        assert!(printed.contains("A_nondiag[i, j]"), "{printed}");
        assert!(printed.contains("A_diag[i, j]"), "{printed}");
        // Two separate loop nests.
        assert_eq!(printed.matches("for i:").count(), 2, "{printed}");
        // The off-diagonal nest holds 2 assignments, the diagonal nest 1.
        assert_eq!(out.assignments().len(), 3);
    }

    #[test]
    fn no_chain_means_no_split() {
        let p = ssymv_symmetrized();
        assert_eq!(diagonal_split(p.clone(), &[], &["A".to_string()]), p);
        assert_eq!(diagonal_split(p.clone(), &[idx("i")], &["A".to_string()]), p);
        assert_eq!(diagonal_split(p.clone(), &chain2(), &[]), p);
    }

    #[test]
    fn mixed_or_condition_aborts_split() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::guarded(
                or([eq("i", "j"), ne("i", "j")]),
                assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
            ),
        );
        assert_eq!(diagonal_split(p.clone(), &chain2(), &["A".to_string()]), p);
    }

    #[test]
    fn consolidated_diagonal_or_still_splits() {
        // (i == k && k != l) || (i != k && k == l) is diagonal throughout.
        let chain = vec![idx("i"), idx("k"), idx("l")];
        let p = Stmt::loops(
            [idx("i"), idx("k"), idx("l")],
            Stmt::block([
                Stmt::guarded(
                    and([ne("i", "k"), ne("k", "l")]),
                    assign(access("y", ["i"]), access("A", ["i", "k", "l"]).into()),
                ),
                Stmt::guarded(
                    or([and([eq("i", "k"), ne("k", "l")]), and([ne("i", "k"), eq("k", "l")])]),
                    assign(access("y", ["i"]), access("A", ["i", "k", "l"]).into()),
                ),
            ]),
        );
        let out = diagonal_split(p, &chain, &["A".to_string()]);
        let printed = out.to_string();
        assert!(printed.contains("A_nondiag"), "{printed}");
        assert!(printed.contains("A_diag"), "{printed}");
    }

    #[test]
    fn lets_are_preserved_in_both_nests() {
        let p = Stmt::loops(
            [idx("i"), idx("j")],
            Stmt::Let {
                name: "t".into(),
                value: access("A", ["i", "j"]).into(),
                body: Box::new(Stmt::block([
                    Stmt::guarded(ne("i", "j"), assign(access("y", ["i"]), scalar("t"))),
                    Stmt::guarded(eq("i", "j"), assign(access("y", ["j"]), scalar("t"))),
                ])),
            },
        );
        let out = diagonal_split(p, &chain2(), &["A".to_string()]);
        let printed = out.to_string();
        assert!(printed.contains("let t = A_nondiag[i, j]"), "{printed}");
        assert!(printed.contains("let t = A_diag[i, j]"), "{printed}");
    }
}
