//! Symmetrization (§4.1): the four-stage process that restricts
//! iteration to canonical triangles and emits one assignment per unique
//! symmetry-group permutation.

use std::collections::{BTreeSet, HashMap};

use systec_ir::{Access, Cond, Einsum, Expr, Index, Stmt};

use crate::perms::{equivalence_groups, unique_symmetry_group};
use crate::{CompileError, SymmetrySpec};

/// The output of symmetrization: a loop nest whose body is guarded by
/// the monotone chain `p_1 ≤ … ≤ p_n` and split into one conditional
/// block per equivalence group.
#[derive(Clone, PartialEq, Debug)]
pub struct SymmetrizedKernel {
    /// The symmetrized program.
    pub program: Stmt,
    /// The permutable indices `P`, in canonical (chain) order.
    pub chain: Vec<Index>,
    /// The names of the tensors declared symmetric.
    pub symmetric_tensors: Vec<String>,
    /// The einsum this kernel was derived from (with symmetric accesses
    /// normalized to canonical index order).
    pub einsum: Einsum,
}

/// Runs the four symmetrization stages on an einsum.
///
/// 1. **Identify symmetry**: `P` = every index sitting in a symmetric
///    part of size ≥ 2 of some input access.
/// 2. **Restrict iteration space**: order `P` so that the monotone chain
///    visits only canonical coordinates of every symmetric tensor (a
///    topological sort of the per-tensor mode orders).
/// 3. **Define assignments**: for each equivalence group `E` compatible
///    with the chain, apply each permutation in `S_P|E` to the assignment.
/// 4. **Normalize**: sort symmetric-access indices to canonical order
///    and sort commutative operands, making equivalent assignments
///    syntactically equal.
///
/// # Errors
///
/// Returns a [`CompileError`] if the symmetry declarations do not match
/// the einsum (unknown tensor, rank mismatch, repeated index, multiple
/// differently-indexed accesses, or a cyclic canonical order).
pub fn symmetrize(einsum: &Einsum, spec: &SymmetrySpec) -> Result<SymmetrizedKernel, CompileError> {
    let accesses = symmetric_accesses(einsum, spec)?;

    // Stage 1: permutable indices.
    let mut permutable: BTreeSet<Index> = BTreeSet::new();
    for (access, partition) in &accesses {
        for part in partition.nontrivial_parts() {
            for &mode in part {
                permutable.insert(access.indices[mode].clone());
            }
        }
    }

    // Stage 2: canonical chain order (topological sort of per-part mode
    // orders, tie-broken by loop order for determinism).
    let chain = canonical_chain(&permutable, &accesses, &einsum.loop_order)?;

    // Normalize the base einsum's symmetric accesses to canonical order.
    let chain_rank: HashMap<Index, usize> =
        chain.iter().enumerate().map(|(k, i)| (i.clone(), k)).collect();
    let base_rhs = normalize_expr(&einsum.rhs, spec, &chain_rank);
    let mut norm_einsum = einsum.clone();
    norm_einsum.rhs = base_rhs.clone();

    // Stages 3 and 4: equivalence groups, unique permutations, normalize.
    let chain_guard = Cond::and(
        chain.windows(2).map(|w| Cond::Cmp(systec_ir::CmpOp::Le, w[0].clone(), w[1].clone())),
    );
    let mut blocks: Vec<Stmt> = Vec::new();
    for group in equivalence_groups(chain.len()) {
        let cond = group.condition(&chain);
        let mut assigns: Vec<Stmt> = Vec::new();
        for sigma in unique_symmetry_group(&group) {
            let map: HashMap<Index, Index> = sigma
                .iter()
                .enumerate()
                .map(|(m, &src)| (chain[m].clone(), chain[src].clone()))
                .collect();
            let out = einsum.output.substitute(&map);
            let rhs = base_rhs.substitute(&map);
            let rhs = normalize_expr(&rhs, spec, &chain_rank).sort_commutative();
            assigns.push(Stmt::Assign { lhs: out.into(), op: einsum.op, rhs });
        }
        blocks.push(Stmt::guarded(cond, Stmt::block(assigns)));
    }

    let body = Stmt::guarded(chain_guard, Stmt::block(blocks));
    let program = Stmt::loops(einsum.loop_order.iter().cloned(), body);
    Ok(SymmetrizedKernel {
        program,
        chain,
        symmetric_tensors: spec.names().iter().map(|s| s.to_string()).collect(),
        einsum: norm_einsum,
    })
}

/// Validates the spec against the einsum and returns the (deduplicated)
/// symmetric accesses paired with their partitions.
fn symmetric_accesses<'a>(
    einsum: &Einsum,
    spec: &'a SymmetrySpec,
) -> Result<Vec<(Access, &'a crate::SymmetryPartition)>, CompileError> {
    let mut out = Vec::new();
    for (name, partition) in spec.iter() {
        let mut accesses: Vec<&Access> = einsum
            .rhs
            .accesses()
            .into_iter()
            .filter(|a| a.tensor.is_base() && a.tensor.name == name)
            .collect();
        accesses.dedup();
        let Some(first) = accesses.first().copied() else {
            return Err(CompileError::UnknownSymmetricTensor { name: name.to_string() });
        };
        if accesses.iter().any(|a| *a != first) {
            return Err(CompileError::MultipleSymmetricAccesses { name: name.to_string() });
        }
        if partition.rank() != first.indices.len() {
            return Err(CompileError::SymmetryRankMismatch {
                name: name.to_string(),
                partition_rank: partition.rank(),
                access_rank: first.indices.len(),
            });
        }
        let mut seen: BTreeSet<&Index> = BTreeSet::new();
        for part in partition.nontrivial_parts() {
            for &mode in part {
                if !seen.insert(&first.indices[mode]) {
                    return Err(CompileError::RepeatedIndexInSymmetricAccess {
                        name: name.to_string(),
                        index: first.indices[mode].clone(),
                    });
                }
            }
        }
        out.push((first.clone(), partition));
    }
    Ok(out)
}

/// Topologically sorts the permutable indices so the monotone chain
/// visits only canonical coordinates of every symmetric access.
fn canonical_chain(
    permutable: &BTreeSet<Index>,
    accesses: &[(Access, &crate::SymmetryPartition)],
    loop_order: &[Index],
) -> Result<Vec<Index>, CompileError> {
    let nodes: Vec<Index> =
        loop_order.iter().filter(|i| permutable.contains(*i)).cloned().collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let pos = |i: &Index| nodes.iter().position(|n| n == i).expect("permutable ⊆ loop order");
    for (access, partition) in accesses {
        for part in partition.nontrivial_parts() {
            // Within a symmetric part the indices can be permuted freely,
            // so the canonical order of the part's indices is ours to
            // choose: take loop order (the access is normalized to match
            // afterwards). Consecutive indices in that order constrain
            // the chain.
            let mut members: Vec<usize> = part.iter().map(|&m| pos(&access.indices[m])).collect();
            members.sort_unstable();
            for w in members.windows(2) {
                edges.push((w[0], w[1]));
            }
        }
    }
    // Kahn's algorithm, preferring loop order for determinism.
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    for &(_, b) in &edges {
        indegree[b] += 1;
    }
    let mut order = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    while order.len() < n {
        let Some(next) = (0..n).find(|&k| !emitted[k] && indegree[k] == 0) else {
            return Err(CompileError::CyclicCanonicalOrder);
        };
        emitted[next] = true;
        order.push(nodes[next].clone());
        for &(a, b) in &edges {
            if a == next {
                indegree[b] -= 1;
            }
        }
    }
    Ok(order)
}

/// Sorts the indices of every symmetric access within each symmetric
/// part, by canonical chain rank (stage 4's access normalization).
fn normalize_expr(expr: &Expr, spec: &SymmetrySpec, chain_rank: &HashMap<Index, usize>) -> Expr {
    match expr {
        Expr::Access(a) if a.tensor.is_base() => {
            if let Some(partition) = spec.partition(&a.tensor.name) {
                if partition.rank() == a.indices.len() {
                    let mut indices = a.indices.clone();
                    for part in partition.nontrivial_parts() {
                        let mut modes: Vec<usize> = part.to_vec();
                        modes.sort_unstable();
                        let mut vals: Vec<Index> =
                            modes.iter().map(|&m| indices[m].clone()).collect();
                        vals.sort_by_key(|i| chain_rank.get(i).copied().unwrap_or(usize::MAX));
                        for (&m, v) in modes.iter().zip(vals) {
                            indices[m] = v;
                        }
                    }
                    return Expr::Access(Access { tensor: a.tensor.clone(), indices });
                }
            }
            expr.clone()
        }
        Expr::Call { op, args } => Expr::Call {
            op: *op,
            args: args.iter().map(|e| normalize_expr(e, spec, chain_rank)).collect(),
        },
        Expr::Lookup { table, index } => Expr::Lookup {
            table: table.clone(),
            index: Box::new(normalize_expr(index, spec, chain_rank)),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::build::*;
    use systec_ir::AssignOp;

    fn ssymv() -> Einsum {
        Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        )
    }

    fn mttkrp3() -> Einsum {
        Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([access("A", ["i", "k", "l"]), access("B", ["k", "j"]), access("B", ["l", "j"])]),
            [idx("i"), idx("k"), idx("l"), idx("j")],
        )
    }

    #[test]
    fn ssymv_chain_and_blocks() {
        let spec = SymmetrySpec::new().with_full("A", 2);
        let k = symmetrize(&ssymv(), &spec).unwrap();
        assert_eq!(k.chain, vec![idx("i"), idx("j")]);
        let printed = k.program.to_string();
        assert!(printed.contains("if i <= j"), "{printed}");
        assert!(printed.contains("if i != j"), "{printed}");
        assert!(printed.contains("if i == j"), "{printed}");
        // Off-diagonal block: two assignments, one to y[i], one to y[j].
        assert!(printed.contains("y[i] += A[i, j] * x[j]"), "{printed}");
        assert!(printed.contains("y[j] += A[i, j] * x[i]"), "{printed}");
        // 2 + 1 assignments in total.
        assert_eq!(k.program.assignments().len(), 3);
    }

    #[test]
    fn mttkrp_block_structure_matches_listing_6() {
        let spec = SymmetrySpec::new().with_full("A", 3);
        let k = symmetrize(&mttkrp3(), &spec).unwrap();
        assert_eq!(k.chain, vec![idx("i"), idx("k"), idx("l")]);
        // Listing 6: 6 assignments (with duplicates) in the all-distinct
        // block, 3 each in the two single-equality blocks, 1 in the
        // all-equal block.
        assert_eq!(k.program.assignments().len(), 6 + 3 + 3 + 1);
        let printed = k.program.to_string();
        assert!(printed.contains("if i <= k && k <= l"), "{printed}");
        // Normalization makes the duplicate pattern of Listing 6 visible:
        // the same normalized line appears twice.
        let line = "C[i, j] += A[i, k, l] * B[k, j] * B[l, j]";
        assert!(printed.matches(line).count() >= 2, "{printed}");
    }

    #[test]
    fn syprd_diagonal_block_single_assignment() {
        // y[] += x[i] * A[i, j] * x[j] — Listing 4's structure.
        let e = Einsum::new(
            access("y", [] as [&str; 0]),
            AssignOp::Add,
            mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        );
        let spec = SymmetrySpec::new().with_full("A", 2);
        let k = symmetrize(&e, &spec).unwrap();
        // Off-diagonal: two equivalent assignments (after normalization,
        // syntactically identical — invisible output symmetry made plain).
        let assigns = k.program.assignments();
        assert_eq!(assigns.len(), 3);
        assert_eq!(assigns[0], assigns[1], "normalization exposes the duplicate");
    }

    #[test]
    fn partial_symmetry_restricts_chain() {
        // T[i, j, k] symmetric only in {1, 2}: chain is (j, k); i free.
        let e = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("T", ["i", "j", "k"]), access("x", ["j"]), access("x", ["k"])]),
            [idx("i"), idx("j"), idx("k")],
        );
        let part = crate::SymmetryPartition::from_parts(vec![vec![0], vec![1, 2]]).unwrap();
        let spec = SymmetrySpec::new().with_partition("T", part);
        let k = symmetrize(&e, &spec).unwrap();
        assert_eq!(k.chain, vec![idx("j"), idx("k")]);
        assert_eq!(k.program.assignments().len(), 2 + 1);
    }

    #[test]
    fn no_symmetry_degenerates_to_naive() {
        let k = symmetrize(&ssymv(), &SymmetrySpec::new()).unwrap();
        assert!(k.chain.is_empty());
        assert_eq!(k.program.assignments().len(), 1);
    }

    #[test]
    fn unknown_tensor_rejected() {
        let spec = SymmetrySpec::new().with_full("Q", 2);
        assert!(matches!(
            symmetrize(&ssymv(), &spec),
            Err(CompileError::UnknownSymmetricTensor { .. })
        ));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let spec = SymmetrySpec::new().with_full("A", 3);
        assert!(matches!(
            symmetrize(&ssymv(), &spec),
            Err(CompileError::SymmetryRankMismatch { .. })
        ));
    }

    #[test]
    fn repeated_index_rejected() {
        let e = Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            access("A", ["i", "i"]).into(),
            [idx("i")],
        );
        let spec = SymmetrySpec::new().with_full("A", 2);
        assert!(matches!(
            symmetrize(&e, &spec),
            Err(CompileError::RepeatedIndexInSymmetricAccess { .. })
        ));
    }

    #[test]
    fn access_normalization_sorts_modes() {
        // TTM reads A[k, j, l]; normalization rewrites to A[j, k, l] given
        // loop order (j, k, l, i).
        let e = Einsum::new(
            access("C", ["i", "j", "l"]),
            AssignOp::Add,
            mul([access("A", ["k", "j", "l"]), access("B", ["k", "i"])]),
            [idx("j"), idx("k"), idx("l"), idx("i")],
        );
        let spec = SymmetrySpec::new().with_full("A", 3);
        let k = symmetrize(&e, &spec).unwrap();
        assert_eq!(k.chain, vec![idx("j"), idx("k"), idx("l")]);
        let printed = k.program.to_string();
        assert!(printed.contains("A[j, k, l]"), "{printed}");
        assert!(!printed.contains("A[k, j, l]"), "{printed}");
    }

    #[test]
    fn four_dimensional_counts() {
        // 4-d MTTKRP: blocks sum to Σ over E of |S_P|E| = 24+12+12+12+6+4+4+1? —
        // just check the total against the multinomial formula.
        let e = Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([
                access("A", ["i", "k", "l", "m"]),
                access("B", ["k", "j"]),
                access("B", ["l", "j"]),
                access("B", ["m", "j"]),
            ]),
            [idx("i"), idx("k"), idx("l"), idx("m"), idx("j")],
        );
        let spec = SymmetrySpec::new().with_full("A", 4);
        let k = symmetrize(&e, &spec).unwrap();
        let total: usize = crate::equivalence_groups(4)
            .iter()
            .map(|g| crate::unique_symmetry_group(g).len())
            .sum();
        assert_eq!(k.program.assignments().len(), total);
    }
}
