//! Error type for compilation.

use std::error::Error;
use std::fmt;

use systec_ir::Index;

/// An error raised while compiling an einsum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// A symmetry declaration names a tensor the einsum does not read.
    UnknownSymmetricTensor {
        /// The declared tensor name.
        name: String,
    },
    /// A symmetry partition's rank differs from the access arity.
    SymmetryRankMismatch {
        /// The tensor name.
        name: String,
        /// The partition's rank.
        partition_rank: usize,
        /// The access's arity.
        access_rank: usize,
    },
    /// A symmetric tensor is read through two differently-indexed
    /// accesses; the symmetrizer requires a single access per symmetric
    /// tensor.
    MultipleSymmetricAccesses {
        /// The tensor name.
        name: String,
    },
    /// A symmetric access repeats an index (e.g. `A[i, i]`), which the
    /// canonical-triangle restriction cannot express.
    RepeatedIndexInSymmetricAccess {
        /// The tensor name.
        name: String,
        /// The repeated index.
        index: Index,
    },
    /// The canonical ordering of permutable indices is cyclic (two
    /// symmetric tensors impose contradictory orders).
    CyclicCanonicalOrder,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownSymmetricTensor { name } => {
                write!(f, "symmetry declared for `{name}`, which the einsum does not read")
            }
            CompileError::SymmetryRankMismatch { name, partition_rank, access_rank } => write!(
                f,
                "symmetry partition for `{name}` covers {partition_rank} modes but the access has {access_rank}"
            ),
            CompileError::MultipleSymmetricAccesses { name } => write!(
                f,
                "symmetric tensor `{name}` is read through multiple differently-indexed accesses"
            ),
            CompileError::RepeatedIndexInSymmetricAccess { name, index } => {
                write!(f, "symmetric tensor `{name}` repeats index `{index}` in one access")
            }
            CompileError::CyclicCanonicalOrder => {
                write!(f, "no canonical index ordering satisfies all symmetric tensors")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::UnknownSymmetricTensor { name: "Q".into() };
        assert!(e.to_string().contains('Q'));
        let e = CompileError::CyclicCanonicalOrder;
        assert!(!e.to_string().is_empty());
    }
}
