//! Hash-ring property tier (vendored `proptest`): the contracts the
//! router's placement — and therefore the cluster differential tier's
//! byte-identity claim — stands on.
//!
//! * **deterministic** — independently built rings over the same shard
//!   count agree on every placement;
//! * **bounded** — every placement is a live shard ordinal;
//! * **roughly uniform** — no shard is starved or wildly overloaded
//!   across a large key population;
//! * **minimal disruption** — adding a shard only moves keys *onto*
//!   the new shard; removing the last shard only moves keys that lived
//!   on it;
//! * **hash tags** — `{tag}` routes by the tag alone, so co-located
//!   names stay co-located whatever surrounds the tag.

use proptest::prelude::*;
use systec_router::{routing_key, HashRing};

fn shard_count() -> impl Strategy<Value = usize> {
    1usize..9
}

fn key() -> impl Strategy<Value = String> {
    (0u64..1_000_000).prop_map(|v| format!("tensor-{v}"))
}

fn keys() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(key(), 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn placements_are_deterministic_across_ring_builds(
        shards in shard_count(),
        keys in keys(),
    ) {
        let a = HashRing::new(shards);
        let b = HashRing::new(shards);
        for key in &keys {
            prop_assert_eq!(a.shard_for(key), b.shard_for(key));
        }
    }

    #[test]
    fn placements_stay_in_bounds(shards in shard_count(), keys in keys()) {
        let ring = HashRing::new(shards);
        for key in &keys {
            prop_assert!(ring.shard_for(key) < shards);
        }
    }

    #[test]
    fn growing_the_ring_only_moves_keys_onto_the_new_shard(
        shards in shard_count(),
        keys in keys(),
    ) {
        let before = HashRing::new(shards);
        let after = HashRing::new(shards + 1);
        for key in &keys {
            let (old, new) = (before.shard_for(key), after.shard_for(key));
            prop_assert!(
                old == new || new == shards,
                "key {} moved shard {} -> {} when shard {} joined",
                key, old, new, shards
            );
        }
    }

    #[test]
    fn shrinking_the_ring_only_moves_the_removed_shards_keys(
        shards in 2usize..9,
        keys in keys(),
    ) {
        let before = HashRing::new(shards);
        let after = HashRing::new(shards - 1);
        for key in &keys {
            let (old, new) = (before.shard_for(key), after.shard_for(key));
            prop_assert!(
                old == new || old == shards - 1,
                "key {} moved shard {} -> {} but shard {} was the one removed",
                key, old, new, shards - 1
            );
        }
    }

    #[test]
    fn hash_tags_route_by_the_tag_alone(
        shards in shard_count(),
        tag in (0u64..10_000).prop_map(|v| format!("job{v}")),
        suffix in (0u64..10_000).prop_map(|v| format!("t{v}")),
    ) {
        let ring = HashRing::new(shards);
        let tagged = format!("{{{tag}}}{suffix}");
        prop_assert_eq!(routing_key(&tagged), tag.as_str());
        prop_assert_eq!(ring.shard_for(&tagged), ring.shard_for(&tag));
        // Two different names sharing the tag land together.
        let sibling = format!("prefix-{suffix}{{{tag}}}");
        prop_assert_eq!(ring.shard_for(&sibling), ring.shard_for(&tagged));
    }
}

/// Uniformity over a fixed large population: deterministic (the ring
/// and the key set are both pure functions), so this is a plain test —
/// a property run would recheck the same instance 256 times.
#[test]
fn key_shares_are_roughly_uniform() {
    for shards in [2usize, 3, 5, 8] {
        let ring = HashRing::new(shards);
        let mut counts = vec![0usize; shards];
        let population = 20_000usize;
        for k in 0..population {
            counts[ring.shard_for(&format!("tensor-{k}"))] += 1;
        }
        let fair = population / shards;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count * 2 >= fair && count <= fair * 2,
                "shard {shard}/{shards} owns {count} of {population} keys (fair share {fair})"
            );
        }
    }
}
