//! The cluster front process: one TCP endpoint speaking the exact
//! line protocol of a single `systec-serve` worker, fanning work out
//! across N workers ("shards").
//!
//! ## Placement
//!
//! * `register_tensor` with the default `"placement":"hash"` is
//!   forwarded verbatim to the shard owning the name on the
//!   [`HashRing`] (hash tags `{tag}` co-locate related names);
//!   `"placement":"replicate"` broadcasts the registration to every
//!   shard so row-range sharded kernels can read it anywhere.
//! * `prepare` routes to the shard owning its referenced tensors, and
//!   the kernel handle in the reply is rewritten into the router's own
//!   arrival-ordered handle space — shards mint handles independently,
//!   so shard-local handles would collide at the front.
//!   `"sharded":true` broadcasts the prepare to every shard and
//!   records the advertised merge schedule.
//! * `run` on a shard-prepared kernel fans out one row-range
//!   sub-request per shard (`"shard":[k,n]`), pipelined — all requests
//!   written before any response is read — then merges the partials in
//!   fixed shard order: row-owned outputs window-concatenate,
//!   reduction outputs fold with the advertised operator. Because
//!   every worker initializes reduced outputs to the fold identity and
//!   counters are integers, the merged response is **byte-identical**
//!   to a single process running the whole kernel.
//!
//! ## Fault surface
//!
//! A shard that drops its connection is marked down; requests owned by
//! it answer a retryable `shard_unavailable` error while every other
//! shard keeps serving byte-identical responses. The next request
//! owned by the shard attempts one reconnect; success bumps the
//! shard's *epoch*, which invalidates kernel handles minted before the
//! restart (workers keep prepared kernels in memory, so they did not
//! survive) — stale handles answer `unknown_kernel` and clients
//! re-prepare against the recovered durable registry.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use systec_serve::protocol::{
    CounterPayload, ErrorCode, MergeRule, OutputPayload, Placement, Request, Response,
    RouterCountsPayload, ShardStatPayload,
};
use systec_serve::RetryPolicy;
use systec_telemetry::RouterMetrics;

use crate::relock;
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Router tunables.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Backoff schedule for the *initial* shard connects (workers may
    /// still be printing their banners when the router starts).
    /// Mid-flight reconnects after a shard failure are single-shot:
    /// the retry loop belongs to the client, which sees a retryable
    /// `shard_unavailable` in the meantime.
    pub connect_retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { vnodes: DEFAULT_VNODES, connect_retry: RetryPolicy::default() }
    }
}

/// One upstream worker connection: split write/read halves of the same
/// stream so fan-outs can pipeline (write all, then read all).
struct ShardConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ShardConn {
    fn connect(addr: &str) -> std::io::Result<ShardConn> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ShardConn { writer, reader })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ));
        }
        while line.ends_with(['\n', '\r']) {
            line.pop();
        }
        Ok(line)
    }
}

/// Router-side view of one worker.
struct Shard {
    addr: String,
    conn: Option<ShardConn>,
    /// Bumped on every reconnect: kernel handles minted under an older
    /// epoch are stale (the worker's prepare cache died with it).
    epoch: u64,
    /// Requests forwarded to this shard (relays, broadcast legs, and
    /// fan-out legs alike).
    forwarded: u64,
    /// Error responses relayed from, or transport failures talking
    /// to, this shard.
    errors: u64,
}

/// A router-space kernel handle's routing record.
enum HandleEntry {
    /// Prepared on one shard; runs forward there whole.
    Single { shard: usize, epoch: u64, handle: u64 },
    /// Prepared on every shard; runs fan out row ranges and merge.
    /// `handles[k]` is shard `k`'s `(epoch, handle)` pair.
    Sharded { handles: Vec<(u64, u64)>, merge: Vec<(String, MergeRule)> },
}

/// Reverse map key: which upstream handle(s) a router handle stands
/// for. Epochs are part of the key so a restarted shard's recycled
/// handle numbers never collide with pre-restart entries.
#[derive(PartialEq, Eq, Hash)]
enum HandleKey {
    Single(usize, u64, u64),
    Sharded(Vec<(u64, u64)>),
}

#[derive(Default)]
struct Counts {
    register_tensor: u64,
    prepare: u64,
    run: u64,
    sharded_runs: u64,
    fanouts: u64,
    replicated: u64,
    errors: u64,
}

struct State {
    shards: Vec<Shard>,
    handles: Vec<HandleEntry>,
    dedup: HashMap<HandleKey, u64>,
    placements: HashMap<String, Placement>,
    counts: Counts,
}

/// The shared router core: ring, upstream state, metrics.
///
/// All upstream traffic serializes behind one state lock — cross-shard
/// fan-out and the handle tables stay trivially consistent, and the
/// differential tier's byte-identity claim does not depend on request
/// interleavings. Per-shard concurrency is a throughput optimization
/// this crate deliberately leaves out.
pub struct Router {
    ring: HashRing,
    state: Mutex<State>,
    metrics: RouterMetrics,
    shutdown: Arc<AtomicBool>,
}

impl Router {
    /// Connects to every shard and builds the routing core.
    ///
    /// # Errors
    ///
    /// The first shard that stays unreachable through the configured
    /// connect retries.
    pub fn connect(shard_addrs: &[String], config: &RouterConfig) -> std::io::Result<Router> {
        assert!(!shard_addrs.is_empty(), "a router needs at least one shard");
        let mut shards = Vec::with_capacity(shard_addrs.len());
        for addr in shard_addrs {
            let mut conn = None;
            let attempts = config.connect_retry.attempts.max(1);
            let mut last: Option<std::io::Error> = None;
            for attempt in 0..attempts {
                match ShardConn::connect(addr) {
                    Ok(c) => {
                        conn = Some(c);
                        break;
                    }
                    Err(e) => last = Some(e),
                }
                if attempt + 1 < attempts {
                    std::thread::sleep(config.connect_retry.delay(attempt));
                }
            }
            match conn {
                Some(c) => shards.push(Shard {
                    addr: addr.clone(),
                    conn: Some(c),
                    epoch: 0,
                    forwarded: 0,
                    errors: 0,
                }),
                None => return Err(last.expect("at least one connect attempt was made")),
            }
        }
        Ok(Router {
            ring: HashRing::with_vnodes(shard_addrs.len(), config.vnodes),
            state: Mutex::new(State {
                shards,
                handles: Vec::new(),
                dedup: HashMap::new(),
                placements: HashMap::new(),
                counts: Counts::default(),
            }),
            metrics: RouterMetrics::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Whether a `shutdown` request has been accepted. Supervisors use
    /// this to tell a deliberate worker exit from a crash.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Answers one request line with one response line — the whole
    /// router, seen from a connection thread.
    pub fn respond(&self, line: &str) -> String {
        let response = match Request::decode(line) {
            // Same inline parse answer as a worker's transport, so a
            // garbage line gets byte-identical treatment in front of a
            // cluster and in front of one process.
            Err(e) => Response::error(ErrorCode::Parse, e.message).encode(),
            Ok(request) => self.dispatch(&request, line),
        };
        if response.starts_with("{\"ok\":false") {
            relock(&self.state).counts.errors += 1;
        }
        response
    }

    fn dispatch(&self, request: &Request, line: &str) -> String {
        let st = &mut *relock(&self.state);
        match request {
            Request::RegisterTensor { name, placement, .. } => {
                st.counts.register_tensor += 1;
                st.placements.insert(name.clone(), *placement);
                match placement {
                    Placement::Hash => {
                        let owner = self.ring.shard_for(name);
                        self.forward(st, owner, line)
                    }
                    Placement::Replicate => {
                        st.counts.replicated += 1;
                        self.broadcast(st, line)
                    }
                }
            }
            Request::Unregister { name } => {
                match st.placements.get(name) {
                    Some(Placement::Replicate) => self.broadcast(st, line),
                    // Hash-placed and never-registered names both route
                    // by the ring, so the owner's idempotent
                    // `existed:false` reply matches a single process.
                    _ => {
                        let owner = self.ring.shard_for(name);
                        self.forward(st, owner, line)
                    }
                }
            }
            Request::Prepare { einsum, inputs, sharded, .. } => {
                st.counts.prepare += 1;
                if *sharded {
                    self.prepare_sharded(st, einsum, inputs, line)
                } else {
                    self.prepare_single(st, einsum, inputs, line)
                }
            }
            Request::Run { kernel, full, shard } => {
                st.counts.run += 1;
                if shard.is_some() {
                    return Response::error(
                        ErrorCode::InvalidKernel,
                        "`shard` is router-internal: clients address the cluster and the \
                         router fans the row ranges out itself",
                    )
                    .encode();
                }
                self.run(st, *kernel, *full)
            }
            Request::Stats => self.cluster_stats(st),
            Request::Metrics => self.metrics_text(st),
            Request::Ping => Response::Pong.encode(),
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                // Best-effort broadcast; a dead shard is already down
                // and the supervisor sees the flag before reaping.
                self.metrics.broadcasts.inc_always();
                for k in 0..st.shards.len() {
                    if self.shard_send(st, k, line).is_ok() {
                        let _ = self.shard_recv(st, k);
                    }
                }
                Response::ShuttingDown.encode()
            }
        }
    }

    // -- upstream transport ------------------------------------------

    /// Ensures shard `k` has a live connection, attempting one
    /// reconnect if not. A successful reconnect bumps the epoch.
    fn shard_ensure(&self, st: &mut State, k: usize) -> std::io::Result<()> {
        if st.shards[k].conn.is_none() {
            let conn = ShardConn::connect(&st.shards[k].addr).inspect_err(|_| {
                self.metrics.shard_errors.inc_always();
            })?;
            st.shards[k].conn = Some(conn);
            st.shards[k].epoch += 1;
            self.metrics.reconnects.inc_always();
        }
        Ok(())
    }

    fn shard_send(&self, st: &mut State, k: usize, line: &str) -> std::io::Result<()> {
        self.shard_ensure(st, k)?;
        let shard = &mut st.shards[k];
        match shard.conn.as_mut().expect("ensured above").send_line(line) {
            Ok(()) => {
                shard.forwarded += 1;
                Ok(())
            }
            Err(e) => {
                shard.conn = None;
                self.metrics.shard_errors.inc_always();
                Err(e)
            }
        }
    }

    fn shard_recv(&self, st: &mut State, k: usize) -> std::io::Result<String> {
        let shard = &mut st.shards[k];
        let Some(conn) = shard.conn.as_mut() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "shard connection already down",
            ));
        };
        match conn.recv_line() {
            Ok(line) => {
                if line.starts_with("{\"ok\":false") {
                    shard.errors += 1;
                }
                Ok(line)
            }
            Err(e) => {
                shard.conn = None;
                self.metrics.shard_errors.inc_always();
                Err(e)
            }
        }
    }

    /// One request/response round trip with shard `k`, relaying the
    /// response bytes verbatim; transport failure becomes a retryable
    /// `shard_unavailable`.
    fn forward(&self, st: &mut State, k: usize, line: &str) -> String {
        self.metrics.forwarded.inc_always();
        match self.shard_send(st, k, line).and_then(|()| self.shard_recv(st, k)) {
            Ok(response) => response,
            Err(_) => self.unavailable(st, k),
        }
    }

    /// Sends `line` to every shard (pipelined), reads every response,
    /// and relays shard 0's bytes — the legs are deterministic, so the
    /// replies agree. Any transport failure answers
    /// `shard_unavailable` after the surviving legs were drained (the
    /// per-shard streams must stay in lockstep).
    fn broadcast(&self, st: &mut State, line: &str) -> String {
        st.counts.fanouts += 1;
        self.metrics.broadcasts.inc_always();
        match self.fan_out_lines(st, |_| line.to_string()) {
            Ok(mut responses) => responses.swap_remove(0),
            Err(k) => self.unavailable(st, k),
        }
    }

    /// The pipelined fan-out primitive: writes `line_for(k)` to every
    /// shard, then reads one response per shard in fixed shard order.
    /// Returns the first failed shard ordinal on any transport error.
    fn fan_out_lines(
        &self,
        st: &mut State,
        line_for: impl Fn(usize) -> String,
    ) -> Result<Vec<String>, usize> {
        let n = st.shards.len();
        let mut failed: Option<usize> = None;
        let sent: Vec<bool> = (0..n)
            .map(|k| match self.shard_send(st, k, &line_for(k)) {
                Ok(()) => true,
                Err(_) => {
                    failed = failed.or(Some(k));
                    false
                }
            })
            .collect();
        let mut responses = Vec::with_capacity(n);
        for (k, sent) in sent.iter().enumerate() {
            if !sent {
                continue;
            }
            match self.shard_recv(st, k) {
                Ok(line) => responses.push(line),
                Err(_) => failed = failed.or(Some(k)),
            }
        }
        match failed {
            Some(k) => Err(k),
            None => Ok(responses),
        }
    }

    fn unavailable(&self, st: &mut State, k: usize) -> String {
        self.metrics.shard_unavailable.inc_always();
        st.shards[k].errors += 1;
        let addr = &st.shards[k].addr;
        Response::error(
            ErrorCode::ShardUnavailable,
            format!("shard {k} ({addr}) is unavailable; retry once it rejoins"),
        )
        .encode()
    }

    // -- prepare routing ---------------------------------------------

    /// Routes a plain prepare to the single shard owning its inputs
    /// and rewrites the handle into router space.
    fn prepare_single(
        &self,
        st: &mut State,
        einsum: &str,
        inputs: &[(String, String)],
        line: &str,
    ) -> String {
        let owner = match self.prepare_owner(st, einsum, inputs) {
            Ok(owner) => owner,
            Err(response) => return response,
        };
        self.metrics.forwarded.inc_always();
        let response =
            match self.shard_send(st, owner, line).and_then(|()| self.shard_recv(st, owner)) {
                Ok(r) => r,
                Err(_) => return self.unavailable(st, owner),
            };
        match Response::decode(&response) {
            Ok(Response::Prepared { kernel, splittable, split, warning }) => {
                let epoch = st.shards[owner].epoch;
                let router_handle =
                    self.intern(st, HandleKey::Single(owner, epoch, kernel), || {
                        HandleEntry::Single { shard: owner, epoch, handle: kernel }
                    });
                Response::Prepared { kernel: router_handle, splittable, split, warning }.encode()
            }
            // Errors (and anything unexpected) relay verbatim — the
            // worker's bytes are the canonical bytes.
            _ => response,
        }
    }

    /// Broadcasts a `"sharded":true` prepare to every shard, records
    /// the merge schedule, and rewrites the handle.
    fn prepare_sharded(
        &self,
        st: &mut State,
        einsum: &str,
        inputs: &[(String, String)],
        line: &str,
    ) -> String {
        let names = match referenced_inputs(einsum, inputs) {
            Some(names) => names,
            // Unparseable einsums take the single-shard path so the
            // worker's canonical compile error comes back.
            None => return self.prepare_single(st, einsum, inputs, line),
        };
        if let Some(name) =
            names.iter().find(|name| st.placements.get(*name) != Some(&Placement::Replicate))
        {
            return Response::error(
                ErrorCode::InvalidKernel,
                format!(
                    "sharded kernels read their inputs on every shard: register `{name}` \
                     with \"placement\":\"replicate\" before preparing with \"sharded\":true"
                ),
            )
            .encode();
        }
        st.counts.fanouts += 1;
        self.metrics.broadcasts.inc_always();
        let responses = match self.fan_out_lines(st, |_| line.to_string()) {
            Ok(responses) => responses,
            Err(k) => return self.unavailable(st, k),
        };
        let decoded = Response::decode(&responses[0]);
        let Ok(Response::Prepared { splittable, split, warning, .. }) = decoded else {
            // A compile error is identical on every shard; relay leg 0.
            return responses.into_iter().next().expect("at least one shard");
        };
        let mut handles = Vec::with_capacity(responses.len());
        for (k, response) in responses.iter().enumerate() {
            match Response::decode(response) {
                Ok(Response::Prepared { kernel, .. }) => handles.push((st.shards[k].epoch, kernel)),
                _ => {
                    return Response::error(
                        ErrorCode::Internal,
                        format!("shard {k} disagreed with shard 0 about a broadcast prepare"),
                    )
                    .encode()
                }
            }
        }
        let router_handle =
            match split.clone() {
                // Splittable with a merge schedule: runs fan out.
                Some(merge) => {
                    // Alias the entry under the shard that a *plain*
                    // prepare of this spec would route to, so sharded and
                    // plain prepares of one spec dedup to one handle —
                    // exactly like a single process, whose dedup key
                    // ignores `sharded`.
                    let owner = self.replicated_owner(einsum);
                    let single = HandleKey::Single(owner, handles[owner].0, handles[owner].1);
                    if let Some(&existing) = st.dedup.get(&HandleKey::Sharded(handles.clone())) {
                        existing
                    } else if let Some(&existing) = st.dedup.get(&single) {
                        st.handles[usize::try_from(existing).expect("router handles fit usize")] =
                            HandleEntry::Sharded { handles: handles.clone(), merge };
                        st.dedup.insert(HandleKey::Sharded(handles), existing);
                        existing
                    } else {
                        let minted = st.handles.len() as u64;
                        st.handles.push(HandleEntry::Sharded { handles: handles.clone(), merge });
                        st.dedup.insert(HandleKey::Sharded(handles), minted);
                        st.dedup.insert(single, minted);
                        minted
                    }
                }
                // Not splittable: every shard compiled it, but runs
                // forward whole to the plain-prepare owner.
                None => {
                    let owner = self.replicated_owner(einsum);
                    let (epoch, handle) = handles[owner];
                    self.intern(st, HandleKey::Single(owner, epoch, handle), || {
                        HandleEntry::Single { shard: owner, epoch, handle }
                    })
                }
            };
        Response::Prepared { kernel: router_handle, splittable, split, warning }.encode()
    }

    /// The shard a plain prepare routes to: the owner of its
    /// hash-placed inputs, which must agree. Specs reading only
    /// replicated tensors run anywhere; the ring picks a deterministic
    /// home from the spec text itself.
    fn prepare_owner(
        &self,
        st: &State,
        einsum: &str,
        inputs: &[(String, String)],
    ) -> Result<usize, String> {
        let Some(names) = referenced_inputs(einsum, inputs) else {
            // Unparseable: any worker reproduces the canonical error.
            return Ok(self.replicated_owner(einsum));
        };
        let mut owners: Vec<(usize, &str)> = Vec::new();
        for name in &names {
            if st.placements.get(name) == Some(&Placement::Replicate) {
                continue;
            }
            let owner = self.ring.shard_for(name);
            if !owners.iter().any(|&(o, _)| o == owner) {
                owners.push((owner, name));
            }
        }
        match owners.as_slice() {
            [] => Ok(self.replicated_owner(einsum)),
            [(owner, _)] => Ok(*owner),
            [(_, a), (_, b), ..] => Err(Response::error(
                ErrorCode::InvalidKernel,
                format!(
                    "tensors `{a}` and `{b}` live on different shards: co-locate them with a \
                     shared {{tag}} hash tag, register them with \"placement\":\"replicate\", \
                     or prepare with \"sharded\":true"
                ),
            )
            .encode()),
        }
    }

    fn replicated_owner(&self, einsum: &str) -> usize {
        self.ring.shard_for(einsum)
    }

    fn intern(&self, st: &mut State, key: HandleKey, entry: impl FnOnce() -> HandleEntry) -> u64 {
        if let Some(&existing) = st.dedup.get(&key) {
            return existing;
        }
        let minted = st.handles.len() as u64;
        st.handles.push(entry());
        st.dedup.insert(key, minted);
        minted
    }

    // -- run routing --------------------------------------------------

    fn run(&self, st: &mut State, kernel: u64, full: bool) -> String {
        let Some(entry) = usize::try_from(kernel).ok().filter(|&k| k < st.handles.len()) else {
            // The router's handle space advances in lockstep with a
            // single process fed the same stream, so even this error
            // is byte-identical to the engine's.
            return Response::error(
                ErrorCode::UnknownKernel,
                format!("no kernel with handle {kernel} (have {})", st.handles.len()),
            )
            .encode();
        };
        match &st.handles[entry] {
            HandleEntry::Single { shard, epoch, handle } => {
                let (shard, epoch, handle) = (*shard, *epoch, *handle);
                if st.shards[shard].epoch != epoch {
                    return self.stale_handle(kernel, shard);
                }
                let line = Request::Run { kernel: handle, full, shard: None }.encode();
                self.forward(st, shard, &line)
            }
            HandleEntry::Sharded { handles, merge } => {
                let (handles, merge) = (handles.clone(), merge.clone());
                if let Some(k) = (0..handles.len()).find(|&k| st.shards[k].epoch != handles[k].0) {
                    return self.stale_handle(kernel, k);
                }
                if full {
                    // Output replication wants the whole result; the
                    // inputs are replicated, so one shard can run the
                    // entire kernel. Spread by handle, deterministically.
                    let shard = entry % handles.len();
                    let line =
                        Request::Run { kernel: handles[shard].1, full, shard: None }.encode();
                    return self.forward(st, shard, &line);
                }
                self.run_sharded(st, &handles, &merge)
            }
        }
    }

    fn stale_handle(&self, kernel: u64, shard: usize) -> String {
        Response::error(
            ErrorCode::UnknownKernel,
            format!(
                "kernel {kernel} was prepared on shard {shard} before it restarted; \
                 prepare the spec again to mint a live handle"
            ),
        )
        .encode()
    }

    /// The sharded hot path: pipelined row-range fan-out, then the
    /// deterministic merge.
    fn run_sharded(
        &self,
        st: &mut State,
        handles: &[(u64, u64)],
        merge: &[(String, MergeRule)],
    ) -> String {
        st.counts.sharded_runs += 1;
        self.metrics.fanouts.inc_always();
        let n = handles.len() as u64;
        let responses = match self.fan_out_lines(st, |k| {
            Request::Run { kernel: handles[k].1, full: false, shard: Some((k as u64, n)) }.encode()
        }) {
            Ok(responses) => responses,
            Err(k) => return self.unavailable(st, k),
        };
        let started = Instant::now();
        let mut legs = Vec::with_capacity(responses.len());
        for (k, response) in responses.iter().enumerate() {
            match Response::decode(response) {
                Ok(Response::Ran { outputs, counters }) => legs.push((outputs, counters)),
                // A failed leg answers for the whole run: the first
                // failing shard's structured error relays verbatim, so
                // a panic on one shard is still a retryable
                // internal_error at the front.
                Ok(Response::Error { .. }) => return response.clone(),
                _ => {
                    return Response::error(
                        ErrorCode::Internal,
                        format!("shard {k} answered a row-range run with the wrong reply kind"),
                    )
                    .encode()
                }
            }
        }
        let merged = match merge_legs(legs, merge) {
            Ok(response) => response.encode(),
            Err(message) => Response::error(ErrorCode::Internal, message).encode(),
        };
        self.metrics.merges.inc_always();
        let us = started.elapsed().as_micros();
        self.metrics.merge_us.record(u64::try_from(us).unwrap_or(u64::MAX));
        merged
    }

    // -- introspection ------------------------------------------------

    fn cluster_stats(&self, st: &mut State) -> String {
        let occupancy = self.ring.occupancy();
        let router = RouterCountsPayload {
            register_tensor: st.counts.register_tensor,
            prepare: st.counts.prepare,
            run: st.counts.run,
            sharded_runs: st.counts.sharded_runs,
            fanouts: st.counts.fanouts,
            replicated: st.counts.replicated,
            errors: st.counts.errors,
        };
        let shards = st
            .shards
            .iter()
            .enumerate()
            .map(|(k, shard)| ShardStatPayload {
                shard: k as u64,
                addr: shard.addr.clone(),
                healthy: shard.conn.is_some(),
                vnodes: occupancy[k],
                keys: st
                    .placements
                    .iter()
                    .filter(|(name, placement)| {
                        **placement == Placement::Hash && self.ring.shard_for(name) == k
                    })
                    .count() as u64,
                forwarded: shard.forwarded,
                errors: shard.errors,
            })
            .collect();
        Response::ClusterStats { router, shards }.encode()
    }

    /// The router's own Prometheus exposition — families in sorted
    /// name order, integer values, byte-identical across idle scrapes,
    /// like the worker's.
    fn metrics_text(&self, st: &mut State) -> String {
        let healthy = st.shards.iter().filter(|s| s.conn.is_some()).count() as u64;
        self.metrics.shards_healthy.set(healthy);
        let m = &self.metrics;
        let mut w = systec_telemetry::prom::PromWriter::new();
        w.family("systec_router_broadcasts_total", "counter", "Requests broadcast to every shard.");
        w.sample("systec_router_broadcasts_total", &[], m.broadcasts.get());
        w.family(
            "systec_router_fanouts_total",
            "counter",
            "Sharded runs fanned out as row-range sub-requests.",
        );
        w.sample("systec_router_fanouts_total", &[], m.fanouts.get());
        w.family(
            "systec_router_forwarded_total",
            "counter",
            "Requests forwarded to a single owning shard.",
        );
        w.sample("systec_router_forwarded_total", &[], m.forwarded.get());
        w.family(
            "systec_router_merge_us",
            "histogram",
            "Sharded-run merge latency in microseconds.",
        );
        w.histogram("systec_router_merge_us", &[], &m.merge_us.snapshot());
        w.family("systec_router_merges_total", "counter", "Sharded-run merges performed.");
        w.sample("systec_router_merges_total", &[], m.merges.get());
        w.family(
            "systec_router_reconnects_total",
            "counter",
            "Successful shard reconnects (each invalidates the shard's handles).",
        );
        w.sample("systec_router_reconnects_total", &[], m.reconnects.get());
        w.family(
            "systec_router_shard_errors_total",
            "counter",
            "Transport failures talking to shards.",
        );
        w.sample("systec_router_shard_errors_total", &[], m.shard_errors.get());
        w.family(
            "systec_router_shard_unavailable_total",
            "counter",
            "Requests refused because the owning shard was down.",
        );
        w.sample("systec_router_shard_unavailable_total", &[], m.shard_unavailable.get());
        w.family("systec_router_shards_healthy", "gauge", "Shards currently connected.");
        w.sample("systec_router_shards_healthy", &[], m.shards_healthy.get());
        Response::Metrics { text: w.finish() }.encode()
    }
}

/// The registered tensor names a prepare reads: every access on the
/// einsum's right-hand side, remapped through the request's input
/// bindings. `None` when the einsum does not parse.
fn referenced_inputs(einsum: &str, bindings: &[(String, String)]) -> Option<Vec<String>> {
    let parsed = systec_ir::parse_einsum(einsum).ok()?;
    let mut names: Vec<String> = parsed
        .rhs
        .accesses()
        .iter()
        .map(|access| {
            let name = access.tensor.name.as_str();
            bindings
                .iter()
                .find(|(einsum_name, _)| einsum_name == name)
                .map_or_else(|| name.to_string(), |(_, registered)| registered.clone())
        })
        .collect();
    names.sort();
    names.dedup();
    Some(names)
}

/// Merges per-shard `Ran` legs into the single-process response:
/// row-owned outputs take each shard's row window, reduction outputs
/// fold in fixed shard order starting from leg 0 (exact, because every
/// worker initializes reduced outputs to the fold identity), counters
/// sum (exact, integers).
fn merge_legs(
    legs: Vec<(Vec<OutputPayload>, CounterPayload)>,
    merge: &[(String, MergeRule)],
) -> Result<Response, String> {
    let shards = legs.len();
    let mut legs = legs.into_iter();
    let (mut outputs, mut counters) = legs.next().ok_or("a fan-out needs at least one leg")?;
    for (k, (leg_outputs, leg_counters)) in legs.enumerate() {
        let k = k + 1; // leg 0 seeded the accumulators
        if leg_outputs.len() != outputs.len() {
            return Err(format!("shard {k} returned a different output set than shard 0"));
        }
        for (accumulated, leg) in outputs.iter_mut().zip(leg_outputs) {
            if leg.name != accumulated.name
                || leg.dims != accumulated.dims
                || leg.values.len() != accumulated.values.len()
            {
                return Err(format!(
                    "shard {k} returned a mismatched shape for output `{}`",
                    accumulated.name
                ));
            }
            let rule = merge
                .iter()
                .find(|(name, _)| *name == accumulated.name)
                .map(|(_, rule)| *rule)
                .ok_or_else(|| format!("no merge rule for output `{}`", accumulated.name))?;
            match rule {
                MergeRule::Rows => {
                    // Shard k owns head rows [k*E/n, (k+1)*E/n) — the
                    // same integer window arithmetic the workers chunk
                    // by, so concatenation is exact.
                    let rows = accumulated.dims.first().copied().unwrap_or(1).max(1);
                    let stride = accumulated.values.len() / rows.max(1);
                    let lo = k * rows / shards * stride;
                    let hi = (k + 1) * rows / shards * stride;
                    accumulated.values[lo..hi].copy_from_slice(&leg.values[lo..hi]);
                }
                MergeRule::Add => {
                    for (a, v) in accumulated.values.iter_mut().zip(&leg.values) {
                        *a += v;
                    }
                }
                MergeRule::Min => {
                    for (a, v) in accumulated.values.iter_mut().zip(&leg.values) {
                        *a = a.min(*v);
                    }
                }
                MergeRule::Max => {
                    for (a, v) in accumulated.values.iter_mut().zip(&leg.values) {
                        *a = a.max(*v);
                    }
                }
            }
        }
        counters.flops += leg_counters.flops;
        counters.writes += leg_counters.writes;
        counters.iterations += leg_counters.iterations;
        for (name, count) in leg_counters.reads {
            match counters.reads.iter_mut().find(|(have, _)| *have == name) {
                Some((_, total)) => *total += count,
                None => counters.reads.push((name, count)),
            }
        }
    }
    // A leg only reports tensors its row window touched, so the union
    // can arrive in any order; the single process sorts by name.
    counters.reads.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Response::Ran { outputs, counters })
}

// ---------------------------------------------------------------------
// The listening front
// ---------------------------------------------------------------------

/// A running router bound to a socket. Dropping it does **not** stop
/// the accept loop; send `{"op":"shutdown"}` (which also shuts the
/// shards down) and call [`RunningRouter::wait`].
pub struct RunningRouter {
    addr: SocketAddr,
    router: Arc<Router>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl RunningRouter {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared routing core (for supervisors checking the shutdown
    /// flag).
    #[must_use]
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Blocks until the accept loop exits (after a `shutdown` request).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr`, connects to every shard, and serves the cluster.
///
/// # Errors
///
/// Bind failures and unreachable shards.
pub fn route(
    addr: &str,
    shard_addrs: &[String],
    config: RouterConfig,
) -> std::io::Result<RunningRouter> {
    let router = Arc::new(Router::connect(shard_addrs, &config)?);
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let accept_router = Arc::clone(&router);
    let accept = std::thread::Builder::new()
        .name("systec-router-accept".into())
        .spawn(move || accept_loop(&listener, bound, &accept_router))
        .expect("spawn router accept thread");
    Ok(RunningRouter { addr: bound, router, accept: Some(accept) })
}

fn accept_loop(listener: &TcpListener, bound: SocketAddr, router: &Arc<Router>) {
    for stream in listener.incoming() {
        if router.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_router = Arc::clone(router);
        let _ = std::thread::Builder::new()
            .name("systec-router-conn".into())
            .spawn(move || serve_conn(&stream, &conn_router));
        let _ = bound; // connections carry their own copy of the core
    }
}

fn serve_conn(stream: &TcpStream, router: &Arc<Router>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        let response = router.respond(&line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        if router.shutdown.load(Ordering::SeqCst) {
            // Wake the accept loop so `wait` can return; the
            // connection that requested shutdown got its ack above.
            let _ = TcpStream::connect(stream.local_addr().expect("bound socket"));
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_folds_reduced_outputs_and_windows_row_outputs() {
        let out = |values: Vec<f64>| OutputPayload { name: "y".into(), dims: vec![4], values };
        let rows = |values: Vec<f64>| OutputPayload { name: "z".into(), dims: vec![4, 2], values };
        let counters = |flops| CounterPayload {
            flops,
            writes: 1,
            iterations: 2,
            reads: vec![("A".into(), 3)],
        };
        let legs = vec![
            (vec![out(vec![1.0, 2.0, 0.0, 0.0]), rows(vec![9.0; 8])], counters(10)),
            (
                vec![
                    out(vec![0.0, 1.0, 3.0, 4.0]),
                    rows(vec![0.0, 0.0, 0.0, 0.0, 5.0, 6.0, 7.0, 8.0]),
                ],
                counters(5),
            ),
        ];
        let merge = vec![("y".to_string(), MergeRule::Add), ("z".to_string(), MergeRule::Rows)];
        let Ok(Response::Ran { outputs, counters }) = merge_legs(legs, &merge) else {
            panic!("merge failed")
        };
        assert_eq!(outputs[0].values, vec![1.0, 3.0, 3.0, 4.0]);
        // Shard 1 owns rows 2..4 of the 4×2 output: its last four
        // values replace shard 0's window.
        assert_eq!(outputs[1].values, vec![9.0, 9.0, 9.0, 9.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(counters.flops, 15);
        assert_eq!(counters.writes, 2);
        assert_eq!(counters.iterations, 4);
        assert_eq!(counters.reads, vec![("A".to_string(), 6)]);
    }

    #[test]
    fn merge_min_and_max_fold_through_identities() {
        let out = |name: &str, values: Vec<f64>| OutputPayload {
            name: name.into(),
            dims: vec![2],
            values,
        };
        let counters = CounterPayload::default();
        let legs = vec![
            (
                vec![out("lo", vec![3.0, f64::INFINITY]), out("hi", vec![1.0, f64::NEG_INFINITY])],
                counters.clone(),
            ),
            (
                vec![out("lo", vec![f64::INFINITY, 2.0]), out("hi", vec![f64::NEG_INFINITY, 4.0])],
                counters,
            ),
        ];
        let merge = vec![("hi".to_string(), MergeRule::Max), ("lo".to_string(), MergeRule::Min)];
        let Ok(Response::Ran { outputs, .. }) = merge_legs(legs, &merge) else {
            panic!("merge failed")
        };
        assert_eq!(outputs[0].values, vec![3.0, 2.0]);
        assert_eq!(outputs[1].values, vec![1.0, 4.0]);
    }

    #[test]
    fn referenced_inputs_remap_bindings_and_dedup() {
        let names = referenced_inputs(
            "for i, j: y[i] += A[i, j] * x[j] + A[i, j]",
            &[("x".to_string(), "weights".to_string())],
        )
        .expect("parses");
        assert_eq!(names, vec!["A".to_string(), "weights".to_string()]);
        assert!(referenced_inputs("for i j nonsense", &[]).is_none());
    }
}
