//! Sharded multi-process serving for SySTeC kernels.
//!
//! A `systec-router` process is the single TCP endpoint of a cluster of
//! `systec-serve` workers. It speaks *exactly* the worker's
//! line-delimited JSON protocol — clients built against one process
//! point at the router unchanged — and places work across shards with a
//! consistent-hash ring ([`ring`]) or a row-range fan-out with
//! deterministic reduction merges ([`router`]).
//!
//! The load-bearing invariant, enforced by the cluster differential
//! tier at the repo root: a router in front of N workers answers every
//! request **byte-for-byte identically** to one worker fed the same
//! stream — including merged sharded-run outputs and their work
//! counters, and including error lines.

pub mod ring;
pub mod router;

/// Recovers a mutex even when a panic elsewhere poisoned it: the
/// router's shared state stays consistent across handler panics for
/// the same reason the worker's does — a poisoned lock must not take
/// the whole front down.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub use ring::{routing_key, HashRing, DEFAULT_VNODES};
pub use router::{route, Router, RouterConfig, RunningRouter};
