//! Consistent-hash ring with virtual nodes.
//!
//! Tensor names map to shard ordinals through a classic consistent-hash
//! ring: every shard owns [`DEFAULT_VNODES`] pseudo-random points on a
//! `u64` circle, and a key belongs to the shard owning the first point
//! at or clockwise after the key's hash. The properties the router (and
//! the property tier) rely on:
//!
//! * **deterministic** — the ring is a pure function of the shard
//!   count, so every router instance over the same shard list agrees on
//!   every placement, across processes and restarts;
//! * **bounded** — `shard_for` always returns an ordinal `< shards`;
//! * **minimal disruption** — growing an `n`-shard ring to `n + 1`
//!   only moves keys *onto* the new shard (the old shards' points are a
//!   prefix of the new ring), and shrinking only moves keys *off* the
//!   removed shard;
//! * **hash tags** — a name containing `{tag}` is routed by `tag`
//!   alone, so clients can co-locate the operands of one kernel
//!   (`"{job7}A"`, `"{job7}x"`) without replicating them everywhere.

/// Virtual nodes per shard. 64 keeps the per-shard key share within a
/// few percent of uniform while the ring stays small enough to rebuild
/// on every topology change.
pub const DEFAULT_VNODES: usize = 64;

/// The consistent-hash ring: sorted `(point, shard)` pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    shards: usize,
    vnodes: usize,
}

/// The substring a key is routed by: the contents of the first
/// non-empty `{…}` group if present, the whole name otherwise (the
/// same convention Redis Cluster uses for multi-key operations).
pub fn routing_key(name: &str) -> &str {
    if let Some(open) = name.find('{') {
        if let Some(len) = name[open + 1..].find('}') {
            if len > 0 {
                return &name[open + 1..open + 1 + len];
            }
        }
    }
    name
}

/// FNV-1a over the bytes, then a splitmix64 finalizer: FNV alone
/// clusters short sequential names (`t0`, `t1`, …) on nearby points;
/// the finalizer scatters them.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HashRing {
    /// A ring over `shards` shards with [`DEFAULT_VNODES`] points each.
    ///
    /// # Panics
    ///
    /// With zero shards — an empty ring can place nothing.
    #[must_use]
    pub fn new(shards: usize) -> HashRing {
        HashRing::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit per-shard vnode count (≥ 1).
    ///
    /// # Panics
    ///
    /// With zero shards or zero vnodes.
    #[must_use]
    pub fn with_vnodes(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a hash ring needs at least one shard");
        assert!(vnodes > 0, "a hash ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((hash_bytes(format!("shard:{shard}:vnode:{vnode}").as_bytes()), shard));
            }
        }
        // Ties (astronomically unlikely 64-bit collisions) resolve to
        // the lower shard ordinal so the ring stays deterministic.
        points.sort_unstable();
        HashRing { points, shards, vnodes }
    }

    /// The owning shard for `name` (routed by [`routing_key`]).
    #[must_use]
    pub fn shard_for(&self, name: &str) -> usize {
        let point = hash_bytes(routing_key(name).as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < point);
        // Clockwise wrap: past the last point lands on the first.
        self.points[at % self.points.len()].1
    }

    /// The shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Per-shard share of the hash circle, in points-owned terms: for
    /// each shard, how many of the ring's arcs it terminates. Equal to
    /// `vnodes()` for every shard by construction; exposed so cluster
    /// stats report the ring's actual occupancy rather than assuming
    /// it.
    #[must_use]
    pub fn occupancy(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.shards];
        for &(_, shard) in &self.points {
            counts[shard] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_tags_colocate_and_plain_names_use_the_whole_string() {
        let ring = HashRing::new(5);
        assert_eq!(ring.shard_for("{job7}A"), ring.shard_for("{job7}x"));
        assert_eq!(ring.shard_for("{job7}A"), ring.shard_for("job7"));
        // Empty or unclosed groups fall back to the whole name.
        assert_eq!(routing_key("{}A"), "{}A");
        assert_eq!(routing_key("{A"), "{A");
        assert_eq!(routing_key("A}"), "A}");
        assert_eq!(routing_key("{t}rest{u}"), "t");
    }

    #[test]
    fn occupancy_matches_the_vnode_budget() {
        let ring = HashRing::with_vnodes(3, 16);
        assert_eq!(ring.occupancy(), vec![16, 16, 16]);
    }
}
