//! # systec-kernels
//!
//! The paper's evaluation kernels (§5.2), end to end: einsum definitions
//! with their symmetry declarations ([`defs`]), a prepare-once/run-many
//! runner ([`Prepared`]) that mirrors the paper's timing methodology, and
//! hand-written native baselines ([`native`]) standing in for the
//! library comparators (MKL's `mkl_dcsrsymv`, SPLATT, TACO).
//!
//! ## Kernels
//!
//! | Kernel | Assignment | Symmetric input | Figure |
//! |---|---|---|---|
//! | SSYMV | `y[i] += A[i,j] * x[j]` | `A` (matrix) | 6 |
//! | Bellman-Ford | `y[i] min= A[i,j] + d[j]` | `A` | 7 |
//! | SYPRD | `y[] += x[i] * A[i,j] * x[j]` | `A` | 8 |
//! | SSYRK | `C[i,j] += A[i,k] * A[j,k]` | none (output symmetric) | 9 |
//! | TTM | `C[i,j,l] += A[k,j,l] * B[k,i]` | `A` (3-d) | 10 |
//! | MTTKRP 3/4/5-d | `C[i,j] += A[i,k,…] * Πₘ B[m,j]` | `A` | 11 |
//!
//! ## Example
//!
//! ```
//! use systec_kernels::{defs, Prepared};
//! use systec_tensor::generate::{rng, random_dense, symmetric_erdos_renyi};
//!
//! let kernel = defs::ssymv();
//! let mut r = rng(1);
//! let a = symmetric_erdos_renyi(20, 2, 0.1, &mut r);
//! let x = random_dense(vec![20], &mut r);
//! let inputs = kernel.inputs([("A", a.into()), ("x", x.into())]).unwrap();
//!
//! let symmetric = Prepared::compile(&kernel, &inputs).unwrap();
//! let naive = Prepared::naive(&kernel, &inputs).unwrap();
//! let (y_sym, counters_sym) = symmetric.run_full().unwrap();
//! let (y_naive, counters_naive) = naive.run_full().unwrap();
//! assert!(y_sym["y"].max_abs_diff(&y_naive["y"]).unwrap() < 1e-9);
//! // The symmetric kernel reads roughly half of A.
//! assert!(counters_sym.reads_of_family("A") < counters_naive.reads_of_family("A"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defs;
pub mod native;
mod prepare;
pub mod spec;

pub use defs::{InputData, KernelDef};
pub use prepare::{clear_plan_cache, plan_cache_stats, serial_fallback_note, Backend, Prepared};
pub use spec::parse_symmetry;
pub use systec_codegen::{CounterMode, ExecContext, LaneMode, Parallelism};
pub use systec_exec::Counters;
