//! Hand-written native kernels: the library comparators of §5.2.
//!
//! These are direct Rust implementations over raw CSR/CSF arrays, filling
//! the roles of the paper's external baselines:
//!
//! * [`csr_spmv`] — what TACO emits for SpMV (simple loop bounds, no
//!   conditionals): the "TACO" series.
//! * [`symmetric_csr_spmv`] — a symmetric CSR SpMV over the upper
//!   triangle: the "MKL `mkl_dcsrsymv`" series.
//! * [`csf_mttkrp3`] — a CSF-based 3-d MTTKRP with a row workspace: the
//!   "SPLATT" series.
//! * [`csr_syprd`], [`csr_bellman_ford`], [`csr_ssyrk`] — native
//!   references for the remaining kernels.
//!
//! They also serve as independent correctness oracles for the compiled
//! kernels (different code path, same mathematics). Being compiled
//! native loops, their absolute times are not comparable to the
//! interpreter's; the harness reports them in a separate column.

use systec_tensor::{DenseTensor, SparseTensor};

/// Plain CSR sparse matrix-vector multiply `y = A x` (the TACO-like
/// baseline).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn csr_spmv(a: &SparseTensor, x: &DenseTensor) -> DenseTensor {
    assert_eq!(a.rank(), 2, "csr_spmv needs a matrix");
    assert_eq!(a.dims()[1], x.dims()[0], "dimension mismatch");
    let n = a.dims()[0];
    let mut y = DenseTensor::zeros(vec![n]);
    for i in 0..n {
        let Some(row) = a.level_find(0, 0, i) else { continue };
        let mut acc = 0.0;
        for (j, pos) in a.level_iter(1, row, 0, usize::MAX) {
            acc += a.value(pos) * x.get(&[j]);
        }
        *y.get_mut(&[i]) += acc;
    }
    y
}

/// Symmetric CSR SpMV reading only the stored upper triangle and
/// applying each off-diagonal entry twice (the MKL-`mkl_dcsrsymv`-like
/// baseline). `A` must be symmetric; entries below the diagonal are
/// skipped rather than assumed absent.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn symmetric_csr_spmv(a: &SparseTensor, x: &DenseTensor) -> DenseTensor {
    assert_eq!(a.rank(), 2, "symmetric_csr_spmv needs a matrix");
    assert_eq!(a.dims()[1], x.dims()[0], "dimension mismatch");
    let n = a.dims()[0];
    let mut y = DenseTensor::zeros(vec![n]);
    for i in 0..n {
        let Some(row) = a.level_find(0, 0, i) else { continue };
        let mut acc = 0.0;
        for (j, pos) in a.level_iter(1, row, i, usize::MAX) {
            let v = a.value(pos);
            if j == i {
                acc += v * x.get(&[j]);
            } else {
                acc += v * x.get(&[j]);
                *y.get_mut(&[j]) += v * x.get(&[i]);
            }
        }
        *y.get_mut(&[i]) += acc;
    }
    y
}

/// Native symmetric triple product `x' A x` over the upper triangle.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn csr_syprd(a: &SparseTensor, x: &DenseTensor) -> f64 {
    assert_eq!(a.rank(), 2, "csr_syprd needs a matrix");
    assert_eq!(a.dims()[1], x.dims()[0], "dimension mismatch");
    let n = a.dims()[0];
    let mut acc = 0.0;
    for i in 0..n {
        let Some(row) = a.level_find(0, 0, i) else { continue };
        for (j, pos) in a.level_iter(1, row, i, usize::MAX) {
            let v = a.value(pos) * x.get(&[i]) * x.get(&[j]);
            acc += if j == i { v } else { 2.0 * v };
        }
    }
    acc
}

/// Native Bellman-Ford relaxation step `y[i] = min(y0[i], min_j A[i,j] +
/// d[j])` over all stored edges.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn csr_bellman_ford(a: &SparseTensor, d: &DenseTensor, y0: &DenseTensor) -> DenseTensor {
    assert_eq!(a.rank(), 2, "csr_bellman_ford needs a matrix");
    assert_eq!(a.dims()[1], d.dims()[0], "dimension mismatch");
    let n = a.dims()[0];
    let mut y = y0.clone();
    for i in 0..n {
        let Some(row) = a.level_find(0, 0, i) else { continue };
        let mut best = y.get(&[i]);
        for (j, pos) in a.level_iter(1, row, 0, usize::MAX) {
            best = best.min(a.value(pos) + d.get(&[j]));
        }
        y.set(&[i], best);
    }
    y
}

/// Native SSYRK `C = A Aᵀ` computing only the upper triangle and
/// mirroring it (row-sparse dot products).
///
/// # Panics
///
/// Panics unless `A` is a matrix.
pub fn csr_ssyrk(a: &SparseTensor) -> DenseTensor {
    assert_eq!(a.rank(), 2, "csr_ssyrk needs a matrix");
    let n = a.dims()[0];
    let mut c = DenseTensor::zeros(vec![n, n]);
    // Gather each row densely once, then dot against later rows' stored
    // entries.
    for i in 0..n {
        let Some(row_i) = a.level_find(0, 0, i) else { continue };
        let entries_i: Vec<(usize, f64)> =
            a.level_iter(1, row_i, 0, usize::MAX).map(|(k, p)| (k, a.value(p))).collect();
        let mut dense_i = vec![0.0; a.dims()[1]];
        for &(k, v) in &entries_i {
            dense_i[k] = v;
        }
        for j in i..n {
            let Some(row_j) = a.level_find(0, 0, j) else { continue };
            let mut dot = 0.0;
            for (k, pos) in a.level_iter(1, row_j, 0, usize::MAX) {
                dot += dense_i[k] * a.value(pos);
            }
            if dot != 0.0 {
                c.set(&[i, j], dot);
                c.set(&[j, i], dot);
            }
        }
    }
    c
}

/// Native 3-d MTTKRP over CSF with a per-`i` row workspace — the core of
/// SPLATT's algorithm (§5.2.6 comparator): `C[i, :] += A[i, k, l] *
/// (B[k, :] ∘ B[l, :])`.
///
/// # Panics
///
/// Panics unless `A` is 3-dimensional and shapes agree.
pub fn csf_mttkrp3(a: &SparseTensor, b: &DenseTensor) -> DenseTensor {
    assert_eq!(a.rank(), 3, "csf_mttkrp3 needs a 3-d tensor");
    assert_eq!(a.dims()[1], b.dims()[0], "dimension mismatch");
    let (n, rank) = (a.dims()[0], b.dims()[1]);
    let mut c = DenseTensor::zeros(vec![n, rank]);
    let mut row = vec![0.0; rank];
    for i in 0..n {
        let Some(pos_i) = a.level_find(0, 0, i) else { continue };
        row.fill(0.0);
        for (k, pos_k) in a.level_iter(1, pos_i, 0, usize::MAX) {
            // Accumulate Σ_l A[i,k,l] · B[l,:] then scale by B[k,:]
            // (SPLATT's factored two-level scheme).
            let mut inner = vec![0.0; rank];
            for (l, pos_l) in a.level_iter(2, pos_k, 0, usize::MAX) {
                let v = a.value(pos_l);
                for (r, cell) in inner.iter_mut().enumerate() {
                    *cell += v * b.get(&[l, r]);
                }
            }
            for (r, cell) in row.iter_mut().enumerate() {
                *cell += inner[r] * b.get(&[k, r]);
            }
        }
        for (r, v) in row.iter().enumerate() {
            *c.get_mut(&[i, r]) += v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_tensor::generate::{random_dense, rng, sprand, symmetric_erdos_renyi};
    use systec_tensor::{csf, CooTensor, CSR};

    fn pack(coo: &CooTensor, rank: usize) -> SparseTensor {
        let fmts = if rank == 2 { CSR.to_vec() } else { csf(rank) };
        SparseTensor::from_coo(coo, &fmts).unwrap()
    }

    #[test]
    fn spmv_matches_dense_math() {
        let mut r = rng(1);
        let coo = sprand(12, 12, 40, &mut r);
        let a = pack(&coo, 2);
        let x = random_dense(vec![12], &mut r);
        let y = csr_spmv(&a, &x);
        for i in 0..12 {
            let expected: f64 = (0..12).map(|j| coo.get(&[i, j]) * x.get(&[j])).sum();
            assert!((y.get(&[i]) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn symmetric_spmv_matches_plain_spmv() {
        let mut r = rng(2);
        let coo = symmetric_erdos_renyi(15, 2, 0.2, &mut r);
        let a = pack(&coo, 2);
        let x = random_dense(vec![15], &mut r);
        let plain = csr_spmv(&a, &x);
        let sym = symmetric_csr_spmv(&a, &x);
        assert!(sym.max_abs_diff(&plain).unwrap() < 1e-10);
    }

    #[test]
    fn syprd_matches_quadratic_form() {
        let mut r = rng(3);
        let coo = symmetric_erdos_renyi(10, 2, 0.3, &mut r);
        let a = pack(&coo, 2);
        let x = random_dense(vec![10], &mut r);
        let got = csr_syprd(&a, &x);
        let mut expected = 0.0;
        for i in 0..10 {
            for j in 0..10 {
                expected += x.get(&[i]) * coo.get(&[i, j]) * x.get(&[j]);
            }
        }
        assert!((got - expected).abs() < 1e-10);
    }

    #[test]
    fn bellman_ford_relaxes() {
        let mut r = rng(4);
        let coo = symmetric_erdos_renyi(10, 2, 0.3, &mut r);
        let a = pack(&coo, 2);
        let d = random_dense(vec![10], &mut r);
        let y = csr_bellman_ford(&a, &d, &d);
        for i in 0..10 {
            let mut expected = d.get(&[i]);
            for j in 0..10 {
                let w = coo.get(&[i, j]);
                if w != 0.0 {
                    expected = expected.min(w + d.get(&[j]));
                }
            }
            assert!((y.get(&[i]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn ssyrk_matches_dense_product() {
        let mut r = rng(5);
        let coo = sprand(8, 8, 20, &mut r);
        let a = pack(&coo, 2);
        let c = csr_ssyrk(&a);
        for i in 0..8 {
            for j in 0..8 {
                let expected: f64 = (0..8).map(|k| coo.get(&[i, k]) * coo.get(&[j, k])).sum();
                assert!((c.get(&[i, j]) - expected).abs() < 1e-10, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn mttkrp3_matches_brute_force() {
        let mut r = rng(6);
        let coo = symmetric_erdos_renyi(8, 3, 0.05, &mut r);
        let a = pack(&coo, 3);
        let b = random_dense(vec![8, 4], &mut r);
        let c = csf_mttkrp3(&a, &b);
        for i in 0..8 {
            for jr in 0..4 {
                let mut expected = 0.0;
                for k in 0..8 {
                    for l in 0..8 {
                        expected += coo.get(&[i, k, l]) * b.get(&[k, jr]) * b.get(&[l, jr]);
                    }
                }
                assert!((c.get(&[i, jr]) - expected).abs() < 1e-10, "at ({i},{jr})");
            }
        }
    }
}
