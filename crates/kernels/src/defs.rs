//! Definitions of the paper's evaluation kernels.

use std::collections::HashMap;

use systec_core::{SymmetryPartition, SymmetrySpec};
use systec_ir::build::*;
use systec_ir::{AssignOp, Einsum};
use systec_tensor::{csf, CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor, TensorError};

/// How a kernel input is stored.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InputFormat {
    /// Dense strided storage.
    Dense,
    /// Compressed storage with the given per-mode level formats.
    Compressed(Vec<LevelFormat>),
}

/// Raw input data accepted by [`KernelDef::inputs`]: coordinates are
/// packed into the kernel's declared format, dense tensors pass through.
#[derive(Clone, PartialEq, Debug)]
pub enum InputData {
    /// Coordinate data (packed according to the kernel's format).
    Coo(CooTensor),
    /// Dense data.
    Dense(DenseTensor),
}

impl From<CooTensor> for InputData {
    fn from(c: CooTensor) -> Self {
        InputData::Coo(c)
    }
}

impl From<DenseTensor> for InputData {
    fn from(d: DenseTensor) -> Self {
        InputData::Dense(d)
    }
}

/// One of the paper's kernels: the einsum, its symmetry declarations,
/// and the storage format of each input.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelDef {
    /// Kernel name (`"ssymv"`, `"mttkrp3"`, …).
    pub name: &'static str,
    /// The pointwise einsum.
    pub einsum: Einsum,
    /// Declared input symmetries.
    pub symmetry: SymmetrySpec,
    /// Per-input storage formats.
    pub formats: HashMap<String, InputFormat>,
}

impl KernelDef {
    /// Packs raw input data into the kernel's declared formats.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if packing fails (format arity).
    ///
    /// # Panics
    ///
    /// Panics if an input name is not declared by the kernel.
    pub fn inputs<const N: usize>(
        &self,
        data: [(&str, InputData); N],
    ) -> Result<HashMap<String, Tensor>, TensorError> {
        let mut out = HashMap::new();
        for (name, value) in data {
            let format = self
                .formats
                .get(name)
                .unwrap_or_else(|| panic!("kernel {} has no input named {name}", self.name));
            let tensor = match (format, value) {
                (InputFormat::Dense, InputData::Dense(d)) => Tensor::Dense(d),
                (InputFormat::Dense, InputData::Coo(c)) => Tensor::Dense(c.to_dense()),
                (InputFormat::Compressed(fmts), InputData::Coo(c)) => {
                    Tensor::Sparse(SparseTensor::from_coo(&c, fmts)?)
                }
                (InputFormat::Compressed(fmts), InputData::Dense(d)) => {
                    Tensor::Sparse(SparseTensor::from_coo(&CooTensor::from_dense(&d), fmts)?)
                }
            };
            out.insert(name.to_string(), tensor);
        }
        Ok(out)
    }
}

fn compressed(rank: usize) -> InputFormat {
    InputFormat::Compressed(csf(rank))
}

/// SSYMV (§5.2.1): `y[i] += A[i, j] * x[j]`, symmetric compressed `A`,
/// dense `x` and `y`.
pub fn ssymv() -> KernelDef {
    KernelDef {
        name: "ssymv",
        einsum: Einsum::new(
            access("y", ["i"]),
            AssignOp::Add,
            mul([access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        ),
        symmetry: SymmetrySpec::new().with_full("A", 2),
        formats: HashMap::from([
            ("A".to_string(), compressed(2)),
            ("x".to_string(), InputFormat::Dense),
        ]),
    }
}

/// Bellman-Ford update (§5.2.2): `y[i] min= A[i, j] + d[j]` over the
/// tropical semiring; `A` holds symmetric edge distances.
pub fn bellman_ford() -> KernelDef {
    KernelDef {
        name: "bellman_ford",
        einsum: Einsum::new(
            access("y", ["i"]),
            AssignOp::Min,
            add([access("A", ["i", "j"]), access("d", ["j"])]),
            [idx("i"), idx("j")],
        ),
        symmetry: SymmetrySpec::new().with_full("A", 2),
        formats: HashMap::from([
            ("A".to_string(), compressed(2)),
            ("d".to_string(), InputFormat::Dense),
        ]),
    }
}

/// SYPRD (§5.2.3): `y[] += x[i] * A[i, j] * x[j]` — the symmetric triple
/// product, a scalar output with invisible `{{i, j}}` symmetry.
pub fn syprd() -> KernelDef {
    KernelDef {
        name: "syprd",
        einsum: Einsum::new(
            access("y", [] as [&str; 0]),
            AssignOp::Add,
            mul([access("x", ["i"]), access("A", ["i", "j"]), access("x", ["j"])]),
            [idx("i"), idx("j")],
        ),
        symmetry: SymmetrySpec::new().with_full("A", 2),
        formats: HashMap::from([
            ("A".to_string(), compressed(2)),
            ("x".to_string(), InputFormat::Dense),
        ]),
    }
}

/// SSYRK (§5.2.4): `C[i, j] += A[i, k] * A[j, k]` — `A` is *not*
/// symmetric, but `C` is by construction (visible output symmetry).
pub fn ssyrk() -> KernelDef {
    KernelDef {
        name: "ssyrk",
        einsum: Einsum::new(
            access("C", ["i", "j"]),
            AssignOp::Add,
            mul([access("A", ["i", "k"]), access("A", ["j", "k"])]),
            [idx("i"), idx("j"), idx("k")],
        ),
        symmetry: SymmetrySpec::new(),
        formats: HashMap::from([("A".to_string(), compressed(2))]),
    }
}

/// TTM (§5.2.5): `C[i, j, l] += A[k, j, l] * B[k, i]`, fully symmetric
/// 3-d compressed `A`, dense `B` and `C`.
pub fn ttm() -> KernelDef {
    KernelDef {
        name: "ttm",
        einsum: Einsum::new(
            access("C", ["i", "j", "l"]),
            AssignOp::Add,
            mul([access("A", ["k", "j", "l"]), access("B", ["k", "i"])]),
            [idx("j"), idx("k"), idx("l"), idx("i")],
        ),
        symmetry: SymmetrySpec::new().with_full("A", 3),
        formats: HashMap::from([
            ("A".to_string(), compressed(3)),
            ("B".to_string(), InputFormat::Dense),
        ]),
    }
}

/// MTTKRP (§5.2.6) of the given tensor order (3, 4 or 5):
/// `C[i, j] += A[i, k, l, …] * B[k, j] * B[l, j] * …` with fully
/// symmetric compressed `A` and a shared dense factor matrix `B`
/// (symmetric CPD uses one factor matrix for all modes).
///
/// # Panics
///
/// Panics unless `order` is 3, 4 or 5.
pub fn mttkrp(order: usize) -> KernelDef {
    assert!((3..=5).contains(&order), "paper evaluates MTTKRP for orders 3-5");
    let reduction: Vec<&str> = ["k", "l", "m", "n"][..order - 1].to_vec();
    let mut a_modes = vec!["i"];
    a_modes.extend(&reduction);
    let mut factors = vec![access("A", a_modes.clone())];
    for r in &reduction {
        factors.push(access("B", [*r, "j"]));
    }
    let mut order_idx: Vec<_> = a_modes.iter().map(|s| idx(s)).collect();
    order_idx.push(idx("j"));
    let name: &'static str = match order {
        3 => "mttkrp3",
        4 => "mttkrp4",
        _ => "mttkrp5",
    };
    KernelDef {
        name,
        einsum: Einsum::new(access("C", ["i", "j"]), AssignOp::Add, mul(factors), order_idx),
        symmetry: SymmetrySpec::new().with_full("A", order),
        formats: HashMap::from([
            ("A".to_string(), compressed(order)),
            ("B".to_string(), InputFormat::Dense),
        ]),
    }
}

/// A partially symmetric TTM variant used by tests and the extension
/// benchmarks: `A` is `{{1, 2}}`-symmetric only.
pub fn ttm_partial() -> KernelDef {
    let mut def = ttm();
    def.name = "ttm_partial";
    def.symmetry = SymmetrySpec::new().with_partition(
        "A",
        SymmetryPartition::from_parts(vec![vec![0], vec![1, 2]])
            .expect("static partition is valid"),
    );
    def
}

/// All kernels of the paper's evaluation, in figure order.
pub fn all() -> Vec<KernelDef> {
    vec![ssymv(), bellman_ford(), syprd(), ssyrk(), ttm(), mttkrp(3), mttkrp(4), mttkrp(5)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_construct() {
        let ks = all();
        assert_eq!(ks.len(), 8);
        let names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            ["ssymv", "bellman_ford", "syprd", "ssyrk", "ttm", "mttkrp3", "mttkrp4", "mttkrp5"]
        );
    }

    #[test]
    fn mttkrp_orders() {
        assert_eq!(mttkrp(3).einsum.rhs.accesses().len(), 3);
        assert_eq!(mttkrp(5).einsum.rhs.accesses().len(), 5);
        let k5 = mttkrp(5);
        assert_eq!(k5.einsum.rhs.accesses()[0].rank(), 5);
    }

    #[test]
    #[should_panic(expected = "orders 3-5")]
    fn mttkrp_rejects_order_6() {
        mttkrp(6);
    }

    #[test]
    fn inputs_pack_to_declared_formats() {
        let k = ssymv();
        let mut coo = CooTensor::new(vec![4, 4]);
        coo.push(&[0, 1], 1.0);
        coo.push(&[1, 0], 1.0);
        let inputs =
            k.inputs([("A", coo.into()), ("x", DenseTensor::zeros(vec![4]).into())]).unwrap();
        assert!(inputs["A"].as_sparse().is_some());
        assert!(inputs["x"].as_dense().is_some());
    }

    #[test]
    #[should_panic(expected = "no input named")]
    fn unknown_input_name_panics() {
        let k = ssymv();
        let _ = k.inputs([("Q", DenseTensor::zeros(vec![4]).into())]);
    }

    #[test]
    fn ttm_partial_has_two_element_chain() {
        let def = ttm_partial();
        let kernel = systec_core::Compiler::new().compile(&def.einsum, &def.symmetry).unwrap();
        assert_eq!(kernel.chain.len(), 2);
    }
}
