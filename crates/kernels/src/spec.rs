//! Textual kernel-spec helpers shared by the front ends.
//!
//! The `systec` CLI and the serving layer both accept kernels as text: an
//! einsum string (parsed by [`systec_ir::parse_einsum`]) plus symmetry
//! declarations in the CLI's `--sym` syntax. [`parse_symmetry`] turns
//! those declarations into a validated [`SymmetrySpec`] against the
//! einsum, so every front end rejects the same malformed specs with the
//! same messages.

use systec_core::{SymmetryPartition, SymmetrySpec};
use systec_ir::Einsum;

/// Parses symmetry declarations against an einsum.
///
/// Each declaration is either a bare tensor name (`"A"` — fully
/// symmetric) or `"A:0-1,2"` — a partition of the tensor's mode
/// positions into symmetric parts (`-` joins modes within a part, `,`
/// separates parts).
///
/// # Errors
///
/// Returns a human-readable message when a declared tensor is not read
/// by the einsum, a mode is not a number, or a partition does not cover
/// the tensor's modes disjointly.
pub fn parse_symmetry<S: AsRef<str>>(
    einsum: &Einsum,
    decls: impl IntoIterator<Item = S>,
) -> Result<SymmetrySpec, String> {
    let mut spec = SymmetrySpec::new();
    for decl in decls {
        let decl = decl.as_ref();
        let (name, parts) = match decl.split_once(':') {
            None => (decl, None),
            Some((name, parts)) => (name, Some(parts)),
        };
        let rank = match einsum.rhs.accesses().iter().find(|a| a.tensor.name == name) {
            Some(a) => a.rank(),
            None => return Err(format!("symmetry `{name}`: the einsum does not read `{name}`")),
        };
        spec = match parts {
            None => spec.with_full(name, rank),
            Some(parts) => {
                let parsed: Result<Vec<Vec<usize>>, String> = parts
                    .split(',')
                    .map(|part| {
                        part.split('-')
                            .map(|m| {
                                m.parse::<usize>().map_err(|_| {
                                    format!("symmetry `{name}`: bad mode `{m}` in `{decl}`")
                                })
                            })
                            .collect()
                    })
                    .collect();
                match SymmetryPartition::from_parts(parsed?) {
                    Some(p) => spec.with_partition(name, p),
                    None => {
                        return Err(format!(
                            "symmetry `{name}`: parts must cover modes 0..{rank} disjointly"
                        ))
                    }
                }
            }
        };
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systec_ir::parse_einsum;

    fn ssymv() -> Einsum {
        parse_einsum("for i, j: y[i] += A[i, j] * x[j]").unwrap()
    }

    #[test]
    fn bare_name_declares_full_symmetry() {
        let spec = parse_symmetry(&ssymv(), ["A"]).unwrap();
        let p = spec.partition("A").expect("A is declared");
        assert_eq!(p.parts().collect::<Vec<_>>(), vec![&[0usize, 1][..]]);
    }

    #[test]
    fn partition_syntax_parses() {
        let e = parse_einsum("for j, k, l, i: C[i, j, l] += A[k, j, l] * B[k, i]").unwrap();
        let spec = parse_symmetry(&e, ["A:0,1-2"]).unwrap();
        let p = spec.partition("A").expect("A is declared");
        assert_eq!(p.parts().collect::<Vec<_>>(), vec![&[0usize][..], &[1, 2][..]]);
    }

    #[test]
    fn unknown_tensor_is_rejected() {
        let err = parse_symmetry(&ssymv(), ["Q"]).unwrap_err();
        assert!(err.contains("does not read `Q`"), "{err}");
    }

    #[test]
    fn bad_mode_and_bad_partition_are_rejected() {
        let err = parse_symmetry(&ssymv(), ["A:0-one"]).unwrap_err();
        assert!(err.contains("bad mode `one`"), "{err}");
        let err = parse_symmetry(&ssymv(), ["A:0-0"]).unwrap_err();
        assert!(err.contains("disjointly"), "{err}");
    }

    #[test]
    fn empty_declaration_list_is_the_empty_spec() {
        let spec = parse_symmetry(&ssymv(), [] as [&str; 0]).unwrap();
        assert!(spec.partition("A").is_none());
    }
}
