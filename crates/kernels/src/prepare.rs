//! The prepare-once / run-many kernel runner.
//!
//! The paper's methodology (§5.2) times only the kernel itself: data
//! rearrangement — packing, transposition, diagonal splitting, output
//! replication — happens outside the timed region. [`Prepared`] performs
//! all of that up front; [`Prepared::run_timed`] then measures exactly
//! what the paper measures (output initialization + main loops), while
//! [`Prepared::run_full`] also applies replication, for correctness
//! checks.
//!
//! ## Backends and the plan cache
//!
//! Execution goes through one of two [`Backend`]s: the tree-walking
//! interpreter in `systec-exec`, or (the default) the bytecode VM in
//! `systec-codegen`. Both produce identical results and identical
//! [`Counters`].
//!
//! Kernel *plans* — the compiled program (symmetrization + §4.2 passes),
//! its hoisted/lowered form, and its bytecode — depend only on the
//! einsum, the symmetry declarations, and the input formats and shapes,
//! never on tensor values. [`Prepared::compile`] and [`Prepared::naive`]
//! therefore consult a process-wide LRU [`PlanCache`]: repeated
//! invocations of an identical kernel spec skip symmetrization,
//! hoisting, lowering and compilation entirely (observable through
//! [`plan_cache_stats`]).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use systec_codegen::{CacheStats, ExecContext, MergeKind, Parallelism, PlanKey, SharedPlanCache};
use systec_core::{CompileOptions, Compiler, SymmetrySpec};
use systec_exec::{alloc_outputs, hoist_conditions, lower, prepare_variants, run_lowered};
use systec_exec::{Counters, ExecError, LoweredProgram};
use systec_ir::Stmt;
use systec_telemetry as telemetry;
use systec_tensor::{DenseTensor, Tensor};

use crate::KernelDef;

/// Which execution engine a [`Prepared`] kernel runs on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Backend {
    /// The tree-walking interpreter (`systec_exec::run_lowered`).
    Interpreter,
    /// The bytecode VM (`systec_codegen`) — the default.
    #[default]
    Compiled,
}

/// Everything shape-dependent (but value-independent) about a kernel:
/// the hoisted programs, their lowerings, and their bytecode.
///
/// Immutable and shared: the plan cache hands out [`Arc`]s of these.
pub(crate) struct KernelPlan {
    /// The hoisted main program (scanned for input variants and output
    /// shapes when binding new data).
    main_stmt: Stmt,
    /// The hoisted replication nest, when present.
    rep_stmt: Option<Stmt>,
    main: LoweredProgram,
    replication: Option<LoweredProgram>,
    main_compiled: systec_codegen::CompiledKernel,
    rep_compiled: Option<systec_codegen::CompiledKernel>,
}

impl KernelPlan {
    /// Builds a plan from (unhoisted) programs against concrete
    /// bindings. Only shapes and formats of `inputs` matter for the
    /// plan itself; the materialized bindings (base + derived variants)
    /// and initialized outputs are returned so the caller that just
    /// built the plan does not prepare the same data twice.
    #[allow(clippy::type_complexity)]
    fn build(
        main: Stmt,
        replication: Option<Stmt>,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<(KernelPlan, HashMap<String, Tensor>, HashMap<String, DenseTensor>), ExecError>
    {
        let lower_span = telemetry::span(telemetry::Phase::Lower);
        let main = hoist_conditions(main);
        let replication = replication.map(hoist_conditions);
        let mut all_inputs = inputs.clone();
        all_inputs.extend(prepare_variants(&main, inputs)?);
        let outputs_init = alloc_outputs_for(&main, replication.as_ref(), &all_inputs)?;
        let lowered_main = lower(&main, &all_inputs, &outputs_init)?;
        let lowered_rep = match &replication {
            Some(rep) => Some(lower(rep, &all_inputs, &outputs_init)?),
            None => None,
        };
        drop(lower_span);
        let bytecode_span = telemetry::span(telemetry::Phase::Bytecode);
        let main_compiled =
            systec_codegen::CompiledKernel::compile(&lowered_main, &all_inputs, &outputs_init)?;
        let rep_compiled = match &lowered_rep {
            Some(rep) => {
                Some(systec_codegen::CompiledKernel::compile(rep, &all_inputs, &outputs_init)?)
            }
            None => None,
        };
        drop(bytecode_span);
        let plan = KernelPlan {
            main_stmt: main,
            rep_stmt: replication,
            main: lowered_main,
            replication: lowered_rep,
            main_compiled,
            rep_compiled,
        };
        Ok((plan, all_inputs, outputs_init))
    }
}

/// Allocates the outputs the main program writes, extended with anything
/// only the replication nest writes.
fn alloc_outputs_for(
    main: &Stmt,
    replication: Option<&Stmt>,
    all_inputs: &HashMap<String, Tensor>,
) -> Result<HashMap<String, DenseTensor>, ExecError> {
    let mut outputs_init = alloc_outputs(main, all_inputs)?;
    if let Some(rep) = replication {
        // Replication normally reads and writes outputs the main program
        // already allocated; only infer shapes for anything new.
        let mut written = Vec::new();
        collect_written(rep, &mut written);
        if written.iter().any(|name| !outputs_init.contains_key(name)) {
            for (name, t) in alloc_outputs(rep, all_inputs)? {
                outputs_init.entry(name).or_insert(t);
            }
        }
    }
    Ok(outputs_init)
}

fn plan_cache() -> &'static SharedPlanCache<KernelPlan> {
    static CACHE: OnceLock<SharedPlanCache<KernelPlan>> = OnceLock::new();
    CACHE.get_or_init(|| SharedPlanCache::new(64))
}

/// Materialized data bindings: base + derived inputs, and initialized
/// outputs.
type PlanBindings = (HashMap<String, Tensor>, HashMap<String, DenseTensor>);

/// Looks the key up, building on a miss with no lock held (plan
/// compilation takes milliseconds — concurrent preparations of
/// different kernels must not serialize). Concurrent requests for the
/// *same* key perform exactly one build and share the resulting plan
/// `Arc` ([`SharedPlanCache`]); a build that panics wakes its waiters
/// and leaves the cache usable.
///
/// On a miss, the builder's already-materialized bindings ride along so
/// the caller can construct the [`Prepared`] without preparing the data
/// a second time.
#[allow(clippy::type_complexity)]
fn cached_plan(
    key: PlanKey,
    build: impl FnOnce() -> Result<
        (KernelPlan, HashMap<String, Tensor>, HashMap<String, DenseTensor>),
        ExecError,
    >,
) -> Result<(Arc<KernelPlan>, Option<PlanBindings>), ExecError> {
    plan_cache()
        .get_or_build(&key, || build().map(|(plan, inputs, outputs)| (plan, (inputs, outputs))))
}

/// Observability counters of the process-wide kernel plan cache.
pub fn plan_cache_stats() -> CacheStats {
    plan_cache().stats()
}

/// Drops every cached kernel plan and resets the statistics (tests and
/// benchmarks).
pub fn clear_plan_cache() {
    plan_cache().clear();
}

/// Canonical rendering of symmetry declarations for plan keys.
fn symmetry_fingerprint(spec: &SymmetrySpec) -> String {
    let mut parts: Vec<String> = spec
        .iter()
        .map(|(name, p)| {
            let parts: Vec<&[usize]> = p.parts().collect();
            format!("{name}:{parts:?}")
        })
        .collect();
    parts.sort();
    parts.join(";")
}

/// A kernel prepared against concrete inputs, ready to run repeatedly.
///
/// Cloning is cheap: the plan and the prepared inputs are shared behind
/// [`Arc`]s, so per-invocation runs never re-clone input tensors.
#[derive(Clone)]
pub struct Prepared {
    plan: Arc<KernelPlan>,
    inputs: Arc<HashMap<String, Tensor>>,
    outputs_init: HashMap<String, DenseTensor>,
    backend: Backend,
    parallelism: Parallelism,
}

impl Prepared {
    /// Compiles the kernel with SySTeC (default options) and prepares it
    /// against `inputs`, reusing a cached plan when one exists for this
    /// (einsum, symmetry, formats, dims) key.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program does not validate against
    /// the inputs; compilation errors surface as
    /// [`ExecError::UnknownTensor`]-style validation failures (the
    /// kernel definitions themselves are statically correct).
    pub fn compile(def: &KernelDef, inputs: &HashMap<String, Tensor>) -> Result<Self, ExecError> {
        Self::compile_with(def, inputs, CompileOptions::default())
    }

    /// Compiles with explicit pass toggles (used by the ablation
    /// benchmarks). The toggles are part of the plan-cache key.
    ///
    /// # Errors
    ///
    /// See [`Prepared::compile`]; a kernel definition the compiler
    /// rejects surfaces as [`ExecError::InvalidKernel`] (the shipped
    /// definitions never are).
    pub fn compile_with(
        def: &KernelDef,
        inputs: &HashMap<String, Tensor>,
        options: CompileOptions,
    ) -> Result<Self, ExecError> {
        Self::compile_spec(&def.einsum, &def.symmetry, inputs, options)
    }

    /// Compiles an einsum + symmetry spec directly — the entry point for
    /// callers (the serving layer, scripts) whose kernel arrives as
    /// protocol parameters rather than a shipped [`KernelDef`]. Shares
    /// the process-wide plan cache with [`Prepared::compile`]: the key
    /// is (einsum, symmetry, formats, dims), so N concurrent
    /// preparations of one spec perform exactly one build.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidKernel`] when the compiler rejects
    /// the spec, and validation errors as in [`Prepared::compile`].
    pub fn compile_einsum(
        einsum: &systec_ir::Einsum,
        symmetry: &SymmetrySpec,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Self, ExecError> {
        Self::compile_spec(einsum, symmetry, inputs, CompileOptions::default())
    }

    fn compile_spec(
        einsum: &systec_ir::Einsum,
        symmetry: &SymmetrySpec,
        inputs: &HashMap<String, Tensor>,
        options: CompileOptions,
    ) -> Result<Self, ExecError> {
        let key = PlanKey::new(
            format!("systec::{einsum}::{options:?}"),
            symmetry_fingerprint(symmetry),
            inputs,
        );
        let (plan, bindings) = cached_plan(key, || {
            let symmetrize_span = telemetry::span(telemetry::Phase::Symmetrize);
            let kernel = Compiler::with_options(options)
                .compile(einsum, symmetry)
                .map_err(|e| ExecError::InvalidKernel { message: e.to_string() })?;
            drop(symmetrize_span);
            KernelPlan::build(kernel.main, kernel.replication, inputs)
        })?;
        Self::from_cache(plan, bindings, inputs)
    }

    /// Prepares the naive (symmetry-oblivious) kernel — the paper's
    /// "naive Finch" baseline — through the same plan cache.
    ///
    /// # Errors
    ///
    /// See [`Prepared::compile`].
    pub fn naive(def: &KernelDef, inputs: &HashMap<String, Tensor>) -> Result<Self, ExecError> {
        Self::naive_einsum(&def.einsum, inputs)
    }

    /// Prepares the naive kernel of a bare einsum (no symmetry exploited)
    /// through the plan cache — the serving-layer analogue of
    /// [`Prepared::naive`]. Keys identically to `naive`, so a served
    /// naive kernel and a [`KernelDef`]-driven one share a plan.
    ///
    /// # Errors
    ///
    /// See [`Prepared::compile`].
    pub fn naive_einsum(
        einsum: &systec_ir::Einsum,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Self, ExecError> {
        let key = PlanKey::new(format!("naive::{einsum}"), String::new(), inputs);
        let (plan, bindings) = cached_plan(key, || {
            let symmetrize_span = telemetry::span(telemetry::Phase::Symmetrize);
            let program = Compiler::new().naive(einsum);
            drop(symmetrize_span);
            KernelPlan::build(program, None, inputs)
        })?;
        Self::from_cache(plan, bindings, inputs)
    }

    /// Prepares an arbitrary program (used by tests and ablations).
    /// Bypasses the plan cache — arbitrary statements have no stable
    /// kernel identity to key on.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program does not validate.
    pub fn from_programs(
        main: Stmt,
        replication: Option<Stmt>,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Self, ExecError> {
        let (plan, all_inputs, outputs_init) = KernelPlan::build(main, replication, inputs)?;
        Ok(Self::assemble(Arc::new(plan), all_inputs, outputs_init))
    }

    /// Assembles from a cache result: a miss carries the builder's
    /// already-materialized bindings; a hit binds the new data.
    fn from_cache(
        plan: Arc<KernelPlan>,
        bindings: Option<PlanBindings>,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Self, ExecError> {
        match bindings {
            Some((all_inputs, outputs_init)) => Ok(Self::assemble(plan, all_inputs, outputs_init)),
            None => Self::bind(plan, inputs),
        }
    }

    /// Binds a cached plan to new concrete data: materializes the
    /// derived input variants (transposes, diagonal splits — the
    /// paper's untimed rearrangement) and allocates initialized
    /// outputs.
    fn bind(plan: Arc<KernelPlan>, inputs: &HashMap<String, Tensor>) -> Result<Self, ExecError> {
        let mut all_inputs = inputs.clone();
        all_inputs.extend(prepare_variants(&plan.main_stmt, inputs)?);
        let outputs_init = alloc_outputs_for(&plan.main_stmt, plan.rep_stmt.as_ref(), &all_inputs)?;
        Ok(Self::assemble(plan, all_inputs, outputs_init))
    }

    fn assemble(
        plan: Arc<KernelPlan>,
        all_inputs: HashMap<String, Tensor>,
        outputs_init: HashMap<String, DenseTensor>,
    ) -> Self {
        Prepared {
            plan,
            inputs: Arc::new(all_inputs),
            outputs_init,
            backend: Backend::default(),
            parallelism: Parallelism::default(),
        }
    }

    /// Selects the execution backend (the default is
    /// [`Backend::Compiled`]).
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Switches the execution backend in place.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// The active execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Selects the execution parallelism for the timed main loops (the
    /// default is [`Parallelism::Serial`]). Only the compiled backend
    /// dispatches workers, and only for plans the compiler proved
    /// splittable (see [`Prepared::splittable`]); everything else runs
    /// serially with identical results. Counters are exact (merged by
    /// integer sums) in every mode.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Switches the execution parallelism in place.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The active execution parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Whether the compiled main program can actually dispatch workers
    /// under [`Parallelism::Threads`].
    ///
    /// **A `false` here means thread requests are silently ignored**:
    /// [`Parallelism::Threads`] on a non-splittable plan runs serially
    /// with identical results and counters, and nothing else reports
    /// the degradation. Callers that surface a thread count to users
    /// (e.g. the `systec` CLI's `--threads`) should check this and say
    /// so — [`serial_fallback_note`] renders the standard one-liner.
    pub fn splittable(&self) -> bool {
        self.plan.main_compiled.splittable()
    }

    /// Overrides the initial value of an output tensor (e.g. seeding
    /// Bellman-Ford's `y` with the current distances `d`).
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist or the shape differs.
    pub fn init_output(&mut self, name: &str, value: DenseTensor) {
        let slot = self
            .outputs_init
            .get_mut(name)
            .unwrap_or_else(|| panic!("kernel has no output named {name}"));
        assert_eq!(slot.dims(), value.dims(), "init shape mismatch for output {name}");
        *slot = value;
    }

    /// The prepared (base + derived) input bindings.
    pub fn inputs(&self) -> &HashMap<String, Tensor> {
        &self.inputs
    }

    /// Whether two prepared kernels execute one shared cached plan —
    /// i.e. the second preparation performed no symmetrization,
    /// hoisting, lowering or bytecode compilation at all.
    pub fn shares_plan_with(&self, other: &Prepared) -> bool {
        Arc::ptr_eq(&self.plan, &other.plan)
    }

    fn exec_main(
        &self,
        outputs: &mut HashMap<String, DenseTensor>,
        ctx: &mut ExecContext,
        counters: &mut Counters,
    ) -> Result<(), ExecError> {
        match self.backend {
            Backend::Interpreter => {
                *counters = run_lowered(&self.plan.main, &self.inputs, outputs)?;
                Ok(())
            }
            Backend::Compiled => self.plan.main_compiled.run_with(
                &self.inputs,
                outputs,
                ctx,
                self.parallelism,
                counters,
            ),
        }
    }

    fn exec_replication(
        &self,
        outputs: &mut HashMap<String, DenseTensor>,
    ) -> Result<Option<Counters>, ExecError> {
        match self.backend {
            Backend::Interpreter => match &self.plan.replication {
                Some(rep) => Ok(Some(run_lowered(rep, &self.inputs, outputs)?)),
                None => Ok(None),
            },
            Backend::Compiled => match &self.plan.rep_compiled {
                Some(rep) => Ok(Some(rep.run(&self.inputs, outputs)?)),
                None => Ok(None),
            },
        }
    }

    /// Runs the timed region once — fresh outputs, main loops, no
    /// replication — matching the paper's measurement.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (none occur after successful
    /// preparation).
    pub fn run_timed(&self) -> Result<(HashMap<String, DenseTensor>, Counters), ExecError> {
        let mut outputs = self.outputs_init.clone();
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        self.exec_main(&mut outputs, &mut ctx, &mut counters)?;
        Ok((outputs, counters))
    }

    /// Like [`Prepared::run_timed`], but over caller-owned state:
    /// existing output tensors of the right shape are re-initialized in
    /// place, the [`ExecContext`] supplies every per-run buffer, and
    /// `counters` is updated in place. On the compiled backend the
    /// steady-state path is therefore **allocation-free**, so repeated
    /// invocations (the benchmark loop, a serving loop) measure kernel
    /// work, not allocator traffic.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (none occur after successful
    /// preparation).
    pub fn run_timed_into(
        &self,
        outputs: &mut HashMap<String, DenseTensor>,
        ctx: &mut ExecContext,
        counters: &mut Counters,
    ) -> Result<(), ExecError> {
        for (name, init) in &self.outputs_init {
            match outputs.get_mut(name) {
                Some(existing) if existing.dims() == init.dims() => {
                    existing.as_mut_slice().copy_from_slice(init.as_slice());
                }
                _ => {
                    outputs.insert(name.clone(), init.clone());
                }
            }
        }
        self.exec_main(outputs, ctx, counters)
    }

    /// Like [`Prepared::run_timed_into`], but executes only coordinate
    /// chunk `k` of `n` of the main program (always on the compiled
    /// backend — chunked execution is a bytecode-VM capability). The
    /// outputs are re-initialized and bound at full shape: row-owned
    /// outputs receive exactly their window rows, reduction-merged
    /// outputs hold this shard's partial. Merging all `n` shards per
    /// [`Prepared::split_outputs`] (and summing counters) reproduces
    /// the serial run — the cross-process analogue of
    /// [`Parallelism::Threads`].
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidKernel`] when the plan is not
    /// [splittable](Prepared::splittable) or `(k, n)` is out of range;
    /// executor failures otherwise.
    pub fn run_shard_into(
        &self,
        outputs: &mut HashMap<String, DenseTensor>,
        ctx: &mut ExecContext,
        counters: &mut Counters,
        k: usize,
        n: usize,
    ) -> Result<(), ExecError> {
        for (name, init) in &self.outputs_init {
            match outputs.get_mut(name) {
                Some(existing) if existing.dims() == init.dims() => {
                    existing.as_mut_slice().copy_from_slice(init.as_slice());
                }
                _ => {
                    outputs.insert(name.clone(), init.clone());
                }
            }
        }
        self.plan.main_compiled.run_chunk_with(&self.inputs, outputs, ctx, counters, k, n)
    }

    /// The per-output merge classification of a splittable main program
    /// (`None` when not splittable) — how a cross-process merger must
    /// recombine the shard buffers produced by
    /// [`Prepared::run_shard_into`].
    pub fn split_outputs(&self) -> Option<Vec<(String, MergeKind)>> {
        self.plan.main_compiled.split_outputs()
    }

    /// Runs everything — main loops *and* output replication — returning
    /// the complete result for correctness checks.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (none occur after successful
    /// preparation).
    pub fn run_full(&self) -> Result<(HashMap<String, DenseTensor>, Counters), ExecError> {
        let mut outputs = self.outputs_init.clone();
        let mut ctx = ExecContext::new();
        let mut counters = Counters::new();
        self.exec_main(&mut outputs, &mut ctx, &mut counters)?;
        if let Some(rep_counters) = self.exec_replication(&mut outputs)? {
            counters.merge(&rep_counters);
        }
        Ok((outputs, counters))
    }
}

/// The one-line note a front end should print when the user asked for
/// `threads > 1` but the plan cannot split (so the run silently
/// degrades to serial execution). `None` when the request and the plan
/// agree — serial requests never warn, and splittable plans dispatch as
/// asked.
pub fn serial_fallback_note(requested: Parallelism, splittable: bool) -> Option<String> {
    match requested {
        Parallelism::Threads(n) if n >= 2 && !splittable => Some(format!(
            "note: --threads {n} requested, but this plan is not row-splittable \
             (scattered overwrites or cross-row reads); running serially"
        )),
        _ => None,
    }
}

fn collect_written(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_written(s, out);
            }
        }
        Stmt::Loop { body, .. }
        | Stmt::If { body, .. }
        | Stmt::Let { body, .. }
        | Stmt::Workspace { body, .. } => collect_written(body, out),
        Stmt::Assign { lhs, .. } => {
            if let systec_ir::Lhs::Tensor(a) = lhs {
                out.push(a.tensor.display_name());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs;
    use systec_exec::reference::reference_einsum;
    use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

    fn ssymv_setup(n: usize, seed: u64) -> (KernelDef, HashMap<String, Tensor>) {
        let def = defs::ssymv();
        let mut r = rng(seed);
        let a = symmetric_erdos_renyi(n, 2, 0.15, &mut r);
        let x = random_dense(vec![n], &mut r);
        let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
        (def, inputs)
    }

    #[test]
    fn ssymv_symmetric_matches_naive_and_reference() {
        let (def, inputs) = ssymv_setup(24, 7);
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let naive = Prepared::naive(&def, &inputs).unwrap();
        let (ys, _) = sym.run_full().unwrap();
        let (yn, _) = naive.run_full().unwrap();
        let reference = reference_einsum(&def.einsum, &inputs).unwrap();
        assert!(ys["y"].max_abs_diff(&yn["y"]).unwrap() < 1e-10);
        assert!(ys["y"].max_abs_diff(&reference).unwrap() < 1e-10);
    }

    #[test]
    fn backends_agree_on_results_and_counters() {
        let (def, inputs) = ssymv_setup(32, 13);
        let compiled = Prepared::compile(&def, &inputs).unwrap();
        let interp = compiled.clone().with_backend(Backend::Interpreter);
        assert_eq!(compiled.backend(), Backend::Compiled);
        // The default lane mode reassociates register-held folds:
        // values agree within 1e-9, counters exactly.
        let (yc, cc) = compiled.run_full().unwrap();
        let (yi, ci) = interp.run_full().unwrap();
        assert!(yc["y"].max_abs_diff(&yi["y"]).unwrap() < 1e-9, "lane-mode values");
        assert_eq!(cc, ci, "counter parity across backends");
        // Scalar lane mode keeps the bit-for-bit guarantee (timed
        // region: replication runs outside the caller-owned context).
        let mut ctx =
            systec_codegen::ExecContext::new().with_lane_mode(systec_codegen::LaneMode::Scalar);
        let mut ys = HashMap::new();
        let mut cs = Counters::new();
        compiled.run_timed_into(&mut ys, &mut ctx, &mut cs).unwrap();
        let (yt, ct) = interp.run_timed().unwrap();
        assert_eq!(ys["y"], yt["y"], "scalar mode must agree bit-for-bit");
        assert_eq!(cs, ct, "scalar-mode counter parity");
    }

    #[test]
    fn ssymv_reads_roughly_half() {
        let (def, inputs) = ssymv_setup(40, 11);
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let naive = Prepared::naive(&def, &inputs).unwrap();
        let (_, cs) = sym.run_full().unwrap();
        let (_, cn) = naive.run_full().unwrap();
        let nnz = inputs["A"].as_sparse().unwrap().nnz() as u64;
        assert_eq!(cn.reads_of_family("A"), nnz, "naive touches every stored entry once");
        // Symmetric kernel touches only the canonical triangle:
        // (nnz + diag) / 2 entries.
        assert!(cs.reads_of_family("A") <= nnz / 2 + 40);
        assert!(cs.reads_of_family("A") * 2 >= nnz.saturating_sub(40), "not too few either");
    }

    #[test]
    fn bellman_ford_matches_reference_with_warm_start() {
        let def = defs::bellman_ford();
        let mut r = rng(3);
        let a = symmetric_erdos_renyi(16, 2, 0.2, &mut r);
        let d = random_dense(vec![16], &mut r);
        let inputs = def.inputs([("A", a.into()), ("d", d.clone().into())]).unwrap();
        let mut sym = Prepared::compile(&def, &inputs).unwrap();
        let mut naive = Prepared::naive(&def, &inputs).unwrap();
        // Warm-start y = d, as a real Bellman-Ford iteration would.
        sym.init_output("y", d.clone());
        naive.init_output("y", d.clone());
        let (ys, _) = sym.run_full().unwrap();
        let (yn, _) = naive.run_full().unwrap();
        assert!(ys["y"].max_abs_diff(&yn["y"]).unwrap() < 1e-10);
        // Warm start means y <= d everywhere.
        for i in 0..16 {
            assert!(ys["y"].get(&[i]) <= d.get(&[i]) + 1e-12);
        }
    }

    #[test]
    fn run_timed_skips_replication() {
        let def = defs::ssyrk();
        let mut r = rng(5);
        let a = systec_tensor::generate::sprand(12, 12, 30, &mut r);
        let inputs = def.inputs([("A", a.into())]).unwrap();
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let (timed, _) = sym.run_timed().unwrap();
        let (full, _) = sym.run_full().unwrap();
        // run_full fills the lower triangle; run_timed leaves it zero.
        let mut below_diag_differs = false;
        for i in 0..12 {
            for j in 0..i {
                if timed["C"].get(&[i, j]) != full["C"].get(&[i, j]) {
                    below_diag_differs = true;
                }
            }
        }
        assert!(below_diag_differs);
        // Above and on the diagonal they agree.
        for i in 0..12 {
            for j in i..12 {
                assert_eq!(timed["C"].get(&[i, j]), full["C"].get(&[i, j]));
            }
        }
    }

    #[test]
    fn run_timed_into_reuses_buffers_and_matches() {
        let (def, inputs) = ssymv_setup(20, 21);
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let (fresh, c_fresh) = sym.run_timed().unwrap();
        let mut reused = HashMap::new();
        let mut ctx = ExecContext::new();
        let mut c1 = Counters::new();
        let mut c2 = Counters::new();
        sym.run_timed_into(&mut reused, &mut ctx, &mut c1).unwrap();
        sym.run_timed_into(&mut reused, &mut ctx, &mut c2).unwrap();
        assert_eq!(c1, c2, "re-running over reused buffers is idempotent");
        assert_eq!(c1, c_fresh);
        assert_eq!(reused["y"], fresh["y"]);
    }

    #[test]
    fn parallel_run_matches_serial_with_exact_counters() {
        let (def, inputs) = ssymv_setup(48, 5);
        let serial = Prepared::compile(&def, &inputs).unwrap();
        assert!(serial.splittable(), "ssymv's main program splits");
        let parallel = serial.clone().with_parallelism(Parallelism::threads(4));
        let (ys, cs) = serial.run_full().unwrap();
        let (yp, cp) = parallel.run_full().unwrap();
        assert_eq!(cs, cp, "merged counters must equal the serial counters exactly");
        assert!(ys["y"].max_abs_diff(&yp["y"]).unwrap() < 1e-9);
    }

    #[test]
    fn serial_fallback_note_fires_only_for_degraded_requests() {
        // Threads on a non-splittable plan: the silent degradation must
        // be called out.
        let note = serial_fallback_note(Parallelism::Threads(4), false);
        assert!(note.as_deref().is_some_and(|n| n.contains("--threads 4")), "{note:?}");
        assert!(note.as_deref().is_some_and(|n| n.contains("running serially")), "{note:?}");
        // Everything that runs as requested stays quiet.
        assert_eq!(serial_fallback_note(Parallelism::Threads(4), true), None);
        assert_eq!(serial_fallback_note(Parallelism::Serial, false), None);
        assert_eq!(serial_fallback_note(Parallelism::Serial, true), None);
        // `threads(1)` normalizes to Serial; a literal Threads(1) is a
        // serial run either way and must not warn.
        assert_eq!(serial_fallback_note(Parallelism::threads(1), false), None);
        assert_eq!(serial_fallback_note(Parallelism::Threads(1), false), None);
        // The note matches what a real non-splittable preparation says.
        let transpose = systec_ir::Einsum::new(
            systec_ir::build::access("C", ["j", "i"]),
            systec_ir::AssignOp::Overwrite,
            systec_ir::build::access("A", ["i", "j"]).into(),
            [systec_ir::build::idx("i"), systec_ir::build::idx("j")],
        );
        let mut r = rng(2);
        let coo = symmetric_erdos_renyi(10, 2, 0.2, &mut r);
        let a = systec_tensor::SparseTensor::from_coo(&coo, &systec_tensor::csf(2)).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), Tensor::Sparse(a));
        let prepared = Prepared::from_programs(transpose.naive_program(), None, &inputs).unwrap();
        assert!(!prepared.splittable(), "scattered overwrites stay serial");
        assert!(serial_fallback_note(Parallelism::Threads(2), prepared.splittable()).is_some());
    }

    #[test]
    fn compile_einsum_shares_plans_with_kernel_defs() {
        // n = 26 is unique to this test (keys must not collide with
        // concurrently running tests).
        let (def, inputs) = ssymv_setup(26, 17);
        let via_def = Prepared::compile(&def, &inputs).unwrap();
        let via_spec = Prepared::compile_einsum(&def.einsum, &def.symmetry, &inputs).unwrap();
        assert!(
            via_def.shares_plan_with(&via_spec),
            "spec-driven preparation must key identically to the KernelDef path"
        );
        let naive_def = Prepared::naive(&def, &inputs).unwrap();
        let naive_spec = Prepared::naive_einsum(&def.einsum, &inputs).unwrap();
        assert!(naive_def.shares_plan_with(&naive_spec));
        // And they compute the same thing.
        let (a, ca) = via_def.run_full().unwrap();
        let (b, cb) = via_spec.run_full().unwrap();
        assert_eq!(a["y"], b["y"]);
        assert_eq!(ca, cb);
    }

    #[test]
    fn invalid_spec_errors_instead_of_panicking() {
        let (def, inputs) = ssymv_setup(14, 3);
        // Declare a rank-3 symmetry on the rank-2 tensor: the compiler
        // rejects the spec, and preparation must surface that as an
        // error (the serving layer feeds untrusted specs here).
        let bad = SymmetrySpec::new().with_full("A", 3);
        let err = match Prepared::compile_einsum(&def.einsum, &bad, &inputs) {
            Ok(_) => panic!("rank-mismatched symmetry must be rejected"),
            Err(e) => e,
        };
        assert!(
            matches!(err, ExecError::InvalidKernel { .. }),
            "expected InvalidKernel, got {err:?}"
        );
        // The failed build poisons nothing: the valid spec still works.
        let ok = Prepared::compile_einsum(&def.einsum, &def.symmetry, &inputs).unwrap();
        let (out, _) = ok.run_full().unwrap();
        let reference = reference_einsum(&def.einsum, &inputs).unwrap();
        assert!(out["y"].max_abs_diff(&reference).unwrap() < 1e-10);
    }

    #[test]
    fn plan_cache_hit_skips_compilation() {
        // n = 18 is unique to this test, so the key below is not built
        // by any concurrently running test.
        let (def, inputs) = ssymv_setup(18, 33);
        let before = plan_cache_stats();
        let first = Prepared::compile(&def, &inputs).unwrap();
        // Different values, same formats and dims: the plan is reused.
        let (_, inputs2) = ssymv_setup(18, 99);
        let second = Prepared::compile(&def, &inputs2).unwrap();
        let after = plan_cache_stats();
        assert!(
            first.shares_plan_with(&second),
            "second invocation must reuse the cached plan verbatim"
        );
        assert!(after.hits > before.hits, "the reuse is visible as a cache hit");
        // And the shared plan still computes the right answer on the
        // second data set.
        let reference = reference_einsum(&def.einsum, &inputs2).unwrap();
        let (out, _) = second.run_full().unwrap();
        assert!(out["y"].max_abs_diff(&reference).unwrap() < 1e-10);
    }
}
