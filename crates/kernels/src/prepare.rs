//! The prepare-once / run-many kernel runner.
//!
//! The paper's methodology (§5.2) times only the kernel itself: data
//! rearrangement — packing, transposition, diagonal splitting, output
//! replication — happens outside the timed region. [`Prepared`] performs
//! all of that up front; [`Prepared::run_timed`] then measures exactly
//! what the paper measures (output initialization + main loops), while
//! [`Prepared::run_full`] also applies replication, for correctness
//! checks.

use std::collections::HashMap;

use systec_core::{CompileOptions, CompiledKernel, Compiler};
use systec_exec::{alloc_outputs, hoist_conditions, lower, prepare_variants, run_lowered};
use systec_exec::{Counters, ExecError, LoweredProgram};
use systec_ir::Stmt;
use systec_tensor::{DenseTensor, Tensor};

use crate::KernelDef;

/// A kernel lowered against concrete inputs, ready to run repeatedly.
pub struct Prepared {
    main: LoweredProgram,
    replication: Option<LoweredProgram>,
    inputs: HashMap<String, Tensor>,
    outputs_init: HashMap<String, DenseTensor>,
}

impl Prepared {
    /// Compiles the kernel with SySTeC (default options) and prepares it
    /// against `inputs`.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program does not validate against
    /// the inputs; compilation errors surface as
    /// [`ExecError::UnknownTensor`]-style validation failures (the
    /// kernel definitions themselves are statically correct).
    pub fn compile(def: &KernelDef, inputs: &HashMap<String, Tensor>) -> Result<Self, ExecError> {
        Self::compile_with(def, inputs, CompileOptions::default())
    }

    /// Compiles with explicit pass toggles (used by the ablation
    /// benchmarks).
    ///
    /// # Errors
    ///
    /// See [`Prepared::compile`].
    ///
    /// # Panics
    ///
    /// Panics if the kernel definition itself is rejected by the
    /// compiler — the shipped definitions never are.
    pub fn compile_with(
        def: &KernelDef,
        inputs: &HashMap<String, Tensor>,
        options: CompileOptions,
    ) -> Result<Self, ExecError> {
        let kernel: CompiledKernel = Compiler::with_options(options)
            .compile(&def.einsum, &def.symmetry)
            .unwrap_or_else(|e| panic!("kernel {} failed to compile: {e}", def.name));
        Self::from_programs(kernel.main, kernel.replication, inputs)
    }

    /// Prepares the naive (symmetry-oblivious) kernel — the paper's
    /// "naive Finch" baseline.
    ///
    /// # Errors
    ///
    /// See [`Prepared::compile`].
    pub fn naive(def: &KernelDef, inputs: &HashMap<String, Tensor>) -> Result<Self, ExecError> {
        let program = Compiler::new().naive(&def.einsum);
        Self::from_programs(program, None, inputs)
    }

    /// Prepares an arbitrary program (used by tests and ablations).
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the program does not validate.
    pub fn from_programs(
        main: Stmt,
        replication: Option<Stmt>,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<Self, ExecError> {
        let main = hoist_conditions(main);
        let replication = replication.map(hoist_conditions);
        // Materialize transposes / diagonal splits (untimed).
        let mut all_inputs = inputs.clone();
        all_inputs.extend(prepare_variants(&main, inputs)?);
        // Allocate outputs (shape inference + reduction identities).
        let mut outputs_init = alloc_outputs(&main, &all_inputs)?;
        if let Some(rep) = &replication {
            // Replication normally reads and writes outputs the main
            // program already allocated; only infer shapes for anything
            // new (a replication nest mentions no inputs, so extents can
            // only come from the main allocation).
            let mut written = Vec::new();
            collect_written(rep, &mut written);
            if written.iter().any(|name| !outputs_init.contains_key(name)) {
                for (name, t) in alloc_outputs(rep, &all_inputs)? {
                    outputs_init.entry(name).or_insert(t);
                }
            }
        }
        let lowered_main = lower(&main, &all_inputs, &outputs_init)?;
        let lowered_rep = match &replication {
            Some(rep) => Some(lower(rep, &all_inputs, &outputs_init)?),
            None => None,
        };
        Ok(Prepared {
            main: lowered_main,
            replication: lowered_rep,
            inputs: all_inputs,
            outputs_init,
        })
    }

    /// Overrides the initial value of an output tensor (e.g. seeding
    /// Bellman-Ford's `y` with the current distances `d`).
    ///
    /// # Panics
    ///
    /// Panics if the output does not exist or the shape differs.
    pub fn init_output(&mut self, name: &str, value: DenseTensor) {
        let slot = self
            .outputs_init
            .get_mut(name)
            .unwrap_or_else(|| panic!("kernel has no output named {name}"));
        assert_eq!(slot.dims(), value.dims(), "init shape mismatch for output {name}");
        *slot = value;
    }

    /// The prepared (base + derived) input bindings.
    pub fn inputs(&self) -> &HashMap<String, Tensor> {
        &self.inputs
    }

    /// Runs the timed region once — fresh outputs, main loops, no
    /// replication — matching the paper's measurement.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (none occur after successful
    /// preparation).
    pub fn run_timed(&self) -> Result<(HashMap<String, DenseTensor>, Counters), ExecError> {
        let mut outputs = self.outputs_init.clone();
        let counters = run_lowered(&self.main, &self.inputs, &mut outputs)?;
        Ok((outputs, counters))
    }

    /// Runs everything — main loops *and* output replication — returning
    /// the complete result for correctness checks.
    ///
    /// # Errors
    ///
    /// Propagates executor failures (none occur after successful
    /// preparation).
    pub fn run_full(&self) -> Result<(HashMap<String, DenseTensor>, Counters), ExecError> {
        let mut outputs = self.outputs_init.clone();
        let mut counters = run_lowered(&self.main, &self.inputs, &mut outputs)?;
        if let Some(rep) = &self.replication {
            let rep_counters = run_lowered(rep, &self.inputs, &mut outputs)?;
            counters.merge(&rep_counters);
        }
        Ok((outputs, counters))
    }
}

fn collect_written(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Block(ss) => {
            for s in ss {
                collect_written(s, out);
            }
        }
        Stmt::Loop { body, .. }
        | Stmt::If { body, .. }
        | Stmt::Let { body, .. }
        | Stmt::Workspace { body, .. } => collect_written(body, out),
        Stmt::Assign { lhs, .. } => {
            if let systec_ir::Lhs::Tensor(a) = lhs {
                out.push(a.tensor.display_name());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defs;
    use systec_exec::reference::reference_einsum;
    use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};

    fn ssymv_setup(n: usize, seed: u64) -> (KernelDef, HashMap<String, Tensor>) {
        let def = defs::ssymv();
        let mut r = rng(seed);
        let a = symmetric_erdos_renyi(n, 2, 0.15, &mut r);
        let x = random_dense(vec![n], &mut r);
        let inputs = def.inputs([("A", a.into()), ("x", x.into())]).unwrap();
        (def, inputs)
    }

    #[test]
    fn ssymv_symmetric_matches_naive_and_reference() {
        let (def, inputs) = ssymv_setup(24, 7);
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let naive = Prepared::naive(&def, &inputs).unwrap();
        let (ys, _) = sym.run_full().unwrap();
        let (yn, _) = naive.run_full().unwrap();
        let reference = reference_einsum(&def.einsum, &inputs).unwrap();
        assert!(ys["y"].max_abs_diff(&yn["y"]).unwrap() < 1e-10);
        assert!(ys["y"].max_abs_diff(&reference).unwrap() < 1e-10);
    }

    #[test]
    fn ssymv_reads_roughly_half() {
        let (def, inputs) = ssymv_setup(40, 11);
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let naive = Prepared::naive(&def, &inputs).unwrap();
        let (_, cs) = sym.run_full().unwrap();
        let (_, cn) = naive.run_full().unwrap();
        let nnz = inputs["A"].as_sparse().unwrap().nnz() as u64;
        assert_eq!(cn.reads_of_family("A"), nnz, "naive touches every stored entry once");
        // Symmetric kernel touches only the canonical triangle:
        // (nnz + diag) / 2 entries.
        assert!(cs.reads_of_family("A") <= nnz / 2 + 40);
        assert!(cs.reads_of_family("A") * 2 >= nnz.saturating_sub(40), "not too few either");
    }

    #[test]
    fn bellman_ford_matches_reference_with_warm_start() {
        let def = defs::bellman_ford();
        let mut r = rng(3);
        let a = symmetric_erdos_renyi(16, 2, 0.2, &mut r);
        let d = random_dense(vec![16], &mut r);
        let inputs = def.inputs([("A", a.into()), ("d", d.clone().into())]).unwrap();
        let mut sym = Prepared::compile(&def, &inputs).unwrap();
        let mut naive = Prepared::naive(&def, &inputs).unwrap();
        // Warm-start y = d, as a real Bellman-Ford iteration would.
        sym.init_output("y", d.clone());
        naive.init_output("y", d.clone());
        let (ys, _) = sym.run_full().unwrap();
        let (yn, _) = naive.run_full().unwrap();
        assert!(ys["y"].max_abs_diff(&yn["y"]).unwrap() < 1e-10);
        // Warm start means y <= d everywhere.
        for i in 0..16 {
            assert!(ys["y"].get(&[i]) <= d.get(&[i]) + 1e-12);
        }
    }

    #[test]
    fn run_timed_skips_replication() {
        let def = defs::ssyrk();
        let mut r = rng(5);
        let a = systec_tensor::generate::sprand(12, 12, 30, &mut r);
        let inputs = def.inputs([("A", a.into())]).unwrap();
        let sym = Prepared::compile(&def, &inputs).unwrap();
        let (timed, _) = sym.run_timed().unwrap();
        let (full, _) = sym.run_full().unwrap();
        // run_full fills the lower triangle; run_timed leaves it zero.
        let mut below_diag_differs = false;
        for i in 0..12 {
            for j in 0..i {
                if timed["C"].get(&[i, j]) != full["C"].get(&[i, j]) {
                    below_diag_differs = true;
                }
            }
        }
        assert!(below_diag_differs);
        // Above and on the diagonal they agree.
        for i in 0..12 {
            for j in i..12 {
                assert_eq!(timed["C"].get(&[i, j]), full["C"].get(&[i, j]));
            }
        }
    }
}
