//! Concurrency tests of the process-wide kernel plan cache: concurrent
//! preparations of the same kernel spec perform exactly one build and
//! share one plan `Arc`; different specs build in parallel; and a
//! failing build (a spec the compiler rejects — since the serving layer
//! this surfaces as `ExecError::InvalidKernel`, **not** a panic) neither
//! poisons the cache nor wedges concurrent waiters. Recovery from a
//! genuinely *panicking* build closure is covered by the
//! `SharedPlanCache` unit tests in `systec-codegen`.
//!
//! The tests serialize on a local mutex (they all observe the global
//! `builds` statistic) but each uses problem sizes unique to this file
//! so concurrently running *other* test binaries cannot collide on keys
//! — they run in separate processes anyway.

use std::collections::HashMap;
use std::sync::{Barrier, Mutex, OnceLock};

use systec_kernels::{defs, plan_cache_stats, Prepared};
use systec_tensor::generate::{random_dense, rng, symmetric_erdos_renyi};
use systec_tensor::Tensor;

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn ssymv_inputs(n: usize, seed: u64) -> HashMap<String, Tensor> {
    let def = defs::ssymv();
    let mut r = rng(seed);
    let a = symmetric_erdos_renyi(n, 2, 0.2, &mut r);
    let x = random_dense(vec![n], &mut r);
    def.inputs([("A", a.into()), ("x", x.into())]).unwrap()
}

#[test]
fn concurrent_prepares_build_each_key_once() {
    let _guard = serialize();
    let def = defs::ssymv();
    // Two distinct keys (n = 37 and n = 41 are unique to this file),
    // eight threads hammering both at once.
    let inputs_a = ssymv_inputs(37, 1);
    let inputs_b = ssymv_inputs(41, 2);
    let before = plan_cache_stats();
    let barrier = Barrier::new(8);
    let prepared: Vec<(Prepared, Prepared)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    let a = Prepared::compile(&def, &inputs_a).expect("prepare a");
                    let b = Prepared::compile(&def, &inputs_b).expect("prepare b");
                    (a, b)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    let after = plan_cache_stats();
    assert_eq!(
        after.builds - before.builds,
        2,
        "two distinct keys, one build each, regardless of contention"
    );
    let (first_a, first_b) = &prepared[0];
    for (a, b) in &prepared {
        assert!(a.shares_plan_with(first_a), "same-key hits must return the same plan Arc");
        assert!(b.shares_plan_with(first_b), "same-key hits must return the same plan Arc");
        assert!(!a.shares_plan_with(b), "distinct keys must not share a plan");
    }
}

#[test]
fn failed_builds_do_not_poison_the_cache() {
    let _guard = serialize();
    // A symmetry declaration whose rank contradicts the access makes the
    // compiler reject the kernel. The build closure surfaces that as an
    // error (`ExecError::InvalidKernel`) — a server feeding untrusted
    // specs into this path must get a reply, not a dead worker.
    let mut bad = defs::ssymv();
    bad.symmetry = systec_core::SymmetrySpec::new().with_full("A", 3);
    let inputs = ssymv_inputs(43, 3);

    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Prepared::compile(&bad, &inputs)));
    match outcome {
        Ok(Err(e)) => assert!(
            matches!(e, systec_exec::ExecError::InvalidKernel { .. }),
            "rejection surfaces as InvalidKernel, got {e:?}"
        ),
        Ok(Ok(_)) => panic!("the bad definition must be rejected"),
        Err(_) => panic!("rejection must be an error, not a panic"),
    }

    // The cache is still fully operational afterwards: same inputs,
    // valid definition, builds and caches normally.
    let def = defs::ssymv();
    let before = plan_cache_stats();
    let first = Prepared::compile(&def, &inputs).expect("cache must survive the panic");
    let second = Prepared::compile(&def, &inputs).expect("and keep serving hits");
    let after = plan_cache_stats();
    assert!(first.shares_plan_with(&second));
    assert_eq!(after.builds - before.builds, 1);
    assert!(after.hits > before.hits);

    // And a full run through the recovered plan still works.
    let (out, _) = first.run_full().expect("runs");
    assert!(out.contains_key("y"));
}

#[test]
fn waiters_on_a_failing_build_recover() {
    let _guard = serialize();
    let mut bad = defs::ssymv();
    bad.symmetry = systec_core::SymmetrySpec::new().with_full("A", 3);
    let bad = &bad;
    let good = defs::ssymv();
    let good = &good;
    let inputs = ssymv_inputs(47, 4);
    let inputs = &inputs;

    // Several threads race: some hit the rejected definition (every one
    // of them must receive the error — waiters on a failed build retry
    // and reproduce it themselves), some the valid one; the point is
    // that the global cache machinery keeps working under failing
    // builds and nobody hangs.
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for k in 0..6 {
            handles.push(s.spawn(move || {
                if k % 2 == 0 {
                    let r = Prepared::compile(bad, inputs);
                    assert!(
                        matches!(r, Err(systec_exec::ExecError::InvalidKernel { .. })),
                        "every requester of the bad spec gets the rejection"
                    );
                } else {
                    let p = Prepared::compile(good, inputs).expect("valid def must prepare");
                    let (out, _) = p.run_timed().expect("and run");
                    assert!(out.contains_key("y"));
                }
            }));
        }
        for h in handles {
            h.join().expect("worker threads themselves must not die");
        }
    });
}
