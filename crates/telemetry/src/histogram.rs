//! HDR-style log-bucketed histogram over a fixed array of atomic
//! buckets.
//!
//! The bucket layout is the classic "octave + linear sub-bucket"
//! scheme: values are grouped by their most significant bit (the
//! octave), and each octave is split into `2^SUB_BITS` equal-width
//! linear sub-buckets, giving a worst-case relative error of
//! `1 / 2^SUB_BITS` (25% here) at every magnitude. The whole `u64`
//! range is covered, so there is no rejection path: values past the
//! last full octave saturate into the top bucket rather than being
//! dropped, and `record` is a handful of relaxed atomic RMWs — no
//! locks, no allocation, no branches that depend on prior history.
//! That is what lets the serve crate put one of these on the
//! zero-allocation execution path where the old 512-sample latency
//! ring needed a `Mutex<Vec<u64>>`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave = `2^SUB_BITS`.
const SUB_BITS: u32 = 2;
const SUBS: u64 = 1 << SUB_BITS;

/// Total number of buckets: one group of exact small values plus four
/// sub-buckets for every octave up to `2^63`.
pub const BUCKETS: usize = ((64 - SUB_BITS) as usize) * SUBS as usize + SUBS as usize;

/// Maps a value to its bucket index. Total over all of `u64`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) & (SUBS - 1)) as usize;
    ((msb - SUB_BITS + 1) as usize) * SUBS as usize + sub
}

/// Inclusive upper bound of bucket `index` — the largest value that
/// [`bucket_index`] maps there.
pub fn bucket_upper(index: usize) -> u64 {
    let group = index as u64 / SUBS;
    let sub = index as u64 % SUBS;
    if group == 0 {
        return sub;
    }
    let msb = group + SUB_BITS as u64 - 1;
    let width = 1u64 << (msb - SUB_BITS as u64);
    let lower = (1u64 << msb) + sub * width;
    lower + (width - 1)
}

/// The coarse ladder of `le` boundaries used for Prometheus
/// exposition: inclusive upper bounds `2^k - 1` nanoseconds for
/// `k = 8..=34` (255 ns up to ~17.2 s). Every rung is the exact upper
/// bound of an internal bucket, so cumulative counts computed from a
/// [`Snapshot`] are exact, not interpolated.
pub fn export_ladder() -> impl Iterator<Item = u64> {
    (8u32..=34).map(|k| (1u64 << k) - 1)
}

/// A wait-free, allocation-free histogram with `BUCKETS` fixed atomic
/// buckets plus count / sum / max. Construction is `const`, so these
/// can live in `static`s; recording is a few relaxed RMWs.
///
/// Recording respects the process-wide [`crate::TelemetryMode`]: when
/// telemetry is off, [`Histogram::record`] is a single relaxed load.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. `const`, so usable in `static` registries.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (gated on the global telemetry mode).
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.record_always(value);
    }

    /// Records one observation regardless of the global mode.
    #[inline]
    pub fn record_always(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the live buckets into a plain snapshot. Concurrent
    /// recorders may land between the individual loads, so a snapshot
    /// taken mid-traffic is a consistent *approximation*; once all
    /// recorders have quiesced (e.g. threads joined) it is exact.
    pub fn snapshot(&self) -> Snapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        Snapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain (non-atomic) copy of a histogram's state; quantiles and
/// exposition are computed from these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-bucket observation counts, indexed like the live histogram.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Largest observed value (exact, unlike the bucketed quantiles).
    pub max: u64,
}

impl Default for Snapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Snapshot {
    /// The value at quantile `q` in `[0, 1]`: the inclusive upper
    /// bound of the bucket holding the `ceil(q * count)`-th smallest
    /// observation, capped at the exact observed maximum. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(index).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Exact count of observations `<= bound`, provided `bound` is a
    /// bucket upper bound (e.g. a rung of [`export_ladder`]); for
    /// other bounds the result is the count up to the last whole
    /// bucket below it.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if bucket_upper(index) > bound {
                break;
            }
            total += n;
        }
        total
    }

    /// Adds `other` into `self` bucket-wise. Merging per-thread or
    /// per-shard snapshots is deterministic: the merged buckets depend
    /// only on the multiset of recorded values, not on thread timing.
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_map_exactly() {
        for v in 0..SUBS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn index_and_upper_agree_everywhere() {
        // Every bucket's upper bound maps back into that bucket, and
        // upper + 1 maps into a strictly later bucket.
        for index in 0..BUCKETS {
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(upper), index, "upper {upper} of bucket {index}");
            if upper < u64::MAX {
                assert!(bucket_index(upper + 1) > index);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record_always(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5).unwrap();
        // 25% worst-case relative bucket error.
        assert!((384..=640).contains(&p50), "p50 {p50}");
        assert_eq!(s.quantile(1.0), Some(1000));
    }

    #[test]
    fn export_ladder_rungs_are_bucket_uppers() {
        for rung in export_ladder() {
            let index = bucket_index(rung);
            assert_eq!(bucket_upper(index), rung);
        }
    }
}
