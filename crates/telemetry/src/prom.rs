//! A minimal Prometheus text-exposition writer.
//!
//! Emits version 0.0.4 text format: `# HELP` / `# TYPE` headers
//! followed by samples. Determinism is the point — every value written
//! through this module is an integer, label values are escaped per the
//! spec, and samples appear exactly in the order the caller writes
//! them — so two scrapes of an idle process produce byte-identical
//! documents. The serve crate composes families in sorted name order.

use crate::Snapshot;

/// Accumulates an exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` and `# TYPE` headers for a family. `kind`
    /// is one of `counter`, `gauge`, or `histogram`.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Writes one sample line: `name{labels} value`.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out.push_str(name);
        self.write_labels(labels);
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Writes a full histogram family body for one label set: the
    /// cumulative `_bucket` ladder (rungs from
    /// [`crate::export_ladder`] plus `+Inf`), `_sum`, and `_count`.
    /// `labels` are prepended before the `le` label on bucket lines.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snapshot: &Snapshot) {
        let rungs: Vec<(u64, String)> =
            crate::export_ladder().map(|r| (r, r.to_string())).collect();
        for (rung, le) in &rungs {
            let mut bucket_labels: Vec<(&str, &str)> = labels.to_vec();
            bucket_labels.push(("le", le));
            self.sample(&format!("{name}_bucket"), &bucket_labels, snapshot.cumulative_le(*rung));
        }
        let mut inf_labels: Vec<(&str, &str)> = labels.to_vec();
        inf_labels.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &inf_labels, snapshot.count);
        self.sample(&format!("{name}_sum"), labels, snapshot.sum);
        self.sample(&format!("{name}_count"), labels, snapshot.count);
    }

    fn write_labels(&mut self, labels: &[(&str, &str)]) {
        if labels.is_empty() {
            return;
        }
        self.out.push('{');
        for (i, (key, value)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(key);
            self.out.push_str("=\"");
            self.out.push_str(&escape_label(value));
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn renders_counter_family() {
        let mut w = PromWriter::new();
        w.family("systec_x_total", "counter", "Test counter.");
        w.sample("systec_x_total", &[("verb", "run")], 3);
        assert_eq!(
            w.finish(),
            "# HELP systec_x_total Test counter.\n# TYPE systec_x_total counter\n\
             systec_x_total{verb=\"run\"} 3\n"
        );
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        h.record_always(100); // below the first 255ns rung
        h.record_always(300); // in (255, 511]
        h.record_always(u64::MAX); // only counted by +Inf
        let mut w = PromWriter::new();
        w.histogram("systec_lat_ns", &[("kernel", "0")], &h.snapshot());
        let text = w.finish();
        assert!(text.contains("systec_lat_ns_bucket{kernel=\"0\",le=\"255\"} 1\n"));
        assert!(text.contains("systec_lat_ns_bucket{kernel=\"0\",le=\"511\"} 2\n"));
        assert!(text.contains("systec_lat_ns_bucket{kernel=\"0\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("systec_lat_ns_count{kernel=\"0\"} 3\n"));
        // Two renders of the same data are byte-identical.
        let mut w2 = PromWriter::new();
        w2.histogram("systec_lat_ns", &[("kernel", "0")], &h.snapshot());
        assert_eq!(text, w2.finish());
    }
}
