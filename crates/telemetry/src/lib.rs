//! # systec-telemetry
//!
//! A lock-free, preallocated metrics and tracing core for the systec
//! workspace. Every layer of the compiler and server reports into this
//! crate — compile-phase spans, plan-cache events, VM dispatch counts,
//! worker-pool utilization, per-kernel latency histograms — and the
//! serve crate renders the result as an expanded `stats` verb, a
//! Prometheus `metrics` verb, and the `systec top` CLI table.
//!
//! Design constraints, in priority order:
//!
//! 1. **Nothing on a hot path may allocate or lock.** Histograms are
//!    fixed `[AtomicU64; N]` arrays ([`Histogram`]), counters are
//!    single atomics, and both are `const`-constructible so the global
//!    registry is a `static` with no lazy-init branch.
//! 2. **Recording is globally gateable.** [`TelemetryMode::Off`]
//!    reduces every record call to one relaxed load, mirroring the
//!    exact-parity counters' `CounterMode::Off`, and is used by the
//!    serve alloc-regression tier to prove on/off output parity.
//! 3. **Exposition is deterministic.** All exported values are
//!    integers (nanoseconds, counts); the [`prom`] writer emits
//!    families in the order the caller composes them, so a scrape of
//!    an idle process is byte-stable.
//!
//! Counters here are process-lifetime monotonic (Prometheus
//! semantics): they are never reset, even when e.g. the plan cache
//! they describe is cleared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prom;

pub use histogram::{bucket_index, bucket_upper, export_ladder, Histogram, Snapshot, BUCKETS};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global mode
// ---------------------------------------------------------------------------

/// Process-wide recording switch, mirroring the exact-parity work
/// counters' `CounterMode`: `Off` turns every record call into a
/// single relaxed load so telemetry can be excluded as a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Record everything (the default).
    On,
    /// Drop every observation; counters and histograms freeze.
    Off,
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide telemetry mode.
pub fn set_mode(mode: TelemetryMode) {
    ENABLED.store(matches!(mode, TelemetryMode::On), Ordering::Relaxed);
}

/// The current process-wide telemetry mode.
pub fn mode() -> TelemetryMode {
    if enabled() {
        TelemetryMode::On
    } else {
        TelemetryMode::Off
    }
}

/// `true` when recording is enabled. One relaxed load; hot paths may
/// use this to skip `Instant::now()` calls entirely.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// A monotonic counter: one atomic, `const`-constructible, gated on
/// the global mode.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one regardless of the global mode. For counters that are
    /// request *accounting* rather than observability — admission
    /// rejections, batch dispatches — where freezing under
    /// [`TelemetryMode::Off`] would break exactness invariants the
    /// serving tests rely on (mirrors [`Gauge`]'s ungated rationale).
    #[inline]
    pub fn inc_always(&self) {
        self.add_always(1);
    }

    /// Adds `n` regardless of the global mode (see
    /// [`Counter::inc_always`]).
    #[inline]
    pub fn add_always(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge. Unlike [`Counter`], `set` is not gated on
/// the global mode: gauges describe current state (pool sizes, cache
/// entries), not accumulated events, so freezing them would lie.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Compile-phase spans
// ---------------------------------------------------------------------------

/// The compile pipeline phases instrumented with [`span`] timers, in
/// pipeline order. Every plan-cache `build` decomposes into these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Einsum + symmetry declaration parsing.
    Parse,
    /// Symmetry-aware rewrite (the SySTeC compiler proper).
    Symmetrize,
    /// Hoisting, variant preparation, and lowering to VM programs.
    Lower,
    /// Fused-body selection over lowered vector loops.
    Fuse,
    /// Bytecode assembly of the lowered programs.
    Bytecode,
}

/// All phases, in pipeline order (also the exposition order).
pub const PHASES: [Phase; 5] =
    [Phase::Parse, Phase::Symmetrize, Phase::Lower, Phase::Fuse, Phase::Bytecode];

impl Phase {
    /// Stable lowercase label used in metric label values.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Symmetrize => "symmetrize",
            Phase::Lower => "lower",
            Phase::Fuse => "fuse",
            Phase::Bytecode => "bytecode",
        }
    }

    /// Position in [`PHASES`] (stable; usable as an array index).
    pub fn index(self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Symmetrize => 1,
            Phase::Lower => 2,
            Phase::Fuse => 3,
            Phase::Bytecode => 4,
        }
    }
}

/// Accumulated span statistics for one phase: count, total and max
/// duration in nanoseconds.
#[derive(Debug, Default)]
pub struct PhaseStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl PhaseStat {
    const fn new() -> Self {
        Self { count: AtomicU64::new(0), total_ns: AtomicU64::new(0), max_ns: AtomicU64::new(0) }
    }

    /// Records one span of `ns` nanoseconds (gated on the global mode).
    #[inline]
    pub fn record(&self, ns: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded spans.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total nanoseconds across all recorded spans.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Longest recorded span in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }
}

/// A scope timer: records the elapsed wall time into the global
/// [`PhaseStat`] for `phase` when dropped. When telemetry is off the
/// clock is never read.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

/// Starts a [`Span`] for `phase`.
pub fn span(phase: Phase) -> Span {
    Span { phase, start: enabled().then(Instant::now) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            global().phase(self.phase).record(ns);
        }
    }
}

// ---------------------------------------------------------------------------
// VM fused-body dispatch kinds
// ---------------------------------------------------------------------------

/// The monomorphized loop-body kinds the VM dispatches to, plus
/// `Steps` for vector loops that fall back to generic step-list
/// interpretation. Mirrors `systec-codegen`'s `FusedBody`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyKind {
    /// `acc += a[i] * b[i]` reduction.
    Dot,
    /// `y[i] += s * x[i]`.
    Axpy,
    /// `y[i] = s * x[i]`.
    ScaleStore,
    /// Fused dot + axpy over one probed run.
    DotAxpy,
    /// Dot through a gather index.
    GatherDot,
    /// Axpy through a gather index.
    GatherAxpy,
    /// Two-operand jammed update.
    Jam,
    /// Generic step-list interpretation (no fused body applied).
    Steps,
}

/// All body kinds, in exposition order.
pub const BODY_KINDS: [BodyKind; 8] = [
    BodyKind::Dot,
    BodyKind::Axpy,
    BodyKind::ScaleStore,
    BodyKind::DotAxpy,
    BodyKind::GatherDot,
    BodyKind::GatherAxpy,
    BodyKind::Jam,
    BodyKind::Steps,
];

impl BodyKind {
    /// Stable lowercase label used in metric label values.
    pub fn name(self) -> &'static str {
        match self {
            BodyKind::Dot => "dot",
            BodyKind::Axpy => "axpy",
            BodyKind::ScaleStore => "scale_store",
            BodyKind::DotAxpy => "dot_axpy",
            BodyKind::GatherDot => "gather_dot",
            BodyKind::GatherAxpy => "gather_axpy",
            BodyKind::Jam => "jam",
            BodyKind::Steps => "steps",
        }
    }

    /// Position in [`BODY_KINDS`] (stable; usable as an array index).
    pub fn index(self) -> usize {
        match self {
            BodyKind::Dot => 0,
            BodyKind::Axpy => 1,
            BodyKind::ScaleStore => 2,
            BodyKind::DotAxpy => 3,
            BodyKind::GatherDot => 4,
            BodyKind::GatherAxpy => 5,
            BodyKind::Jam => 6,
            BodyKind::Steps => 7,
        }
    }
}

// ---------------------------------------------------------------------------
// Serving metrics
// ---------------------------------------------------------------------------

/// Metrics for one serving engine: request batching, queue depth,
/// admission control, and tensor-registry lifecycle. Owned per-engine
/// (not in the global registry) so engines in the same process — e.g.
/// parallel tests — never bleed into each other's scrapes.
///
/// The counters here are **accounting**, not sampling: admission
/// rejections and batch dispatches must stay exact even under
/// [`TelemetryMode::Off`] (the serving tests assert arithmetic
/// identities over them), so recording uses the ungated
/// [`Counter::add_always`] paths. The one exception is
/// [`ServeMetrics::batch_size`]: a latency-class histogram, gated like
/// every other histogram.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Worker-pool dispatches issued by the run scheduler (each may
    /// carry several coalesced run requests).
    pub batch_dispatches: Counter,
    /// Run requests served through batched dispatches.
    pub batched_runs: Counter,
    /// Distribution of runs per dispatch (gated on the global mode).
    pub batch_size: Histogram,
    /// Requests currently queued in the scheduler.
    pub queue_depth: Gauge,
    /// Connections refused because `--max-conns` was reached.
    pub admission_rejected_conns: Counter,
    /// Registrations refused because `--max-bytes` was reached.
    pub admission_rejected_bytes: Counter,
    /// Requests answered with `deadline_exceeded` before dispatch.
    pub deadline_exceeded: Counter,
    /// Batch responses large enough to be encoded and fanned out on
    /// the dedicated replicator thread instead of the executor.
    pub offloaded_replications: Counter,
    /// Runs refused because a pinned tensor was re-registered since
    /// the kernel was prepared (`stale_tensor` errors).
    pub stale_runs: Counter,
    /// Unpinned tensors evicted from the registry by the LRU policy.
    pub registry_evictions: Counter,
    /// Estimated bytes currently held by the tensor registry.
    pub registry_bytes: Gauge,
    /// Tensors currently registered.
    pub registry_tensors: Gauge,
    /// Executor panics caught and converted into structured
    /// `internal_error` replies. Accounting — counted unconditionally,
    /// like the admission counters, because a caught panic must never
    /// disappear from view when recording is off.
    pub panics_caught: Counter,
    /// Kernel handles currently quarantined after a caught panic.
    pub quarantined_kernels: Gauge,
    /// Records appended to the durability write-ahead journal.
    pub journal_records: Counter,
    /// Bytes appended to the durability write-ahead journal.
    pub journal_bytes: Counter,
    /// fsyncs issued by the journal/snapshot writer.
    pub journal_fsyncs: Counter,
    /// Durable records replayed during startup recovery.
    pub recovery_replayed: Counter,
    /// Torn-tail bytes truncated from the journal during recovery.
    pub recovery_truncated: Counter,
}

impl ServeMetrics {
    /// A zeroed set.
    pub const fn new() -> Self {
        Self {
            batch_dispatches: Counter::new(),
            batched_runs: Counter::new(),
            batch_size: Histogram::new(),
            queue_depth: Gauge::new(),
            admission_rejected_conns: Counter::new(),
            admission_rejected_bytes: Counter::new(),
            deadline_exceeded: Counter::new(),
            offloaded_replications: Counter::new(),
            stale_runs: Counter::new(),
            registry_evictions: Counter::new(),
            registry_bytes: Gauge::new(),
            registry_tensors: Gauge::new(),
            panics_caught: Counter::new(),
            quarantined_kernels: Gauge::new(),
            journal_records: Counter::new(),
            journal_bytes: Counter::new(),
            journal_fsyncs: Counter::new(),
            recovery_replayed: Counter::new(),
            recovery_truncated: Counter::new(),
        }
    }
}

/// Cluster-router metrics, owned by one `systec-router` instance (the
/// same ownership model as [`ServeMetrics`]): the router holds one set
/// and renders it through the `metrics` verb. Traffic counters use the
/// ungated paths so the accounting survives `--telemetry off`; the
/// merge-latency histogram stays gated like every other histogram.
#[derive(Debug)]
pub struct RouterMetrics {
    /// Requests forwarded to a single owning shard.
    pub forwarded: Counter,
    /// Sharded runs fanned out to every shard.
    pub fanouts: Counter,
    /// Requests broadcast to all shards (replicated registers,
    /// sharded prepares, shutdown).
    pub broadcasts: Counter,
    /// Sharded-run merges performed (one per fan-out that came back
    /// healthy on every shard).
    pub merges: Counter,
    /// Merge latency in microseconds (split extraction + reduction
    /// fold + re-encode), gated on the global mode.
    pub merge_us: Histogram,
    /// Transport failures talking to shards (dropped connections,
    /// refused connects).
    pub shard_errors: Counter,
    /// Requests answered `shard_unavailable` because the owning shard
    /// was down.
    pub shard_unavailable: Counter,
    /// Successful shard reconnects (each bumps the shard's handle
    /// epoch, invalidating handles minted before the restart).
    pub reconnects: Counter,
    /// Shards currently connected.
    pub shards_healthy: Gauge,
}

impl RouterMetrics {
    /// A zeroed set.
    pub const fn new() -> Self {
        Self {
            forwarded: Counter::new(),
            fanouts: Counter::new(),
            broadcasts: Counter::new(),
            merges: Counter::new(),
            merge_us: Histogram::new(),
            shard_errors: Counter::new(),
            shard_unavailable: Counter::new(),
            reconnects: Counter::new(),
            shards_healthy: Gauge::new(),
        }
    }
}

impl Default for RouterMetrics {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

/// The process-wide metric registry: a fixed `static` struct of
/// counters and phase stats. Fields are counted at their event sites
/// across the workspace; the serve crate reads them at scrape time.
#[derive(Debug)]
pub struct Metrics {
    /// Plan-cache lookups that found a live entry.
    pub plan_cache_hits: Counter,
    /// Plan-cache lookups that missed.
    pub plan_cache_misses: Counter,
    /// Plans actually built (misses that became the builder).
    pub plan_cache_builds: Counter,
    /// Entries evicted by the LRU policy.
    pub plan_cache_evictions: Counter,
    /// Single-flight lookups that waited on another thread's build.
    pub plan_cache_waits: Counter,
    /// Prepares whose parallelism request silently degraded to serial
    /// because the plan was not splittable.
    pub fallback_serial: Counter,
    /// VM `execute` entries.
    pub vm_runs: Counter,
    /// Total wall nanoseconds spent inside VM `execute`.
    pub vm_run_ns: Counter,
    phases: [PhaseStat; PHASES.len()],
    fused: [Counter; BODY_KINDS.len()],
}

impl Metrics {
    const fn new() -> Self {
        Self {
            plan_cache_hits: Counter::new(),
            plan_cache_misses: Counter::new(),
            plan_cache_builds: Counter::new(),
            plan_cache_evictions: Counter::new(),
            plan_cache_waits: Counter::new(),
            fallback_serial: Counter::new(),
            vm_runs: Counter::new(),
            vm_run_ns: Counter::new(),
            phases: [const { PhaseStat::new() }; PHASES.len()],
            fused: [const { Counter::new() }; BODY_KINDS.len()],
        }
    }

    /// The span statistics for one compile phase.
    pub fn phase(&self, phase: Phase) -> &PhaseStat {
        &self.phases[phase.index()]
    }

    /// The dispatch counter for one fused-body kind.
    pub fn fused(&self, kind: BodyKind) -> &Counter {
        &self.fused[kind.index()]
    }
}

static GLOBAL: Metrics = Metrics::new();

/// The process-wide registry.
pub fn global() -> &'static Metrics {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mode is process-global; tests that flip it (or depend on
    /// it being `On`) serialize here and restore `On` on the way out.
    fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counter_gated_by_mode() {
        let _serialized = mode_lock();
        let c = Counter::new();
        c.inc();
        set_mode(TelemetryMode::Off);
        c.inc();
        set_mode(TelemetryMode::On);
        c.add(2);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn span_records_into_global_phase() {
        let _serialized = mode_lock();
        let before = global().phase(Phase::Parse).count();
        {
            let _s = span(Phase::Parse);
        }
        assert!(global().phase(Phase::Parse).count() > before);
    }

    #[test]
    fn ungated_counter_ops_ignore_mode() {
        let _serialized = mode_lock();
        let serve = ServeMetrics::new();
        set_mode(TelemetryMode::Off);
        serve.admission_rejected_conns.inc_always();
        serve.batched_runs.add_always(4);
        serve.batch_size.record(4); // gated: frozen while Off
        set_mode(TelemetryMode::On);
        assert_eq!(serve.admission_rejected_conns.get(), 1);
        assert_eq!(serve.batched_runs.get(), 4);
        assert_eq!(serve.batch_size.count(), 0, "histograms stay gated");
    }

    #[test]
    fn gauge_ignores_mode() {
        let _serialized = mode_lock();
        let g = Gauge::new();
        set_mode(TelemetryMode::Off);
        g.set(7);
        set_mode(TelemetryMode::On);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn body_kind_names_are_unique() {
        let mut names: Vec<_> = BODY_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BODY_KINDS.len());
    }
}
