//! Edge cases for the latency-ring → histogram migration (PR 6).
//!
//! The serve crate used to keep a 512-sample mutex-guarded ring per
//! kernel and report a median over whatever survived the wraparound;
//! these tests pin down the behaviors the replacement histogram must
//! get right where the ring was lossy or racy: exact bucket boundary
//! placement, saturation into the top bucket instead of dropping,
//! full retention past the old ring capacity, and deterministic
//! merges of concurrently recorded shards.

use systec_telemetry::{bucket_index, bucket_upper, Histogram, Snapshot, BUCKETS};

/// The old serve-side ring kept this many samples; the histogram must
/// not degrade at or past it.
const OLD_RING_CAPACITY: u64 = 512;

#[test]
fn bucket_boundary_values_land_on_their_own_side() {
    // For every exported power-of-two-ish boundary, the inclusive
    // upper bound stays in its bucket and the next value moves on.
    for k in 2..63u32 {
        let boundary = (1u64 << k) - 1; // upper bound of an octave
        let below = bucket_index(boundary);
        let above = bucket_index(boundary + 1);
        assert_eq!(bucket_upper(below), boundary, "2^{k} - 1 must end a bucket");
        assert!(above > below, "2^{k} must start a new bucket");
    }
    // Cumulative counts at a boundary are exact, not interpolated.
    let h = Histogram::new();
    h.record_always(1023);
    h.record_always(1024);
    let s = h.snapshot();
    assert_eq!(s.cumulative_le(1023), 1);
    assert_eq!(s.cumulative_le(2047), 2);
}

#[test]
fn overflow_saturates_into_top_bucket_without_losing_counts() {
    let h = Histogram::new();
    for huge in [u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) + 12345] {
        h.record_always(huge);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 4, "no observation may be dropped");
    assert_eq!(s.max, u64::MAX);
    // All land in the final octave's buckets; the ladder's +Inf rung
    // (snapshot.count) is the only exported rung that sees them.
    assert_eq!(s.cumulative_le((1u64 << 34) - 1), 0);
    let top_buckets: u64 = s.buckets[BUCKETS - 4..].iter().sum();
    assert_eq!(top_buckets, 4);
    // Quantiles stay finite and capped at the true max.
    assert_eq!(s.quantile(0.99), Some(u64::MAX));
}

#[test]
fn no_wraparound_past_old_ring_capacity() {
    // The old ring forgot all but the last 512 samples; feed 8x that
    // with a distribution whose early samples dominate the median and
    // check they still count.
    let h = Histogram::new();
    let total = OLD_RING_CAPACITY * 8;
    for i in 0..total {
        // First 7/8 of samples are fast (~1us), the last 1/8 slow
        // (~1ms). A 512-sample window would only see the slow tail.
        let v = if i < total - OLD_RING_CAPACITY { 1_000 } else { 1_000_000 };
        h.record_always(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, total, "every sample retained");
    let p50 = s.quantile(0.5).unwrap();
    assert!(p50 < 2_000, "median reflects the full history, got {p50}");
    let p99 = s.quantile(0.99).unwrap();
    assert!(p99 >= 1_000_000 / 2, "tail still visible, got {p99}");
    assert_eq!(s.sum, (total - OLD_RING_CAPACITY) * 1_000 + OLD_RING_CAPACITY * 1_000_000);
}

#[test]
fn concurrent_recording_is_deterministic_after_join() {
    // N threads each record a known multiset into a shared histogram
    // and into a private one. After joining: the shared snapshot must
    // equal the merge of the private snapshots, and both must equal
    // the single-threaded reference — bucket-for-bucket, independent
    // of interleaving.
    let shared = std::sync::Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 1_000u64;
    let values = move |t: u64| (0..per_thread).map(move |i| (t + 1) * 257 + i * 31);

    let mut handles = Vec::new();
    for t in 0..threads {
        let shared = std::sync::Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let private = Histogram::new();
            for v in values(t) {
                shared.record_always(v);
                private.record_always(v);
            }
            private.snapshot()
        }));
    }
    let mut merged = Snapshot::default();
    for handle in handles {
        merged.merge(&handle.join().unwrap());
    }

    let reference = Histogram::new();
    for t in 0..threads {
        for v in values(t) {
            reference.record_always(v);
        }
    }

    assert_eq!(shared.snapshot(), reference.snapshot());
    assert_eq!(merged, reference.snapshot());
    assert_eq!(merged.count, threads * per_thread);
}
