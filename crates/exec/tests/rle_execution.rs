//! The executor over a run-length-encoded (structured) leaf level.

use std::collections::HashMap;

use systec_exec::{alloc_outputs, run};
use systec_ir::build::*;
use systec_ir::Stmt;
use systec_tensor::{CooTensor, DenseTensor, LevelFormat, SparseTensor, Tensor};

#[test]
fn rle_spmv_matches_csr_spmv() {
    let mut coo = CooTensor::new(vec![4, 4]);
    for j in 0..3 {
        coo.set(&[1, j], 2.0); // one run of three
    }
    coo.set(&[3, 3], 5.0);
    let rle = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap();
    let csr = SparseTensor::from_coo(&coo, &systec_tensor::CSR).unwrap();
    let x = DenseTensor::from_vec(vec![4], vec![1.0, 10.0, 100.0, 1000.0]).unwrap();

    let prog = Stmt::loops(
        [idx("i"), idx("j")],
        assign(access("y", ["i"]), mul([access("A", ["i", "j"]), access("x", ["j"])])),
    );
    let mut results = Vec::new();
    for a in [rle, csr] {
        let mut inputs = HashMap::new();
        inputs.insert("A".to_string(), Tensor::Sparse(a));
        inputs.insert("x".to_string(), Tensor::Dense(x.clone()));
        let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
        let counters = run(&prog, &inputs, &mut outputs).unwrap();
        results.push((outputs.remove("y").unwrap(), counters));
    }
    let (y_rle, c_rle) = &results[0];
    let (y_csr, c_csr) = &results[1];
    assert!(y_rle.max_abs_diff(y_csr).unwrap() < 1e-12);
    assert_eq!(y_rle.get(&[1]), 2.0 * 111.0);
    // Both drive from A; the RLE version touches the same coordinates.
    assert_eq!(c_rle.reads_of("A"), c_csr.reads_of("A"));
}

#[test]
fn rle_triangular_bound_lifting() {
    // s[] += A[i, j] for j <= i over an RLE matrix: lifted bounds apply
    // inside runs too.
    let mut coo = CooTensor::new(vec![3, 3]);
    for j in 0..3 {
        coo.set(&[1, j], 4.0);
    }
    let rle = SparseTensor::from_coo(&coo, &[LevelFormat::Dense, LevelFormat::RunLength]).unwrap();
    let prog = Stmt::loops(
        [idx("i"), idx("j")],
        Stmt::guarded(
            le("j", "i"),
            assign(access("s", [] as [&str; 0]), access("A", ["i", "j"]).into()),
        ),
    );
    let mut inputs = HashMap::new();
    inputs.insert("A".to_string(), Tensor::Sparse(rle));
    let mut outputs = alloc_outputs(&prog, &inputs).unwrap();
    run(&prog, &inputs, &mut outputs).unwrap();
    // Row 1, j in {0, 1}: 4 + 4.
    assert_eq!(outputs["s"].get(&[]), 8.0);
}
